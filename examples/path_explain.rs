//! Explainability showcase: RL-based multi-hop reasoning produces an
//! explicit relation path for every answer — the property the paper
//! contrasts with black-box embedding models (§I).
//!
//! ```sh
//! cargo run --release --example path_explain
//! ```

use mmkgr::prelude::*;
use mmkgr::datagen::generate;

fn main() {
    let kg = generate(&GenConfig::wn9_img_txt().scaled(0.05));
    println!("{}", kg.stats());
    let known = kg.all_known();

    let mut cfg = MmkgrConfig::default();
    cfg.epochs = 12;
    cfg.lr = 3e-3;
    let engine = RewardEngine::new(&cfg, Some(NoShaper));
    let model = MmkgrModel::new(&kg, cfg, None);
    let mut trainer = Trainer::new(model, engine);
    trainer.train(&kg, 0);

    let rs = kg.graph.relations();
    let fmt_rel = |r: RelationId| -> String {
        if rs.is_base(r) {
            format!("r{}", r.index())
        } else if rs.is_inverse(r) {
            format!("r{}⁻¹", rs.inverse(r).index())
        } else {
            "stay".into()
        }
    };

    let mut explained = 0;
    let mut attempted = 0;
    for t in kg.split.test.iter().take(25) {
        attempted += 1;
        let q = RolloutQuery { source: t.s, relation: t.r, answer: t.o };
        let outcome = rank_query(&trainer.model, &kg.graph, &q, Some(&known), 16, 4);
        if !outcome.reached {
            continue;
        }
        explained += 1;
        let mut paths = beam_search(&trainer.model, &kg.graph, t.s, t.r, 16, 4);
        paths.retain(|p| p.entity == t.o);
        paths.sort_by(|a, b| b.logp.total_cmp(&a.logp));
        println!("\n({}, r{}, ?) = {}   [rank {}]", t.s, t.r.index(), t.o, outcome.rank);
        for p in paths.iter().take(2) {
            let chain: Vec<String> = p.relations.iter().map(|&r| fmt_rel(r)).collect();
            println!("   proof ({} hops, logp {:.2}): {}", p.hops, p.logp, chain.join(" → "));
        }
    }
    println!(
        "\n{explained}/{attempted} test queries answered with an explicit relation-path proof"
    );
}
