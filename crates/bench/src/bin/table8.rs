//! Table VIII — Hits@1 of MMKGR vs OSKGR on random test subsets of
//! 20/40/60/80/100% (the multi-modal benefit across evaluation regimes).

use mmkgr_bench::Stopwatch;
use mmkgr_core::Variant;
use mmkgr_eval::{pct, save_json, Dataset, Harness, HarnessConfig, ScaleChoice, Table};
use mmkgr_tensor::init::seeded_rng;
use rand::seq::SliceRandom;

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let mut dump = Vec::new();
    let mut table = Table::new(
        "Table VIII — Hits@1 on test subsets (MMKGR vs OSKGR)",
        &[
            "Proportion",
            "WN9 MMKGR",
            "WN9 OSKGR",
            "FB MMKGR",
            "FB OSKGR",
        ],
    );
    let mut columns: Vec<Vec<String>> = vec![Vec::new(); 4];
    for (d_i, dataset) in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt]
        .into_iter()
        .enumerate()
    {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("{}", h.kg.stats());
        let (mmkgr, _) = h.train_variant(Variant::Full);
        sw.lap("MMKGR trained");
        let (oskgr, _) = h.train_variant(Variant::Oskgr);
        sw.lap("OSKGR trained");
        let mut rng = seeded_rng(h.cfg.seed ^ 0xAB);
        let mut pool = h.eval_triples.clone();
        pool.shuffle(&mut rng);
        for (p_i, prop) in [0.2, 0.4, 0.6, 0.8, 1.0].into_iter().enumerate() {
            let n = ((pool.len() as f64 * prop).round() as usize).max(1);
            let subset = &pool[..n];
            let m = h.eval_policy_on(&mmkgr.model, subset).hits1;
            let o = h.eval_policy_on(&oskgr.model, subset).hits1;
            columns[2 * d_i].push(pct(m));
            columns[2 * d_i + 1].push(pct(o));
            dump.push((dataset.name().to_string(), prop, m, o));
            let _ = p_i;
        }
        sw.lap("proportions evaluated");
    }
    for (i, prop) in ["20%", "40%", "60%", "80%", "100%"].iter().enumerate() {
        table.push_row(vec![
            prop.to_string(),
            columns[0][i].clone(),
            columns[1][i].clone(),
            columns[2][i].clone(),
            columns[3][i].clone(),
        ]);
    }
    table.print();
    save_json("table8", &dump);
}
