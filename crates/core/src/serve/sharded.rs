//! Entity-sharded serving: one [`ShardedReasoner`] composes N shards
//! behind the same [`KgReasoner`] trait the registry and HTTP front end
//! already speak, so sharding is invisible above this module.
//!
//! Two sharding disciplines, matching the two model families:
//!
//! - **Scored** (KGE scorers): exhaustive object scoring is partitioned
//!   by contiguous entity range. Shard `i` scores objects in
//!   `bounds[i]..bounds[i+1]` on its own thread, ranks and truncates its
//!   slice locally, and the merger re-sorts the per-shard top-k unions.
//!   This is exact: `score(s, r, o)` does not depend on which shard
//!   evaluates it, and the global top-k is always a subset of the union
//!   of per-shard top-ks, so the merged ranking is bit-identical to an
//!   unsharded [`super::ScorerReasoner`] pass (both use
//!   [`super::sort_candidates`]'s descending-score / ascending-id order).
//! - **Routed** (path reasoners): beam search walks the whole graph from
//!   one source, so it cannot be range-split. Instead each query routes
//!   to the shard owning its *source* entity; shards hold full replicas
//!   (or shard-local fine-tunes) and answer independently. Batches fan
//!   out across shards with one thread per non-empty shard.
//!
//! Either way the v1 wire surface is untouched: a `ShardedReasoner`
//! registers in [`super::ModelRegistry`] like any other model.
//!
//! # Supervision
//!
//! Scored fan-out runs on a persistent per-reasoner shard pool (spawned
//! once at construction, closing the old per-query `thread::scope`
//! spawn cost) under a supervisor: every shard task runs inside
//! `catch_unwind`, waits are bounded by the caller's [`Budget`], and a
//! failed shard is retried **once** after a jittered backoff. A shard
//! that still fails is dropped from the merge — the answer is the exact
//! merged top-k of the survivors, annotated with
//! [`Degraded`](super::Degraded) so clients can tell a partial ranking
//! from a full one. An exhausted budget wins over degradation: the
//! caller gets [`ApiError::DeadlineExceeded`], never a late answer.

use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use mmkgr_embed::TripleScorer;
use mmkgr_kg::{EntityId, RelationId, RelationSpace};

use super::{
    candidates_from_scores, faults, panic_message, rank_top_k, Answer, ApiError, Budget,
    CacheStats, Candidate, Coverage, Degraded, KgReasoner, Query,
};
use crate::infer::BeamPath;

/// Why a [`ShardedReasoner`] could not be assembled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// Zero shards requested (or an empty shard list supplied).
    NoShards,
    /// A routed shard disagrees with shard 0 on entity count or relation
    /// layout — replicas must serve the same graph shape.
    ShapeMismatch {
        shard: usize,
        expected_entities: usize,
        got_entities: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "ShardedReasoner needs at least one shard"),
            ShardError::ShapeMismatch {
                shard,
                expected_entities,
                got_entities,
            } => write!(
                f,
                "shard {shard} serves {got_entities} entities but shard 0 serves \
                 {expected_entities}; routed shards must be shape-identical replicas"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// Object-safe view of a [`TripleScorer`] for range scoring — lets the
/// sharded reasoner stay non-generic (it is always held as
/// `Arc<dyn KgReasoner>`).
trait ObjectScorer: Send + Sync {
    /// Scores for `lo..hi`, via the scorer's vectorized range path.
    fn score_range(&self, s: EntityId, r: RelationId, lo: usize, hi: usize, out: &mut Vec<f32>);
}

impl<S: TripleScorer + Send + Sync> ObjectScorer for S {
    fn score_range(&self, s: EntityId, r: RelationId, lo: usize, hi: usize, out: &mut Vec<f32>) {
        self.score_objects_range(s, r, lo, hi, out);
    }
}

enum Mode {
    /// Exhaustive scoring split by entity range.
    Scored(Arc<dyn ObjectScorer>),
    /// Full reasoners, queries routed by source-entity shard.
    Routed(Vec<Arc<dyn KgReasoner + Send + Sync>>),
}

/// One unit of shard work: score a range, report back.
type ShardTask = Box<dyn FnOnce() + Send>;

/// A persistent pool of shard-task threads, spawned once per
/// [`ShardedReasoner`]. Tasks run under `catch_unwind` so a panicking
/// scorer (or an injected chaos fault) never kills a pool thread — the
/// failure is reported through the task's own result channel and the
/// thread moves on to the next task.
struct ShardPool {
    tx: Mutex<Option<mpsc::Sender<ShardTask>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ShardPool {
    fn new(threads: usize) -> ShardPool {
        let (tx, rx) = mpsc::channel::<ShardTask>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let task = match rx.lock().unwrap().recv() {
                        Ok(t) => t,
                        Err(_) => return, // pool dropped
                    };
                    // The pool boundary: a panic inside the task is the
                    // task's problem, not the thread's.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                })
            })
            .collect();
        ShardPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
        }
    }

    fn submit(&self, task: ShardTask) {
        let tx = self.tx.lock().unwrap();
        tx.as_ref()
            .expect("shard pool open while alive")
            .send(task)
            .expect("shard pool workers alive");
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.tx.lock().unwrap().take(); // close the channel
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// One supervised attempt at scoring a shard: chaos hooks first (so
/// injected latency/panics land inside the unwind guard), then the real
/// range scoring. `Err` carries the panic message.
fn shard_attempt(
    scorer: &dyn ObjectScorer,
    query: &Query,
    shard: usize,
    lo: usize,
    hi: usize,
) -> Result<Vec<Candidate>, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        faults::on_shard_task(shard);
        ShardedReasoner::score_shard(scorer, query, lo, hi)
    }))
    .map_err(|p| panic_message(&*p))
}

/// N entity-partitioned shards behind one [`KgReasoner`] (see the module
/// docs for the two disciplines and the exactness argument).
pub struct ShardedReasoner {
    name: String,
    mode: Mode,
    num_entities: usize,
    relations: RelationSpace,
    /// `bounds[i]..bounds[i+1]` is shard `i`'s entity range;
    /// `bounds.len() == shards + 1`, `bounds[0] == 0`, last == entities.
    bounds: Vec<usize>,
    /// Persistent fan-out threads for scored mode (`None` for routed
    /// mode and for a single shard, which scores on the caller thread).
    pool: Option<ShardPool>,
}

impl std::fmt::Debug for ShardedReasoner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedReasoner")
            .field("name", &self.name)
            .field(
                "mode",
                &match self.mode {
                    Mode::Scored(_) => "scored",
                    Mode::Routed(_) => "routed",
                },
            )
            .field("num_entities", &self.num_entities)
            .field("bounds", &self.bounds)
            .finish()
    }
}

/// Contiguous near-equal split of `0..n` into `shards` ranges.
fn uniform_bounds(n: usize, shards: usize) -> Vec<usize> {
    (0..=shards).map(|i| i * n / shards).collect()
}

impl ShardedReasoner {
    /// Shard an exhaustive [`TripleScorer`] by entity range. The scorer
    /// is shared (`Arc`-cloned) across shards — only the score loop is
    /// partitioned. Errors on `shards == 0`.
    pub fn from_scorer<S>(
        name: impl Into<String>,
        scorer: S,
        num_entities: usize,
        relations: RelationSpace,
        shards: usize,
    ) -> Result<Self, ShardError>
    where
        S: TripleScorer + Send + Sync + 'static,
    {
        if shards == 0 {
            return Err(ShardError::NoShards);
        }
        Ok(ShardedReasoner {
            name: name.into(),
            mode: Mode::Scored(Arc::new(scorer)),
            num_entities,
            relations,
            bounds: uniform_bounds(num_entities, shards),
            pool: (shards > 1).then(|| ShardPool::new(shards.min(16))),
        })
    }

    /// Compose full reasoner replicas, routing each query to the shard
    /// that owns its source entity. All shards must agree on entity
    /// count and relation layout. Errors on an empty list or a shape
    /// mismatch.
    pub fn from_routed(
        name: impl Into<String>,
        shards: Vec<Arc<dyn KgReasoner + Send + Sync>>,
    ) -> Result<Self, ShardError> {
        let first = shards.first().ok_or(ShardError::NoShards)?;
        let num_entities = first.num_entities();
        let relations = first.relations();
        for (i, s) in shards.iter().enumerate().skip(1) {
            if s.num_entities() != num_entities || s.relations() != relations {
                return Err(ShardError::ShapeMismatch {
                    shard: i,
                    expected_entities: num_entities,
                    got_entities: s.num_entities(),
                });
            }
        }
        let bounds = uniform_bounds(num_entities, shards.len());
        Ok(ShardedReasoner {
            name: name.into(),
            mode: Mode::Routed(shards),
            num_entities,
            relations,
            bounds,
            pool: None,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Which shard owns entity `e` (callers guarantee `e` is in range).
    fn shard_of(&self, e: EntityId) -> usize {
        // bounds is sorted; the owner is the last bound <= e.
        self.bounds
            .partition_point(|&b| b <= e.index())
            .saturating_sub(1)
            .min(self.num_shards() - 1)
    }

    /// Score shard `i`'s entity range, returning its slice of the
    /// ranking already sorted and truncated to `top_k`.
    fn score_shard(
        scorer: &dyn ObjectScorer,
        query: &Query,
        lo: usize,
        hi: usize,
    ) -> Vec<Candidate> {
        let mut scores = Vec::new();
        scorer.score_range(query.source, query.relation, lo, hi, &mut scores);
        candidates_from_scores(&scores, lo, query.top_k)
    }

    /// Run one wave of shard attempts — concurrently on the shard pool
    /// when there is one, inline otherwise — collecting each shard's
    /// result. Waits are bounded by the remaining `budget`; a shard that
    /// produced nothing before the deadline simply has no entry in the
    /// returned list.
    fn run_wave(
        &self,
        scorer: &Arc<dyn ObjectScorer>,
        query: &Query,
        pending: &[(usize, usize, usize)],
        budget: Budget,
    ) -> Vec<(usize, Result<Vec<Candidate>, String>)> {
        let Some(pool) = &self.pool else {
            return pending
                .iter()
                .map(|&(shard, lo, hi)| (shard, shard_attempt(&**scorer, query, shard, lo, hi)))
                .collect();
        };
        let (res_tx, res_rx) = mpsc::channel();
        for &(shard, lo, hi) in pending {
            let scorer = Arc::clone(scorer);
            let query = *query;
            let tx = res_tx.clone();
            pool.submit(Box::new(move || {
                // The receiver may be gone (deadline hit): fine.
                let _ = tx.send((shard, shard_attempt(&*scorer, &query, shard, lo, hi)));
            }));
        }
        drop(res_tx);
        let mut results = Vec::with_capacity(pending.len());
        for _ in 0..pending.len() {
            let next = match budget.remaining() {
                None => res_rx.recv().ok(),
                Some(left) => res_rx.recv_timeout(left).ok(),
            };
            match next {
                Some(pair) => results.push(pair),
                None => break, // deadline: undelivered shards count as failed
            }
        }
        results
    }

    /// Exhaustive answer, fanned across shards under supervision: every
    /// shard attempt is unwind-guarded, waits are budget-bounded, and a
    /// failed shard gets exactly one retry after a jittered backoff.
    /// Survivor results merge into the exact top-k over their ranges; if
    /// any shard stayed down the answer carries a [`Degraded`]
    /// annotation. An exhausted budget is an error, not a late answer.
    fn answer_scored_within(
        &self,
        scorer: &Arc<dyn ObjectScorer>,
        query: &Query,
        budget: Budget,
    ) -> Result<Answer, ApiError> {
        if budget.expired() {
            return Err(budget.exceeded());
        }
        let mut pending: Vec<(usize, usize, usize)> = self
            .bounds
            .windows(2)
            .enumerate()
            .map(|(i, w)| (i, w[0], w[1]))
            .filter(|&(_, lo, hi)| lo < hi)
            .collect();
        let mut merged: Vec<Candidate> = Vec::new();
        for attempt in 0..2 {
            if pending.is_empty() {
                break;
            }
            if attempt > 0 {
                if budget.expired() {
                    break;
                }
                faults::SHARD_RETRIES.fetch_add(pending.len() as u64, Ordering::Relaxed);
                std::thread::sleep(budget.clamp(Duration::from_millis(1) + faults::jitter(8)));
            }
            let wave = self.run_wave(scorer, query, &pending, budget);
            pending.retain(|&(shard, _, _)| {
                !wave.iter().any(|&(s, ref out)| s == shard && out.is_ok())
            });
            for (_, out) in wave {
                if let Ok(cands) = out {
                    merged.extend(cands);
                }
            }
        }
        if budget.expired() {
            return Err(budget.exceeded());
        }
        // Per-shard slices are each sorted, but the union is not; the
        // final order must match the unsharded single sort exactly
        // (restricted to the surviving ranges when degraded).
        rank_top_k(&mut merged, query.top_k);
        Ok(Answer {
            query: *query,
            coverage: Coverage::Exhaustive,
            ranked: merged,
            degraded: (!pending.is_empty()).then(|| Degraded {
                shards_failed: pending.iter().map(|&(shard, _, _)| shard).collect(),
                shards_total: self.num_shards(),
            }),
        })
    }

    /// Batch convenience with per-shard fan-out (routed mode groups
    /// queries by owning shard; scored mode answers sequentially, each
    /// answer already fanning across shards internally). Answers come
    /// back in query order, identical to [`KgReasoner::answer`] per
    /// query.
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        match &self.mode {
            Mode::Scored(_) => queries.iter().map(|q| self.answer(q)).collect(),
            Mode::Routed(shards) => {
                let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards.len()];
                for (i, q) in queries.iter().enumerate() {
                    by_shard[self.shard_of(q.source)].push(i);
                }
                let mut slots: Vec<Option<Answer>> = vec![None; queries.len()];
                std::thread::scope(|scope| {
                    let handles: Vec<_> = by_shard
                        .iter()
                        .zip(shards)
                        .filter(|(idx, _)| !idx.is_empty())
                        .map(|(idx, shard)| {
                            scope.spawn(move || {
                                idx.iter()
                                    .map(|&i| (i, shard.answer(&queries[i])))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        for (i, a) in h.join().expect("shard answer thread panicked") {
                            slots[i] = Some(a);
                        }
                    }
                });
                slots
                    .into_iter()
                    .map(|a| a.expect("every slot filled"))
                    .collect()
            }
        }
    }
}

impl KgReasoner for ShardedReasoner {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn relations(&self) -> RelationSpace {
        self.relations
    }

    fn answer(&self, query: &Query) -> Answer {
        match &self.mode {
            Mode::Scored(scorer) => self
                .answer_scored_within(scorer, query, Budget::none())
                .expect("an unlimited budget cannot exceed its deadline"),
            Mode::Routed(shards) => shards[self.shard_of(query.source)].answer(query),
        }
    }

    fn answer_within(&self, query: &Query, budget: Budget) -> Result<Answer, ApiError> {
        match &self.mode {
            Mode::Scored(scorer) => self.answer_scored_within(scorer, query, budget),
            Mode::Routed(shards) => {
                shards[self.shard_of(query.source)].answer_within(query, budget)
            }
        }
    }

    fn explain(&self, query: &Query) -> Option<Vec<BeamPath>> {
        match &self.mode {
            Mode::Scored(_) => None,
            Mode::Routed(shards) => shards[self.shard_of(query.source)].explain(query),
        }
    }

    /// Routed mode: counters summed across shards that report any
    /// (capacity and entries add; a miss on one shard is a miss).
    fn cache_stats(&self) -> Option<CacheStats> {
        match &self.mode {
            Mode::Scored(_) => None,
            Mode::Routed(shards) => {
                let per_shard: Vec<CacheStats> =
                    shards.iter().filter_map(|s| s.cache_stats()).collect();
                if per_shard.is_empty() {
                    return None;
                }
                let mut total = CacheStats::default();
                for s in per_shard {
                    total.entries += s.entries;
                    total.capacity += s.capacity;
                    total.hits += s.hits;
                    total.misses += s.misses;
                }
                Some(total)
            }
        }
    }

    fn has_path_evidence(&self) -> bool {
        match &self.mode {
            Mode::Scored(_) => false,
            Mode::Routed(shards) => shards[0].has_path_evidence(),
        }
    }

    /// Routed mode: every replica caches independently, so a live-graph
    /// mutation must drop the touched entries on all of them.
    fn invalidate_entities(&self, touched: &[mmkgr_kg::EntityId]) -> usize {
        match &self.mode {
            Mode::Scored(_) => 0,
            Mode::Routed(shards) => shards.iter().map(|s| s.invalidate_entities(touched)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{PolicyReasoner, ScorerReasoner, ServeConfig};
    use super::*;
    use crate::config::MmkgrConfig;
    use crate::model::MmkgrModel;
    use mmkgr_datagen::{generate, GenConfig};
    use mmkgr_embed::TransE;

    fn shape() -> (usize, RelationSpace) {
        (23, RelationSpace::new(3))
    }

    fn transe(n: usize, rs: RelationSpace) -> Arc<TransE> {
        Arc::new(TransE::new(n, rs.total(), 8, 7))
    }

    #[test]
    fn uniform_bounds_cover_and_partition() {
        let b = uniform_bounds(23, 4);
        assert_eq!(b, vec![0, 5, 11, 17, 23]);
        assert_eq!(uniform_bounds(3, 4), vec![0, 0, 1, 2, 3]);
        assert_eq!(uniform_bounds(0, 2), vec![0, 0, 0]);
    }

    #[test]
    fn sharded_scorer_matches_unsharded_exactly() {
        let (n, rs) = shape();
        let scorer = transe(n, rs);
        let whole = ScorerReasoner::new("TransE", Arc::clone(&scorer), n, rs);
        for shards in [1, 2, 4, 7] {
            let sharded =
                ShardedReasoner::from_scorer("TransE", Arc::clone(&scorer), n, rs, shards).unwrap();
            assert_eq!(sharded.num_shards(), shards);
            for src in [0u32, 3, 22] {
                for top_k in [0usize, 1, 5, 100] {
                    let q = Query::new(EntityId(src), RelationId(1)).with_top_k(top_k);
                    let a = sharded.answer(&q);
                    let b = whole.answer(&q);
                    assert_eq!(a, b, "shards={shards} src={src} top_k={top_k}");
                    assert_eq!(a.coverage, Coverage::Exhaustive);
                }
            }
        }
    }

    #[test]
    fn sharded_scorer_breaks_ties_like_unsharded() {
        // All-equal scores: the merged order must still be ascending
        // entity id, same as one global sort.
        struct Flat;
        impl TripleScorer for Flat {
            fn score(&self, _: EntityId, _: RelationId, _: EntityId) -> f32 {
                1.0
            }
        }
        let rs = RelationSpace::new(2);
        let sharded = ShardedReasoner::from_scorer("Flat", Flat, 10, rs, 4).unwrap();
        let a = sharded.answer(&Query::new(EntityId(0), RelationId(0)).with_top_k(0));
        let ids: Vec<u32> = a.ranked.iter().map(|c| c.entity.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
    }

    fn policy_shards(
        replicas: usize,
    ) -> (Vec<Query>, Arc<PolicyReasoner<MmkgrModel>>, ShardedReasoner) {
        let kg = generate(&GenConfig::tiny());
        let model = MmkgrModel::new(&kg, MmkgrConfig::quick(), None);
        let graph = Arc::new(kg.graph.clone());
        let single = Arc::new(PolicyReasoner::new(
            "MMKGR",
            model,
            Arc::clone(&graph),
            ServeConfig::default(),
        ));
        // Replicas share the single reasoner: routing must be a pure
        // dispatch, so "shard i answered" is indistinguishable by value.
        let shards: Vec<Arc<dyn KgReasoner + Send + Sync>> = (0..replicas)
            .map(|_| Arc::clone(&single) as Arc<dyn KgReasoner + Send + Sync>)
            .collect();
        let sharded = ShardedReasoner::from_routed("MMKGR-x4", shards).unwrap();
        let queries: Vec<Query> = kg
            .split
            .test
            .iter()
            .take(8)
            .map(|t| Query::new(t.s, t.r).with_beam(8).with_steps(3))
            .collect();
        (queries, single, sharded)
    }

    #[test]
    fn routed_policy_matches_single_reasoner() {
        let (queries, single, sharded) = policy_shards(4);
        assert!(sharded.has_path_evidence());
        for q in &queries {
            assert_eq!(sharded.answer(q), single.answer(q));
            assert_eq!(sharded.explain(q), single.explain(q));
        }
        // Batch fan-out across shards preserves query order.
        let batched = sharded.answer_batch(&queries);
        let sequential: Vec<Answer> = queries.iter().map(|q| single.answer(q)).collect();
        assert_eq!(batched, sequential);
        assert!(sharded.answer_batch(&[]).is_empty());
    }

    #[test]
    fn every_entity_routes_to_a_valid_shard() {
        let (_, _, sharded) = policy_shards(4);
        let n = sharded.num_entities();
        for e in 0..n as u32 {
            let s = sharded.shard_of(EntityId(e));
            assert!(s < sharded.num_shards());
            assert!(sharded.bounds[s] <= e as usize && (e as usize) < sharded.bounds[s + 1]);
        }
    }

    /// Degraded-mode parity: with shard `dead` forced down, the answer
    /// must be *exactly* the merged top-k over the surviving ranges —
    /// computed here as an unsharded reference pass restricted to those
    /// ranges — plus the degradation annotation. Nothing else may leak
    /// from the dead shard's range.
    #[test]
    fn degraded_answer_is_exact_merge_of_survivors() {
        let (n, rs) = shape();
        let scorer = transe(n, rs);
        let shards = 4usize;
        let sharded =
            ShardedReasoner::from_scorer("TransE", Arc::clone(&scorer), n, rs, shards).unwrap();
        for dead in 0..shards {
            let _guard = faults::install(
                faults::FaultPlan::new()
                    .with_shard_panic(faults::ShardSel::One(dead), faults::ALWAYS),
            );
            for top_k in [0usize, 1, 5, 100] {
                let q = Query::new(EntityId(3), RelationId(1)).with_top_k(top_k);
                let got = sharded.answer(&q);
                // Reference: score each surviving range directly.
                let scorer_dyn: &dyn ObjectScorer = &*scorer;
                let mut expect: Vec<Candidate> = Vec::new();
                for (i, w) in sharded.bounds.windows(2).enumerate() {
                    if i != dead && w[0] < w[1] {
                        expect.extend(ShardedReasoner::score_shard(scorer_dyn, &q, w[0], w[1]));
                    }
                }
                rank_top_k(&mut expect, top_k);
                assert_eq!(got.ranked, expect, "dead={dead} top_k={top_k}");
                assert_eq!(
                    got.degraded,
                    Some(Degraded {
                        shards_failed: vec![dead],
                        shards_total: shards,
                    })
                );
            }
        }
    }

    #[test]
    fn transient_shard_panic_is_retried_to_a_full_answer() {
        let (n, rs) = shape();
        let scorer = transe(n, rs);
        let whole = ScorerReasoner::new("TransE", Arc::clone(&scorer), n, rs);
        let sharded =
            ShardedReasoner::from_scorer("TransE", Arc::clone(&scorer), n, rs, 3).unwrap();
        let q = Query::new(EntityId(7), RelationId(0)).with_top_k(5);
        let retries_before = faults::SHARD_RETRIES.load(Ordering::Relaxed);
        let got = {
            // Shard 1 panics exactly once: the retry must succeed and
            // the answer must be indistinguishable from a healthy run.
            let _guard = faults::install(
                faults::FaultPlan::new().with_shard_panic(faults::ShardSel::One(1), 1),
            );
            sharded.answer(&q)
        };
        assert_eq!(got, whole.answer(&q));
        assert!(got.degraded.is_none());
        assert!(faults::SHARD_RETRIES.load(Ordering::Relaxed) > retries_before);
    }

    #[test]
    fn injected_latency_past_the_deadline_is_a_typed_504() {
        let (n, rs) = shape();
        let sharded = ShardedReasoner::from_scorer("TransE", transe(n, rs), n, rs, 2).unwrap();
        let q = Query::new(EntityId(0), RelationId(1));
        let _guard = faults::install(
            faults::FaultPlan::new()
                .with_shard_latency(faults::ShardSel::All, Duration::from_millis(400)),
        );
        let started = std::time::Instant::now();
        let err = sharded
            .answer_within(&q, Budget::from_timeout_ms(50))
            .unwrap_err();
        assert!(matches!(err, ApiError::DeadlineExceeded { timeout_ms: 50 }));
        // The caller got its answer near the deadline, not after the
        // injected latency drained (generous bound for slow CI).
        assert!(started.elapsed() < Duration::from_millis(350));
    }

    #[test]
    fn faults_disabled_answers_are_byte_identical() {
        let (n, rs) = shape();
        let scorer = transe(n, rs);
        let whole = ScorerReasoner::new("TransE", Arc::clone(&scorer), n, rs);
        let sharded =
            ShardedReasoner::from_scorer("TransE", Arc::clone(&scorer), n, rs, 4).unwrap();
        let q = Query::new(EntityId(11), RelationId(2)).with_top_k(7);
        let a = sharded
            .answer_within(&q, Budget::from_timeout_ms(60_000))
            .unwrap();
        assert_eq!(a, whole.answer(&q));
        assert!(a.degraded.is_none());
    }

    #[test]
    fn constructors_reject_degenerate_shapes() {
        let (n, rs) = shape();
        assert_eq!(
            ShardedReasoner::from_scorer("x", transe(n, rs), n, rs, 0).unwrap_err(),
            ShardError::NoShards
        );
        assert_eq!(
            ShardedReasoner::from_routed("x", Vec::new()).unwrap_err(),
            ShardError::NoShards
        );
        let a = Arc::new(ScorerReasoner::new("a", transe(n, rs), n, rs));
        let b = Arc::new(ScorerReasoner::new("b", transe(9, rs), 9, rs));
        let err = ShardedReasoner::from_routed(
            "mixed",
            vec![
                a as Arc<dyn KgReasoner + Send + Sync>,
                b as Arc<dyn KgReasoner + Send + Sync>,
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            ShardError::ShapeMismatch {
                shard: 1,
                expected_entities: n,
                got_entities: 9
            }
        );
    }
}
