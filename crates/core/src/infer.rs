//! Beam-search inference and ranking evaluation.
//!
//! RL reasoners rank candidates by the best path log-probability that
//! reaches them within `T` steps (the MINERVA evaluation protocol the
//! paper follows). Entities no beam reaches rank pessimistically last.
//!
//! Since the [`crate::beam`] engine landed, every entry point here is a
//! thin wrapper over a thread-local [`BeamEngine`](crate::beam::BeamEngine)
//! in exact mode: the public contracts (and their outputs, bit for bit)
//! are unchanged, but repeated calls no longer allocate.

use mmkgr_kg::{Edge, EntityId, KnowledgeGraph, RelationId, TripleSet};

use crate::beam::{with_thread_engine, BeamConfig};
use crate::mdp::RolloutQuery;
use crate::model::MmkgrModel;

/// The raw (tape-free) interface beam search drives. [`MmkgrModel`]
/// implements it; the `mmkgr-baselines` RL walkers (MINERVA, RLH, FIRE)
/// implement it too, so every multi-hop model shares one evaluation
/// protocol.
pub trait RolloutPolicy {
    /// Width of the recurrent history state.
    fn hidden_dim(&self) -> usize;

    /// Build the recurrent input for a step.
    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32>;

    /// Build the recurrent input into a caller-owned buffer (appended;
    /// callers clear first). Implementors should override this to skip
    /// the per-step allocation of [`Self::lstm_input`] — the beam engine
    /// only calls this form.
    fn lstm_input_into(&self, last_rel: RelationId, current: EntityId, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.lstm_input(last_rel, current));
    }

    /// Advance the recurrent state in place.
    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]);

    /// Action distribution for one state (must sum to 1).
    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    );

    /// Action distributions for `states` agent states standing at the
    /// same entity (rows of `hs`, `hidden_dim()` apart), sharing one
    /// action set. `out` is cleared and receives `states ×
    /// actions.len()` probabilities, row-major. The default delegates to
    /// [`Self::action_probs`] per state; policies with expensive
    /// action-dependent features (MMKGR's modal projections) override it
    /// to share that work across the group — the beam engine always
    /// calls this form. Overrides must be bitwise-identical to the
    /// per-state path.
    fn action_probs_group(
        &self,
        source: EntityId,
        hs: &[f32],
        states: usize,
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        let ds = self.hidden_dim();
        let mut row: Vec<f32> = Vec::with_capacity(actions.len());
        for s in 0..states {
            self.action_probs(source, &hs[s * ds..(s + 1) * ds], rq, actions, &mut row);
            out.extend_from_slice(&row);
        }
    }

    /// Precompute whatever of the policy forward depends only on the
    /// action set (for MMKGR: modal gathers/projections and the gate's
    /// `X`-side). The beam engine memoizes the returned box per entity
    /// for the lifetime of one query and passes it back into
    /// [`Self::action_probs_group_prepared`] — an entity revisited at a
    /// later step pays the action-dependent work only once. Policies
    /// with nothing to share return the default `()`.
    fn prepare_actions(&self, actions: &[Edge]) -> Box<dyn std::any::Any> {
        let _ = actions;
        Box::new(())
    }

    /// [`Self::action_probs_group`] with a memoized
    /// [`Self::prepare_actions`] context. Overrides must be
    /// bitwise-identical to the unprepared path; the default ignores the
    /// context.
    #[allow(clippy::too_many_arguments)]
    fn action_probs_group_prepared(
        &self,
        source: EntityId,
        hs: &[f32],
        states: usize,
        rq: RelationId,
        actions: &[Edge],
        prepared: &dyn std::any::Any,
        out: &mut Vec<f32>,
    ) {
        let _ = prepared;
        self.action_probs_group(source, hs, states, rq, actions, out)
    }

    /// Precompute the input-dependent half of one recurrent step — for
    /// an LSTM, `bias + x·Wx` — which is a pure function of `(last_rel,
    /// current)`. The beam engine memoizes it per pair for one query:
    /// beams traversing the same edge at any step share it. Policies
    /// with nothing to share return the default `()`.
    fn prepare_step(&self, last_rel: RelationId, current: EntityId) -> Box<dyn std::any::Any> {
        let _ = (last_rel, current);
        Box::new(())
    }

    /// [`Self::lstm_step`] with a memoized [`Self::prepare_step`]
    /// context. Overrides must be bitwise-identical to the unprepared
    /// path; the default rebuilds the input and ignores the context.
    fn lstm_step_prepared(
        &self,
        last_rel: RelationId,
        current: EntityId,
        prepared: &dyn std::any::Any,
        h: &mut [f32],
        c: &mut [f32],
    ) {
        let _ = prepared;
        let mut x = Vec::with_capacity(2 * self.hidden_dim());
        self.lstm_input_into(last_rel, current, &mut x);
        self.lstm_step(&x, h, c)
    }
}

impl<P: RolloutPolicy + ?Sized> RolloutPolicy for &P {
    fn hidden_dim(&self) -> usize {
        (**self).hidden_dim()
    }

    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32> {
        (**self).lstm_input(last_rel, current)
    }

    fn lstm_input_into(&self, last_rel: RelationId, current: EntityId, out: &mut Vec<f32>) {
        (**self).lstm_input_into(last_rel, current, out)
    }

    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]) {
        (**self).lstm_step(x, h, c)
    }

    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        (**self).action_probs(source, h, rq, actions, out)
    }

    fn action_probs_group(
        &self,
        source: EntityId,
        hs: &[f32],
        states: usize,
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        (**self).action_probs_group(source, hs, states, rq, actions, out)
    }

    fn prepare_actions(&self, actions: &[Edge]) -> Box<dyn std::any::Any> {
        (**self).prepare_actions(actions)
    }

    fn action_probs_group_prepared(
        &self,
        source: EntityId,
        hs: &[f32],
        states: usize,
        rq: RelationId,
        actions: &[Edge],
        prepared: &dyn std::any::Any,
        out: &mut Vec<f32>,
    ) {
        (**self).action_probs_group_prepared(source, hs, states, rq, actions, prepared, out)
    }

    fn prepare_step(&self, last_rel: RelationId, current: EntityId) -> Box<dyn std::any::Any> {
        (**self).prepare_step(last_rel, current)
    }

    fn lstm_step_prepared(
        &self,
        last_rel: RelationId,
        current: EntityId,
        prepared: &dyn std::any::Any,
        h: &mut [f32],
        c: &mut [f32],
    ) {
        (**self).lstm_step_prepared(last_rel, current, prepared, h, c)
    }
}

impl<P: RolloutPolicy + ?Sized> RolloutPolicy for Box<P> {
    fn hidden_dim(&self) -> usize {
        (**self).hidden_dim()
    }

    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32> {
        (**self).lstm_input(last_rel, current)
    }

    fn lstm_input_into(&self, last_rel: RelationId, current: EntityId, out: &mut Vec<f32>) {
        (**self).lstm_input_into(last_rel, current, out)
    }

    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]) {
        (**self).lstm_step(x, h, c)
    }

    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        (**self).action_probs(source, h, rq, actions, out)
    }

    fn action_probs_group(
        &self,
        source: EntityId,
        hs: &[f32],
        states: usize,
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        (**self).action_probs_group(source, hs, states, rq, actions, out)
    }

    fn prepare_actions(&self, actions: &[Edge]) -> Box<dyn std::any::Any> {
        (**self).prepare_actions(actions)
    }

    fn action_probs_group_prepared(
        &self,
        source: EntityId,
        hs: &[f32],
        states: usize,
        rq: RelationId,
        actions: &[Edge],
        prepared: &dyn std::any::Any,
        out: &mut Vec<f32>,
    ) {
        (**self).action_probs_group_prepared(source, hs, states, rq, actions, prepared, out)
    }

    fn prepare_step(&self, last_rel: RelationId, current: EntityId) -> Box<dyn std::any::Any> {
        (**self).prepare_step(last_rel, current)
    }

    fn lstm_step_prepared(
        &self,
        last_rel: RelationId,
        current: EntityId,
        prepared: &dyn std::any::Any,
        h: &mut [f32],
        c: &mut [f32],
    ) {
        (**self).lstm_step_prepared(last_rel, current, prepared, h, c)
    }
}

impl RolloutPolicy for MmkgrModel {
    fn hidden_dim(&self) -> usize {
        self.cfg.struct_dim
    }

    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32> {
        self.raw_lstm_input(last_rel, current)
    }

    fn lstm_input_into(&self, last_rel: RelationId, current: EntityId, out: &mut Vec<f32>) {
        self.raw_lstm_input_into(last_rel, current, out)
    }

    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]) {
        self.raw_lstm_step(x, h, c)
    }

    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        self.raw_state_probs(source, h, rq, actions, out)
    }

    fn action_probs_group(
        &self,
        source: EntityId,
        hs: &[f32],
        states: usize,
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        self.raw_state_probs_group(source, hs, states, rq, actions, out)
    }

    fn prepare_actions(&self, actions: &[Edge]) -> Box<dyn std::any::Any> {
        Box::new(self.raw_prepare_actions(actions))
    }

    fn action_probs_group_prepared(
        &self,
        source: EntityId,
        hs: &[f32],
        states: usize,
        rq: RelationId,
        actions: &[Edge],
        prepared: &dyn std::any::Any,
        out: &mut Vec<f32>,
    ) {
        match prepared.downcast_ref::<crate::model::PreparedActions>() {
            Some(prep) => {
                self.raw_state_probs_group_prepared(source, hs, states, rq, actions, prep, out)
            }
            None => self.raw_state_probs_group(source, hs, states, rq, actions, out),
        }
    }

    fn prepare_step(&self, last_rel: RelationId, current: EntityId) -> Box<dyn std::any::Any> {
        Box::new(self.raw_prepare_step(last_rel, current))
    }

    fn lstm_step_prepared(
        &self,
        last_rel: RelationId,
        current: EntityId,
        prepared: &dyn std::any::Any,
        h: &mut [f32],
        c: &mut [f32],
    ) {
        match prepared.downcast_ref::<crate::model::PreparedStep>() {
            Some(prep) => self.raw_lstm_step_prepared(prep, h, c),
            None => {
                let x = self.raw_lstm_input(last_rel, current);
                self.raw_lstm_step(&x, h, c)
            }
        }
    }
}

/// A completed beam: where it ended and how it got there.
#[derive(Clone, Debug, PartialEq)]
pub struct BeamPath {
    pub entity: EntityId,
    pub logp: f32,
    /// Non-NO_OP hops.
    pub hops: usize,
    pub relations: Vec<RelationId>,
}

/// Beam search from `(source, relation)` for `steps` steps.
///
/// Wraps the thread-local [`BeamEngine`](crate::beam::BeamEngine) in
/// exact mode: output is bit-identical to the original per-call
/// implementation (retained as [`crate::beam::beam_search_reference`]),
/// but after the first call on a thread only the returned paths allocate.
pub fn beam_search<P: RolloutPolicy>(
    model: &P,
    graph: &KnowledgeGraph,
    source: EntityId,
    relation: RelationId,
    width: usize,
    steps: usize,
) -> Vec<BeamPath> {
    with_thread_engine(|engine| {
        engine.search(
            model,
            graph,
            source,
            relation,
            &BeamConfig::exact(width, steps),
        )
    })
}

/// Outcome of ranking one query.
#[derive(Copy, Clone, Debug)]
pub struct RankOutcome {
    /// 1-based filtered rank of the gold answer.
    pub rank: usize,
    /// Did any beam reach the gold answer?
    pub reached: bool,
    /// Hops of the best-scoring path to the gold answer (0 if unreached).
    pub hops: usize,
}

/// Reusable dense best-score table for [`rank_query`]: per-entity best
/// log-prob and its hop count, with an epoch stamp instead of an O(N)
/// clear between queries. Replaces the per-query `HashMap` the MINERVA
/// protocol used to rebuild for every ranked triple.
#[derive(Default)]
struct RankScratch {
    best: Vec<f32>,
    hops: Vec<u32>,
    stamp: Vec<u64>,
    touched: Vec<u32>,
    epoch: u64,
}

impl RankScratch {
    fn begin(&mut self, num_entities: usize) {
        if self.best.len() < num_entities {
            self.best.resize(num_entities, f32::NEG_INFINITY);
            self.hops.resize(num_entities, 0);
            self.stamp.resize(num_entities, 0);
        }
        self.epoch += 1;
        self.touched.clear();
    }

    fn observe(&mut self, entity: EntityId, logp: f32, hops: usize) {
        let e = entity.index();
        if self.stamp[e] != self.epoch {
            self.stamp[e] = self.epoch;
            self.best[e] = logp;
            self.hops[e] = hops as u32;
            self.touched.push(e as u32);
        } else if logp > self.best[e] {
            self.best[e] = logp;
            self.hops[e] = hops as u32;
        }
    }

    fn get(&self, entity: EntityId) -> Option<(f32, usize)> {
        let e = entity.index();
        (self.stamp.get(e) == Some(&self.epoch)).then(|| (self.best[e], self.hops[e] as usize))
    }
}

/// Rank the gold answer of `q` against all entities using beam scores.
/// `known` enables filtered ranking (other true answers are skipped).
pub fn rank_query<P: RolloutPolicy>(
    model: &P,
    graph: &KnowledgeGraph,
    q: &RolloutQuery,
    known: Option<&TripleSet>,
    width: usize,
    steps: usize,
) -> RankOutcome {
    thread_local! {
        static SCRATCH: std::cell::RefCell<RankScratch> =
            std::cell::RefCell::new(RankScratch::default());
    }
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        with_thread_engine(|engine| {
            engine.run(
                model,
                graph,
                q.source,
                q.relation,
                &BeamConfig::exact(width, steps),
            );
            scratch.begin(graph.num_entities());
            for b in engine.frontier() {
                scratch.observe(b.entity, b.logp, b.hops);
            }
        });
        let Some((gold_score, gold_hops)) = scratch.get(q.answer) else {
            return RankOutcome {
                rank: graph.num_entities().max(1),
                reached: false,
                hops: 0,
            };
        };
        let rs = graph.relations();
        let mut rank = 1usize;
        for &e in &scratch.touched {
            let e = EntityId(e);
            let score = scratch.best[e.index()];
            if e == q.answer || score <= gold_score {
                continue;
            }
            // Filtered protocol: skip candidates that are themselves true.
            if let Some(known) = known {
                let is_known = if rs.is_base(q.relation) {
                    known.contains(q.source, q.relation, e)
                } else if rs.is_inverse(q.relation) {
                    known.contains(e, rs.inverse(q.relation), q.source)
                } else {
                    false
                };
                if is_known {
                    continue;
                }
            }
            rank += 1;
        }
        RankOutcome {
            rank,
            reached: true,
            hops: gold_hops,
        }
    })
}

/// Aggregate link-prediction metrics (the columns of Tables III/V/VIII).
#[derive(Clone, Debug, Default)]
pub struct RankingSummary {
    pub mrr: f64,
    pub hits1: f64,
    pub hits5: f64,
    pub hits10: f64,
    /// Successful inferences by hop count: index = hops (0..=4, last
    /// bucket collects ≥4) — the Fig. 6/7 histogram.
    pub hop_counts: [usize; 5],
    pub total: usize,
}

impl RankingSummary {
    /// Proportion of successes at exactly `hops` (Fig. 6/7 pie slices).
    pub fn hop_fraction(&self, hops: usize) -> f64 {
        let total: usize = self.hop_counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.hop_counts[hops.min(4)] as f64 / total as f64
        }
    }
}

/// Evaluate a query set with filtered ranking.
pub fn evaluate_ranking<P: RolloutPolicy>(
    model: &P,
    graph: &KnowledgeGraph,
    queries: &[RolloutQuery],
    known: &TripleSet,
    width: usize,
    steps: usize,
) -> RankingSummary {
    let mut s = RankingSummary {
        total: queries.len(),
        ..Default::default()
    };
    if queries.is_empty() {
        return s;
    }
    for q in queries {
        let o = rank_query(model, graph, q, Some(known), width, steps);
        s.mrr += 1.0 / o.rank as f64;
        if o.rank <= 1 {
            s.hits1 += 1.0;
        }
        if o.rank <= 5 {
            s.hits5 += 1.0;
        }
        if o.rank <= 10 {
            s.hits10 += 1.0;
        }
        if o.reached && o.rank <= 1 {
            s.hop_counts[o.hops.min(4)] += 1;
        }
    }
    let n = queries.len() as f64;
    s.mrr /= n;
    s.hits1 /= n;
    s.hits5 /= n;
    s.hits10 /= n;
    s
}

/// Score each candidate relation for a `(e_s, ?, e_d)` query: the best
/// beam log-probability that reaches `e_d` under that relation (−∞ if
/// unreached). Used by the Table IV relation-link-prediction MAP.
pub fn relation_scores<P: RolloutPolicy>(
    model: &P,
    graph: &KnowledgeGraph,
    source: EntityId,
    destination: EntityId,
    candidates: &[RelationId],
    width: usize,
    steps: usize,
) -> Vec<f32> {
    // One warm engine across all candidate relations — no per-relation
    // cold start, and no path materialization (only the frontier's best
    // log-prob to `destination` is needed).
    let cfg = BeamConfig::exact(width, steps);
    with_thread_engine(|engine| {
        candidates
            .iter()
            .map(|&r| {
                engine.run(model, graph, source, r, &cfg);
                engine.best_logp_to(destination)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MmkgrConfig;
    use crate::model::MmkgrModel;
    use mmkgr_datagen::{generate, GenConfig};
    use mmkgr_kg::Triple;

    fn tiny() -> (mmkgr_kg::MultiModalKG, MmkgrModel) {
        let kg = generate(&GenConfig::tiny());
        let model = MmkgrModel::new(&kg, MmkgrConfig::quick(), None);
        (kg, model)
    }

    #[test]
    fn beam_search_returns_at_most_width() {
        let (kg, model) = tiny();
        let paths = beam_search(&model, &kg.graph, EntityId(0), RelationId(0), 4, 3);
        assert!(!paths.is_empty());
        assert!(paths.len() <= 4);
        for p in &paths {
            assert!(p.logp <= 0.0, "log-probabilities are non-positive");
            assert_eq!(p.relations.len(), p.hops);
        }
    }

    #[test]
    fn beams_end_at_reachable_entities() {
        let (kg, model) = tiny();
        let paths = beam_search(&model, &kg.graph, EntityId(1), RelationId(0), 8, 4);
        for p in &paths {
            assert!(p.hops <= 4, "a 4-step beam cannot take more than 4 hops");
            // end entity must be within `hops` of the start
            if p.hops > 0 {
                let d = mmkgr_kg::hop_distance(&kg.graph, EntityId(1), p.entity, 4);
                assert!(d.is_some(), "beam ended at unreachable entity");
            }
        }
    }

    #[test]
    fn rank_query_finds_trivial_self_answer() {
        // Query whose answer is the source: beams that never move (all
        // NO_OP) stay there, so it must be reached.
        let (kg, model) = tiny();
        let q = RolloutQuery {
            source: EntityId(0),
            relation: RelationId(0),
            answer: EntityId(0),
        };
        // Width must exceed the source's action count so the NO_OP edge
        // cannot be pruned; an untrained policy gives it no score edge.
        let o = rank_query(&model, &kg.graph, &q, None, 512, 1);
        assert!(o.reached, "staying put must keep the source reachable");
        assert_eq!(o.hops, 0);
    }

    #[test]
    fn unreachable_answer_ranks_last() {
        let (kg, model) = tiny();
        // An isolated fake answer: entity far outside beam reach is very
        // unlikely to be hit with width 1 and 1 step unless adjacent.
        let q = RolloutQuery {
            source: EntityId(0),
            relation: RelationId(0),
            answer: EntityId((kg.num_entities() - 1) as u32),
        };
        let o = rank_query(&model, &kg.graph, &q, None, 1, 1);
        if !o.reached {
            assert_eq!(o.rank, kg.num_entities());
        }
    }

    #[test]
    fn evaluate_ranking_bounds() {
        let (kg, model) = tiny();
        let queries: Vec<RolloutQuery> = kg.split.test[..8.min(kg.split.test.len())]
            .iter()
            .map(|t| RolloutQuery {
                source: t.s,
                relation: t.r,
                answer: t.o,
            })
            .collect();
        let known = kg.all_known();
        let s = evaluate_ranking(&model, &kg.graph, &queries, &known, 8, 4);
        assert!((0.0..=1.0).contains(&s.mrr));
        assert!(s.hits1 <= s.hits5 && s.hits5 <= s.hits10);
        assert_eq!(s.total, queries.len());
    }

    #[test]
    fn filtered_rank_never_worse_than_raw() {
        let (kg, model) = tiny();
        let known = kg.all_known();
        let t: &Triple = &kg.split.test[0];
        let q = RolloutQuery {
            source: t.s,
            relation: t.r,
            answer: t.o,
        };
        let raw = rank_query(&model, &kg.graph, &q, None, 8, 4);
        let filt = rank_query(&model, &kg.graph, &q, Some(&known), 8, 4);
        assert!(filt.rank <= raw.rank);
    }

    #[test]
    fn relation_scores_prefer_connecting_relation() {
        let (kg, model) = tiny();
        // take a train triple; its relation should score better than a
        // random one *sometimes* — we only check the shape contract here.
        let t = &kg.split.train[0];
        let rels: Vec<RelationId> = (0..kg.num_base_relations() as u32)
            .map(RelationId)
            .collect();
        let scores = relation_scores(&model, &kg.graph, t.s, t.o, &rels, 8, 3);
        assert_eq!(scores.len(), rels.len());
        assert!(
            scores.iter().any(|s| s.is_finite()),
            "some relation must reach"
        );
    }

    #[test]
    fn hop_fraction_sums_to_one_when_successes_exist() {
        let s = RankingSummary {
            hop_counts: [0, 2, 5, 3, 0],
            ..RankingSummary::default()
        };
        let total: f64 = (0..5).map(|h| s.hop_fraction(h)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
