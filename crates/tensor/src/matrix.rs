//! Dense row-major `f32` matrix.
//!
//! This is the storage type underneath the autodiff tape ([`crate::tape`]).
//! All shapes in the MMKGR stack are 2-D (batches of feature vectors), so a
//! matrix — rather than an N-d tensor — keeps the kernel code simple and the
//! inner loops free of stride arithmetic.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})[", self.rows, self.cols)?;
        let show = self.data.len().min(8);
        for (i, v) in self.data[..show].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > show {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A `rows × cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a flat row-major vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: {} values for a {rows}x{cols} matrix",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A `1 × n` row vector from a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// A `n × 1` column vector from a slice.
    pub fn col_vector(v: &[f32]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Stack row slices (all of equal width) into a matrix.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret as a different shape with the same element count.
    pub fn reshaped(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(
            self.data.len(),
            rows * cols,
            "reshape: element count mismatch"
        );
        self.rows = rows;
        self.cols = cols;
        self
    }

    // ---- elementwise --------------------------------------------------

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two equally-shaped matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise (axpy).
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale all elements in place.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Set all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshape in place to `rows × cols`, reusing the backing storage
    /// (growing it if needed) and zeroing every element. The building
    /// block of the `*_into` ops below: inference hot loops keep a pool
    /// of scratch matrices alive across calls instead of allocating.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Become an element-wise copy of `other` (allocation-free once
    /// capacity is warm).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    // ---- products ------------------------------------------------------

    /// `self · other` — the classic row-major ikj kernel. The inner loop
    /// runs over contiguous rows of both the output and `other`, which is
    /// what lets LLVM vectorize it.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n, p) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, p);
        for i in 0..m {
            let arow = &self.data[i * n..(i + 1) * n];
            let orow = &mut out.data[i * p..(i + 1) * p];
            for (k, &a) in arow.iter().enumerate() {
                let brow = &other.data[k * p..(k + 1) * p];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// [`Self::matmul`] into a caller-owned scratch matrix: identical
    /// kernel (bit-identical output), no allocation once `out` is warm.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul_into: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n, p) = (self.rows, self.cols, other.cols);
        out.reset(m, p);
        for i in 0..m {
            let arow = &self.data[i * n..(i + 1) * n];
            let orow = &mut out.data[i * p..(i + 1) * p];
            for (k, &a) in arow.iter().enumerate() {
                let brow = &other.data[k * p..(k + 1) * p];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: {}x{}ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n, p) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, p);
        for i in 0..m {
            let arow = &self.data[i * n..(i + 1) * n];
            let brow = &other.data[i * p..(i + 1) * p];
            for (k, &a) in arow.iter().enumerate() {
                let orow = &mut out.data[k * p..(k + 1) * p];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// [`Self::matmul_nt`] into a caller-owned scratch matrix: identical
    /// kernel (bit-identical output), no allocation once `out` is warm.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt_into: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        out.reset(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Dot product of two matrices viewed as flat vectors.
    pub fn dot_flat(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot_flat: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    // ---- reductions ----------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Squared L2 norm of each row, returned as an `rows × 1` column.
    pub fn row_sq_norms(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().map(|v| v * v).sum();
        }
        out
    }

    /// Index of the max element in row `r` (ties resolved to the first).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut bestv = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > bestv {
                bestv = v;
                best = i;
            }
        }
        best
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    // ---- structural ----------------------------------------------------

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols: row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Vertical concatenation (stack `other` below `self`).
    pub fn concat_rows(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "concat_rows: col mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols: bad range");
        let cols = end - start;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..end]);
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Gather the given rows (with repetition allowed) into a new matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "gather_rows: row {i} out of {}", self.rows);
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Row-wise softmax, numerically stabilized.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_slice(out.row_mut(r));
        }
        out
    }

    /// L2-normalize each row in place; zero rows stay zero.
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let n: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if n > 1e-12 {
                for v in row {
                    *v /= n;
                }
            }
        }
    }
}

/// In-place numerically-stable softmax over a slice.
pub fn softmax_slice(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    // An all-(-inf) row (fully masked) degenerates to uniform to avoid NaN.
    if !max.is_finite() {
        let u = 1.0 / xs.len() as f32;
        xs.iter_mut().for_each(|v| *v = u);
        return;
    }
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    xs.iter_mut().for_each(|v| *v *= inv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);
        let o = Matrix::ones(3, 2);
        assert_eq!(o.sum(), 6.0);
        let f = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        let e = Matrix::eye(3);
        assert_eq!(e.get(1, 1), 1.0);
        assert_eq!(e.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let c = a.matmul(&Matrix::eye(4));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f32 * 0.25);
        let b = Matrix::from_fn(5, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        let b = Matrix::from_fn(2, 3, |r, c| 10.0 + (r * 3 + c) as f32);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 5));
        assert_eq!(cat.slice_cols(0, 2), a);
        assert_eq!(cat.slice_cols(2, 5), b);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Matrix::ones(1, 3);
        let b = Matrix::zeros(2, 3);
        let cat = a.concat_rows(&b);
        assert_eq!(cat.shape(), (3, 3));
        assert_eq!(cat.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(cat.row(2), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_rows_with_repetition() {
        let a = Matrix::from_fn(3, 2, |r, _| r as f32);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[2., 2., 0., 0., 2., 2.]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // monotone: bigger logit -> bigger prob
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_handles_all_masked_row() {
        let mut xs = [f32::NEG_INFINITY, f32::NEG_INFINITY];
        softmax_slice(&mut xs);
        assert!((xs[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_large_values_stable() {
        let mut xs = [1000.0, 1000.0, 999.0];
        softmax_slice(&mut xs);
        assert!(xs.iter().all(|v| v.is_finite()));
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn argmax_first_tie() {
        let a = Matrix::from_vec(1, 4, vec![0.5, 2.0, 2.0, 1.0]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn l2_normalize_rows_handles_zero_row() {
        let mut a = Matrix::from_vec(2, 2, vec![3., 4., 0., 0.]);
        a.l2_normalize_rows();
        assert!((a.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((a.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1., -2., 3., -4.]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert!((a.norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(1, 0, f32::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = a.clone().reshaped(3, 2);
        assert_eq!(b.shape(), (3, 2));
        assert_eq!(b.as_slice(), a.as_slice());
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Matrix::ones(1, 3);
        let b = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        a.add_scaled(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }
}
