//! `mmkgr-datagen` — synthetic multi-modal knowledge-graph generator.
//!
//! The MMKGR paper evaluates on WN9-IMG-TXT and FB-IMG-TXT, multi-modal KGs
//! whose image/text payloads were crawled from the web and featurized with
//! VGG/word2vec. Those artifacts are not obtainable here, so this crate
//! synthesizes MKGs that match the datasets' *shape statistics* (entities,
//! relations, split sizes, images per entity — paper Table II) and plant
//! the properties the evaluation depends on:
//!
//! 1. **compositional rules** `r3 ≈ r1 ∘ r2` whose unmaterialized instances
//!    populate valid/test — facts only reachable by multi-hop reasoning;
//! 2. **modality signal**: image/text features are noisy linear views of
//!    each entity's latent semantics, so fusing them genuinely helps;
//! 3. **modality noise & redundancy**: image backgrounds of pure noise and
//!    near-duplicate images — the targets of the paper's irrelevance-
//!    filtration and attention-fusion modules.
//!
//! ```
//! use mmkgr_datagen::{generate, GenConfig};
//!
//! let kg = generate(&GenConfig::tiny());
//! assert!(kg.split.test.len() > 0);
//! assert_eq!(kg.modal.num_entities(), kg.graph.num_entities());
//! ```

pub mod builder;
pub mod config;
pub mod modality;
pub mod scale;
pub mod schema;

use mmkgr_kg::{KnowledgeGraph, MultiModalKG};
use mmkgr_tensor::init::seeded_rng;

pub use builder::{inferable_fraction, verify_no_leakage};
pub use config::GenConfig;
pub use scale::{generate_scale, ScaleConfig};

/// Generate a complete multi-modal KG dataset from a config.
pub fn generate(cfg: &GenConfig) -> MultiModalKG {
    let mut rng = seeded_rng(cfg.seed);
    let world = schema::sample_latents(cfg, &mut rng);
    let schemas = schema::build_schema(cfg, &world, &mut rng);
    let generated = builder::generate_triples(cfg, &world, &schemas, &mut rng);
    let modal = modality::generate_modalities(cfg, &world, &mut rng);
    let graph = KnowledgeGraph::from_triples(
        cfg.entities,
        cfg.base_relations,
        generated.split.train.clone(),
        Some(cfg.max_out_degree),
    );
    MultiModalKG::new(cfg.name.clone(), graph, modal, generated.split)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_is_well_formed() {
        let cfg = GenConfig::tiny();
        let kg = generate(&cfg);
        assert_eq!(kg.num_entities(), cfg.entities);
        assert_eq!(kg.num_base_relations(), cfg.base_relations);
        assert!(!kg.split.train.is_empty());
        assert!(!kg.split.test.is_empty());
        assert!(!kg.split.valid.is_empty());
        assert!(verify_no_leakage(&kg.split), "train/test leakage");
    }

    #[test]
    fn test_facts_are_multi_hop_inferable() {
        let kg = generate(&GenConfig::tiny());
        let frac = inferable_fraction(&kg.graph, &kg.split.test, 3);
        assert!(
            frac > 0.95,
            "test facts must be ≤3 hops from source in train graph, got {frac}"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&GenConfig::tiny());
        let b = generate(&GenConfig::tiny());
        assert_eq!(a.split.train, b.split.train);
        assert_eq!(a.split.test, b.split.test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::tiny());
        let b = generate(&GenConfig::tiny().with_seed(99));
        assert_ne!(a.split.train, b.split.train);
    }

    #[test]
    fn scaled_wn9_lands_near_target_sizes() {
        let cfg = GenConfig::wn9_img_txt().scaled(0.05);
        let kg = generate(&cfg);
        let total = kg.split.total() as f64;
        let target = cfg.train_triples as f64 / (1.0 - cfg.valid_frac - cfg.test_frac);
        assert!(
            (total - target).abs() / target < 0.5,
            "total {total} vs target {target}"
        );
        // The split must actually hold out data.
        assert!(kg.split.test.len() > 10);
    }

    #[test]
    fn action_space_capped() {
        let cfg = GenConfig::tiny();
        let kg = generate(&cfg);
        assert!(kg.graph.max_out_degree() <= cfg.max_out_degree);
    }
}
