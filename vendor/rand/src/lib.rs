//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal deterministic implementation of exactly the surface it uses:
//! [`rngs::StdRng`] (+ [`SeedableRng::seed_from_u64`]), [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom`]. Stream values differ from
//! upstream `rand`, but every consumer only requires a seeded, uniform,
//! deterministic source — not upstream's exact streams.

/// Low-level uniform `u64`/`u32` source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        distributions::unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (replaces upstream's ChaCha12).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard cheap.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// Uniform f64 in [0, 1) with 53 bits of precision.
    #[inline]
    pub(crate) fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A range usable with [`Rng::gen_range`]; `T` is the sampled type so
    /// integer literals infer from the call site (as in upstream rand).
    pub trait SampleRange<T> {
        fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    self.start + (unit_f64(rng) as $t) * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (unit_f64(rng) as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range!(f32, f64);
}

pub mod seq {
    use super::Rng;

    /// Random slice operations (`shuffle`, `choose`, `choose_multiple`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (self.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_unique_and_capped() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
        let all: Vec<u32> = v.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(all.len(), 10);
    }
}
