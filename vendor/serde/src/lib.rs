//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a value-tree serialization framework under serde's names: types
//! serialize into a [`Value`] tree and deserialize back out of one.
//! `serde_json` (also vendored) renders that tree as JSON text. The
//! visitor/`Serializer` machinery of real serde is intentionally absent —
//! the workspace only derives on plain structs and unit enums, and only
//! ever serializes to JSON.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{DeError, Value};

/// Serialize into the [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Deserialize out of a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- impls

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

// Non-negative values serialize as U64 (see `value_from_signed` — one
// canonical representation keeps tree comparisons meaningful).
macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::deserialize_value(item)?;
                }
                Ok(out)
            }
            other => Err(DeError::expected("fixed-size array", other)),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == ser_tuple!(@count $($t)+) => {
                        Ok(($($t::deserialize_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
    (@count $($t:ident)+) => { [$(ser_tuple!(@one $t)),+].len() };
    (@one $t:ident) => { () };
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: SerKey, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: SerKey + std::hash::Hash + Eq, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for std::collections::HashMap<K, V, S>
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: SerKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize_value()))
                .collect(),
        )
    }
}

/// Map keys must render as JSON strings.
pub trait SerKey {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>
    where
        Self: Sized;
}

impl SerKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_key {
    ($($t:ty),*) => {$(
        impl SerKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::new(format!("bad integer key `{key}`")))
            }
        }
    )*};
}
int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
