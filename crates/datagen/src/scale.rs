//! Scale tier: structural-only graphs with 10^6+ entities.
//!
//! The paper-shaped generators ([`crate::generate`]) synthesize latent
//! semantics, compositional rules, and modality payloads — the right
//! fidelity for reproducing tables, and far too slow (and too
//! memory-hungry: dense per-entity latents and image stacks) for the
//! storage tier's question, which is purely mechanical: *how fast do a
//! million entities round-trip through a CSR snapshot and boot to the
//! first answer?*
//!
//! [`generate_scale`] therefore produces only structure. Edges come from
//! a counter-based hash (splitmix64), so generation is O(edges) with no
//! rejection loops, trivially deterministic, and emits the skewed shape
//! the storage layer must survive:
//!
//! - out-degrees follow an approximate power law (many degree-1
//!   entities, a heavy head) rather than a uniform fan-out;
//! - targets mix ring-local hops with long-range jumps, so multi-hop
//!   neighborhoods are non-degenerate and beam search has real work;
//! - relations are skewed: low relation ids carry most edges, matching
//!   the Zipfian relation frequency of real KGs.
//!
//! The modality bank is [`ModalBank::empty`] — the storage tier snapshots
//! structure and model weights, not synthetic pixels.

use mmkgr_kg::{KnowledgeGraph, ModalBank, MultiModalKG, Split, Triple};

/// Knobs for the structural scale generator.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    pub entities: usize,
    pub base_relations: usize,
    /// Mean out-degree; actual degrees are power-law distributed in
    /// `1..=4*avg_out_degree`.
    pub avg_out_degree: usize,
    /// Triples held out of the train graph as query fodder.
    pub test_queries: usize,
    pub seed: u64,
    /// RL action-space cap forwarded to the CSR builder.
    pub max_out_degree: Option<usize>,
}

impl ScaleConfig {
    /// The headline tier: 10^6 entities, ~4M base triples.
    pub fn million() -> Self {
        ScaleConfig {
            entities: 1_000_000,
            base_relations: 32,
            avg_out_degree: 4,
            test_queries: 1_000,
            seed: 0x5CA1E,
            max_out_degree: None,
        }
    }

    /// Same shape at an arbitrary entity count (tests, quick benches).
    pub fn with_entities(mut self, n: usize) -> Self {
        self.entities = n;
        self.test_queries = self.test_queries.min(n / 10);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// splitmix64: counter-based, so every edge is derivable independently.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Out-degree of `s`: uniform `1..=2*avg` for the body, with a 1/256
/// hub tier at `16*avg` — a heavy head that barely moves the mean
/// (+~6%) but stresses bucket-size skew in the CSR layout.
#[inline]
fn degree_of(seed: u64, s: u64, avg: usize) -> usize {
    let h = mix(seed ^ s.wrapping_mul(0x0BAD_5EED));
    if h & 0xFF == 0 {
        16 * avg
    } else {
        (h >> 32) as usize % (2 * avg) + 1
    }
}

/// Generate a structural-only multi-modal KG at scale. Deterministic in
/// `cfg`; O(entities · avg_out_degree) time and allocation.
pub fn generate_scale(cfg: &ScaleConfig) -> MultiModalKG {
    assert!(cfg.entities >= 2, "scale graph needs at least two entities");
    assert!(cfg.base_relations >= 1, "need at least one relation");
    let n = cfg.entities as u64;
    let mut triples = Vec::with_capacity(cfg.entities * cfg.avg_out_degree * 5 / 4);
    for s in 0..n {
        let d = degree_of(cfg.seed, s, cfg.avg_out_degree);
        for i in 0..d as u64 {
            let h = mix(cfg.seed ^ (s << 20) ^ i);
            // Zipf-ish relation skew: half the mass on relation ids that
            // halve in probability as they grow.
            let r_raw = (h & 0xFFFF) as usize;
            let r = (r_raw.trailing_zeros() as usize).min(cfg.base_relations - 1);
            // Mix ring-local hops (short spans) with long-range jumps.
            let span = if h & 0x10000 == 0 {
                1 + (h >> 17) % 64 // local: within 64 of the source
            } else {
                1 + (h >> 17) % (n - 1) // global jump
            };
            let o = (s + span) % n;
            if o == s {
                continue;
            }
            triples.push(Triple::new(s as u32, r as u32, o as u32));
        }
    }
    // Hold out a deterministic sample as test queries: every k-th triple,
    // removed from the train graph so boot-time answering does real
    // multi-hop work instead of edge lookup.
    let k = (triples.len() / cfg.test_queries.max(1)).max(1);
    let mut train = Vec::with_capacity(triples.len());
    let mut test = Vec::with_capacity(cfg.test_queries);
    for (i, t) in triples.into_iter().enumerate() {
        if i % k == 0 && test.len() < cfg.test_queries {
            test.push(t);
        } else {
            train.push(t);
        }
    }
    let graph = KnowledgeGraph::from_triples(
        cfg.entities,
        cfg.base_relations,
        train.clone(),
        cfg.max_out_degree,
    );
    MultiModalKG::new(
        format!("scale-{}", cfg.entities),
        graph,
        ModalBank::empty(cfg.entities),
        Split {
            train,
            valid: Vec::new(),
            test,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_kg::EntityId;

    #[test]
    fn deterministic_and_well_formed() {
        let cfg = ScaleConfig::million().with_entities(20_000);
        let a = generate_scale(&cfg);
        let b = generate_scale(&cfg);
        assert_eq!(a.split.train, b.split.train);
        assert_eq!(a.split.test, b.split.test);
        assert_eq!(a.num_entities(), 20_000);
        assert_eq!(a.num_base_relations(), cfg.base_relations);
        assert_eq!(a.split.test.len(), cfg.test_queries.min(2_000));
        assert!(a.modal.total_images() == 0, "scale tier is structural-only");
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ScaleConfig::million().with_entities(5_000);
        let a = generate_scale(&cfg);
        let b = generate_scale(&cfg.clone().with_seed(99));
        assert_ne!(a.split.train, b.split.train);
    }

    #[test]
    fn degrees_are_skewed_not_uniform() {
        let kg = generate_scale(&ScaleConfig::million().with_entities(30_000));
        let degs: Vec<usize> = (0..kg.num_entities())
            .map(|e| kg.graph.out_degree(EntityId(e as u32)))
            .collect();
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        // Inverse edges double the mean; the head must clearly outrun it.
        assert!(
            max as f64 > 3.0 * mean,
            "expected a heavy-degree head: max {max}, mean {mean:.1}"
        );
        // Multi-hop structure: a random walk frontier must grow.
        let e0 = EntityId(0);
        assert!(!kg.graph.neighbors(e0).is_empty());
    }

    #[test]
    fn mean_degree_tracks_config() {
        let cfg = ScaleConfig::million().with_entities(10_000);
        let kg = generate_scale(&cfg);
        // Base triples only (CSR adds inverses): mean ≈ avg_out_degree
        // within the tolerance of the power-law boost (+~37%).
        let per_entity = kg.split.train.len() as f64 / cfg.entities as f64;
        assert!(
            per_entity > cfg.avg_out_degree as f64 * 0.8
                && per_entity < cfg.avg_out_degree as f64 * 2.5,
            "mean base out-degree {per_entity:.2} vs configured {}",
            cfg.avg_out_degree
        );
    }
}
