//! Deterministic bounded k-hop subgraph extraction over [`KnowledgeGraph`].
//!
//! Retrieval-augmented generation over a multi-modal KG (M³KG-RAG-style)
//! grounds an LLM in the k-hop neighborhood of the query's seed entities.
//! This module extracts that neighborhood as a typed [`Subgraph`]:
//! entities with hop distances and modality-presence flags, plus the
//! induced base-relation triples between them.
//!
//! Determinism is a serving contract (responses are pinned byte-identical
//! across processes), so every choice point is ordered:
//!
//! - the frontier is expanded in ascending entity-id order;
//! - each entity's neighbors are taken in CSR bucket order, i.e. sorted
//!   by `(relation, target)`;
//! - when a cap forces dropping candidates, survivors are admitted in
//!   ascending entity-id order — the same tie-break the serving layer
//!   uses for equal-score candidates.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::graph::KnowledgeGraph;
use crate::ids::{EntityId, RelationId};
use crate::modal::ModalBank;
use crate::triple::Triple;

/// Bounds and filters for one extraction. All caps use `0 = unlimited`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubgraphConfig {
    /// Maximum hop distance from the nearest seed (k of "k-hop").
    pub hops: usize,
    /// Cap on total entities in the subgraph (seeds included); `0` = no cap.
    pub max_entities: usize,
    /// Cap on edges followed out of each frontier entity per hop; `0` = no cap.
    pub per_hop_fanout: usize,
    /// If `Some`, only traverse (and induce triples over) these base
    /// relations; inverse edges match through their base relation.
    pub relations: Option<Vec<RelationId>>,
    /// Only admit non-seed entities that have at least one image feature.
    pub require_images: bool,
    /// Only admit non-seed entities that have a text feature.
    pub require_text: bool,
}

impl Default for SubgraphConfig {
    fn default() -> Self {
        SubgraphConfig {
            hops: 2,
            max_entities: 0,
            per_hop_fanout: 0,
            relations: None,
            require_images: false,
            require_text: false,
        }
    }
}

/// Per-entity modality presence, decoupled from the feature tensors so
/// snapshot-booted servers (graph only, no [`ModalBank`]) can still build
/// subgraphs — their flags are simply all `false`.
#[derive(Clone, Debug, Default)]
pub struct ModalPresence {
    has_image: Vec<bool>,
    has_text: Vec<bool>,
}

impl ModalPresence {
    pub fn from_bank(bank: &ModalBank) -> Self {
        let n = bank.num_entities();
        let text = bank.text_dim() > 0;
        ModalPresence {
            has_image: (0..n)
                .map(|e| bank.image_count(EntityId(e as u32)) > 0)
                .collect(),
            has_text: vec![text; n],
        }
    }

    /// Rebuild presence from raw flag vectors — the snapshot read path.
    /// Mismatched lengths are truncated to the shorter one so a corrupt
    /// section degrades to `false` flags rather than panicking.
    pub fn from_flags(mut has_image: Vec<bool>, mut has_text: Vec<bool>) -> Self {
        let n = has_image.len().min(has_text.len());
        has_image.truncate(n);
        has_text.truncate(n);
        ModalPresence {
            has_image,
            has_text,
        }
    }

    /// Raw flag vectors, `(has_image, has_text)` — the snapshot write path.
    pub fn flags(&self) -> (&[bool], &[bool]) {
        (&self.has_image, &self.has_text)
    }

    #[inline]
    pub fn has_image(&self, e: EntityId) -> bool {
        self.has_image.get(e.index()).copied().unwrap_or(false)
    }

    #[inline]
    pub fn has_text(&self, e: EntityId) -> bool {
        self.has_text.get(e.index()).copied().unwrap_or(false)
    }
}

/// One entity of an extracted subgraph.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubgraphEntity {
    pub entity: EntityId,
    /// Hop distance from the nearest seed (seeds are `0`).
    pub hops: usize,
    pub has_image: bool,
    pub has_text: bool,
}

/// A bounded k-hop neighborhood: entities (ascending id order, each with
/// its hop distance and modality flags) plus the induced base-relation
/// triples between included entities (ascending `(s, r, o)` order).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Subgraph {
    pub entities: Vec<SubgraphEntity>,
    pub triples: Vec<Triple>,
    /// True when a cap (`max_entities` or `per_hop_fanout`) dropped
    /// candidates that the unbounded expansion would have included.
    pub truncated: bool,
}

impl Subgraph {
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Hop distance of `e`, if included.
    pub fn hop_of(&self, e: EntityId) -> Option<usize> {
        self.entities
            .binary_search_by_key(&e, |se| se.entity)
            .ok()
            .map(|i| self.entities[i].hops)
    }
}

/// Extract the bounded k-hop neighborhood of `seeds` (frontier union:
/// hop distance is the minimum over all seeds). Out-of-range seeds are
/// ignored; no valid seeds yields an empty subgraph.
///
/// Traversal follows both edge directions (the CSR stores synthetic
/// inverses), but induced triples are reported in base orientation only.
///
/// Extraction reads through [`KnowledgeGraph`] — not the raw CSR store —
/// so live-mutation delta overlays are visible to retrieval.
pub fn extract(
    store: &KnowledgeGraph,
    seeds: &[EntityId],
    cfg: &SubgraphConfig,
    modal: Option<&ModalPresence>,
) -> Subgraph {
    let rs = store.relations();
    let relation_allowed = |r: RelationId| -> bool {
        if r == rs.no_op() {
            return false;
        }
        match &cfg.relations {
            None => true,
            Some(allow) => {
                let base = if rs.is_inverse(r) { rs.inverse(r) } else { r };
                allow.contains(&base)
            }
        }
    };
    let modality_ok = |e: EntityId| -> bool {
        let (img, txt) = match modal {
            Some(p) => (p.has_image(e), p.has_text(e)),
            None => (false, false),
        };
        (!cfg.require_images || img) && (!cfg.require_text || txt)
    };

    // hop distances; BTreeMap keeps iteration in ascending entity order.
    let mut dist: BTreeMap<EntityId, usize> = BTreeMap::new();
    let mut truncated = false;
    for &s in seeds {
        if s.index() < store.num_entities() {
            dist.entry(s).or_insert(0);
        }
    }
    if cfg.max_entities > 0 && dist.len() > cfg.max_entities {
        // More seeds than the cap: keep the lowest-id seeds.
        let keep: Vec<EntityId> = dist.keys().copied().take(cfg.max_entities).collect();
        dist.retain(|e, _| keep.contains(e));
        truncated = true;
    }
    let mut frontier: Vec<EntityId> = dist.keys().copied().collect();

    for hop in 1..=cfg.hops {
        if frontier.is_empty() {
            break;
        }
        // Candidates discovered this hop, in ascending entity-id order.
        let mut found: BTreeMap<EntityId, ()> = BTreeMap::new();
        for &e in &frontier {
            let mut taken = 0usize;
            for edge in store.neighbors(e) {
                if !relation_allowed(edge.relation) {
                    continue;
                }
                if cfg.per_hop_fanout > 0 && taken >= cfg.per_hop_fanout {
                    truncated = true;
                    break;
                }
                taken += 1;
                let t = edge.target;
                if dist.contains_key(&t) || found.contains_key(&t) || !modality_ok(t) {
                    continue;
                }
                found.insert(t, ());
            }
        }
        frontier.clear();
        for (t, ()) in found {
            if cfg.max_entities > 0 && dist.len() >= cfg.max_entities {
                truncated = true;
                break;
            }
            dist.insert(t, hop);
            frontier.push(t);
        }
    }

    // Induced triples: base-orientation forward edges between included
    // entities, in ascending (s, r, o) order by CSR construction.
    let mut triples = Vec::new();
    for &s in dist.keys() {
        for edge in store.forward_neighbors(s) {
            if relation_allowed(edge.relation) && dist.contains_key(&edge.target) {
                triples.push(Triple {
                    s,
                    r: edge.relation,
                    o: edge.target,
                });
            }
        }
    }

    let entities = dist
        .iter()
        .map(|(&entity, &hops)| SubgraphEntity {
            entity,
            hops,
            has_image: modal.map(|p| p.has_image(entity)).unwrap_or(false),
            has_text: modal.map(|p| p.has_text(entity)).unwrap_or(false),
        })
        .collect();

    Subgraph {
        entities,
        triples,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeSet, HashMap, HashSet};

    fn t(s: u32, r: u32, o: u32) -> Triple {
        Triple {
            s: EntityId(s),
            r: RelationId(r),
            o: EntityId(o),
        }
    }

    /// A small chain + fan graph: 0-1-2-3 chain on r0, 1→{4,5,6} fan on r1.
    fn store() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(
            7,
            2,
            vec![
                t(0, 0, 1),
                t(1, 0, 2),
                t(2, 0, 3),
                t(1, 1, 4),
                t(1, 1, 5),
                t(1, 1, 6),
            ],
            None,
        )
    }

    /// Naive reference: plain BFS with no caps, both directions.
    fn naive_khop(
        store: &KnowledgeGraph,
        seeds: &[EntityId],
        hops: usize,
    ) -> HashMap<EntityId, usize> {
        let rs = store.relations();
        let mut dist: HashMap<EntityId, usize> = seeds
            .iter()
            .filter(|s| s.index() < store.num_entities())
            .map(|&s| (s, 0))
            .collect();
        let mut frontier: Vec<EntityId> = dist.keys().copied().collect();
        for hop in 1..=hops {
            let mut next = Vec::new();
            for &e in &frontier {
                for edge in store.neighbors(e) {
                    if edge.relation == rs.no_op() || dist.contains_key(&edge.target) {
                        continue;
                    }
                    dist.insert(edge.target, hop);
                    next.push(edge.target);
                }
            }
            frontier = next;
        }
        dist
    }

    #[test]
    fn uncapped_extraction_matches_naive_bfs() {
        let s = store();
        for hops in 0..=3 {
            let cfg = SubgraphConfig {
                hops,
                ..SubgraphConfig::default()
            };
            let sg = extract(&s, &[EntityId(0)], &cfg, None);
            let naive = naive_khop(&s, &[EntityId(0)], hops);
            let got: HashMap<EntityId, usize> =
                sg.entities.iter().map(|e| (e.entity, e.hops)).collect();
            assert_eq!(got, naive, "hops={hops}");
            assert!(!sg.truncated);
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let s = store();
        let cfg = SubgraphConfig {
            hops: 2,
            max_entities: 4,
            per_hop_fanout: 2,
            ..SubgraphConfig::default()
        };
        let a = extract(&s, &[EntityId(0), EntityId(3)], &cfg, None);
        let b = extract(&s, &[EntityId(0), EntityId(3)], &cfg, None);
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.triples, b.triples);
        assert_eq!(a.truncated, b.truncated);
    }

    #[test]
    fn max_entities_cap_admits_lowest_ids_first() {
        let s = store();
        // From seed 1 at hop 1 the uncapped frontier is {0, 2, 4, 5, 6};
        // cap at 3 total ⇒ the 2 extra slots go to the lowest ids {0, 2}.
        let cfg = SubgraphConfig {
            hops: 1,
            max_entities: 3,
            ..SubgraphConfig::default()
        };
        let sg = extract(&s, &[EntityId(1)], &cfg, None);
        let ids: Vec<u32> = sg.entities.iter().map(|e| e.entity.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(sg.truncated);
    }

    #[test]
    fn fanout_cap_takes_csr_bucket_order() {
        let s = store();
        // Entity 1's bucket sorted by (relation, target):
        // (r0,2), (r1,4), (r1,5), (r1,6), (~r0,0). Fanout 2 keeps the
        // first two edges ⇒ hop-1 set {2, 4}.
        let cfg = SubgraphConfig {
            hops: 1,
            per_hop_fanout: 2,
            ..SubgraphConfig::default()
        };
        let sg = extract(&s, &[EntityId(1)], &cfg, None);
        let ids: Vec<u32> = sg.entities.iter().map(|e| e.entity.0).collect();
        assert_eq!(ids, vec![1, 2, 4]);
        assert!(sg.truncated);
    }

    #[test]
    fn relation_filter_blocks_traversal_and_triples() {
        let s = store();
        let cfg = SubgraphConfig {
            hops: 2,
            relations: Some(vec![RelationId(1)]),
            ..SubgraphConfig::default()
        };
        let sg = extract(&s, &[EntityId(1)], &cfg, None);
        let ids: BTreeSet<u32> = sg.entities.iter().map(|e| e.entity.0).collect();
        assert_eq!(ids, BTreeSet::from([1, 4, 5, 6]));
        assert!(sg.triples.iter().all(|tr| tr.r == RelationId(1)));
        assert_eq!(sg.triples.len(), 3);
    }

    #[test]
    fn empty_and_out_of_range_seeds() {
        let s = store();
        let cfg = SubgraphConfig::default();
        assert!(extract(&s, &[], &cfg, None).is_empty());
        let sg = extract(&s, &[EntityId(999)], &cfg, None);
        assert!(sg.is_empty());
        assert!(!sg.truncated);
    }

    #[test]
    fn multi_seed_union_takes_min_hop() {
        let s = store();
        let cfg = SubgraphConfig {
            hops: 1,
            ..SubgraphConfig::default()
        };
        let sg = extract(&s, &[EntityId(0), EntityId(2)], &cfg, None);
        // 1 is adjacent to both seeds: hop 1, counted once.
        assert_eq!(sg.hop_of(EntityId(1)), Some(1));
        assert_eq!(sg.hop_of(EntityId(0)), Some(0));
        assert_eq!(sg.hop_of(EntityId(2)), Some(0));
        assert_eq!(sg.hop_of(EntityId(3)), Some(1));
    }

    #[test]
    fn every_triple_within_hops_of_a_seed() {
        // Property: over several seeds/configs, both endpoints of every
        // induced triple are included entities with hop ≤ cfg.hops.
        let s = store();
        for seeds in [
            vec![EntityId(0)],
            vec![EntityId(1), EntityId(3)],
            vec![EntityId(6)],
        ] {
            for hops in 0..=3 {
                for max_entities in [0usize, 2, 5] {
                    let cfg = SubgraphConfig {
                        hops,
                        max_entities,
                        ..SubgraphConfig::default()
                    };
                    let sg = extract(&s, &seeds, &cfg, None);
                    let included: HashSet<EntityId> =
                        sg.entities.iter().map(|e| e.entity).collect();
                    for e in &sg.entities {
                        assert!(e.hops <= hops);
                    }
                    for tr in &sg.triples {
                        assert!(included.contains(&tr.s) && included.contains(&tr.o));
                    }
                }
            }
        }
    }

    #[test]
    fn modality_filter_and_flags() {
        use mmkgr_tensor::Matrix;
        let n = 7;
        // Entities 4 and 5 get one image each; everyone has a text vector.
        let stacks: Vec<Matrix> = (0..n)
            .map(|e| {
                if e == 4 || e == 5 {
                    Matrix::from_vec(1, 2, vec![1.0, 0.0])
                } else {
                    Matrix::zeros(0, 2)
                }
            })
            .collect();
        let bank = ModalBank::new(stacks, Matrix::zeros(n, 3));
        let presence = ModalPresence::from_bank(&bank);
        let s = store();
        let cfg = SubgraphConfig {
            hops: 1,
            require_images: true,
            ..SubgraphConfig::default()
        };
        let sg = extract(&s, &[EntityId(1)], &cfg, Some(&presence));
        let ids: BTreeSet<u32> = sg.entities.iter().map(|e| e.entity.0).collect();
        // Seed stays regardless; only image-bearing neighbors admitted.
        assert_eq!(ids, BTreeSet::from([1, 4, 5]));
        for e in &sg.entities {
            assert_eq!(e.has_image, e.entity.0 == 4 || e.entity.0 == 5);
            assert!(e.has_text);
        }
    }
}
