//! Adopting MMKGR on your own data: build a multi-modal KG from plain
//! TSV triple files (the WN18/FB15k interchange format) instead of the
//! synthetic generator, attach (here: empty) modality banks, and train a
//! structure-only agent.
//!
//! Run: `cargo run --release --example custom_dataset`

use std::io::Write;

use mmkgr::core::prelude::*;
use mmkgr::kg::io::load_split_dir;
use mmkgr::kg::{KnowledgeGraph, ModalBank, MultiModalKG, Split};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a miniature dataset in the standard TSV format. In real
    //    use these files already exist on disk.
    let dir = std::env::temp_dir().join("mmkgr-custom-dataset");
    std::fs::create_dir_all(&dir)?;
    let write = |name: &str, rows: &[&str]| -> std::io::Result<()> {
        let mut f = std::fs::File::create(dir.join(name))?;
        for r in rows {
            writeln!(f, "{r}")?;
        }
        Ok(())
    };
    // A tiny movie world in the spirit of the paper's Fig. 1.
    write(
        "train.txt",
        &[
            "titanic\thero\tjack_dawson",
            "titanic\theroine\trose_bukater",
            "jack_dawson\tplayed_by\tleonardo_dicaprio",
            "rose_bukater\tplayed_by\tkate_winslet",
            "titanic\tdirected_by\tjames_cameron",
            "james_cameron\tdirects\tleonardo_dicaprio",
            "avatar\tdirected_by\tjames_cameron",
            "jack_dawson\tlover\trose_bukater",
            "rose_bukater\tlover\tjack_dawson",
        ],
    )?;
    write("valid.txt", &["titanic\tstarred_by\tkate_winslet"])?;
    write("test.txt", &["titanic\tstarred_by\tleonardo_dicaprio"])?;

    // 2. Load: symbols are interned into dense ids; the vocab keeps the
    //    mapping for reporting.
    let (split, vocab) = load_split_dir(&dir)?;
    println!(
        "loaded {} train / {} valid / {} test triples, {} entities, {} relations",
        split.train.len(),
        split.valid.len(),
        split.test.len(),
        vocab.entities.len(),
        vocab.relations.len()
    );

    // 3. Assemble the multi-modal KG. Real deployments attach text/image
    //    feature banks here; ModalBank::empty gives a structure-only MKG
    //    (≡ the OSKGR setting).
    // The walkable graph holds the *training* facts only — held-out
    // facts must be provable by alternative paths, never walked directly.
    let num_entities = vocab.entities.len();
    let num_relations = vocab.relations.len();
    let graph =
        KnowledgeGraph::from_triples(num_entities, num_relations, split.train.clone(), None);
    let kg = MultiModalKG::new(
        "movie-world",
        graph,
        ModalBank::empty(num_entities),
        Split {
            train: split.train,
            valid: split.valid,
            test: split.test,
        },
    );
    println!("{}", mmkgr::kg::GraphProfile::compute(&kg.graph, 32));

    // 4. Train a small structure-only MMKGR agent and explain the held-
    //    out query with its best reasoning paths.
    let cfg = MmkgrConfig {
        epochs: 15,
        warmstart_epochs: 4,
        batch_size: 16,
        beam_width: 8,
        ..MmkgrConfig::quick()
    }
    .variant(Variant::Oskgr);
    let engine = RewardEngine::new(&cfg, Some(NoShaper));
    let model = MmkgrModel::new(&kg, cfg, None);
    let mut trainer = Trainer::new(model, engine);
    trainer.train(&kg, 0);

    let t = kg.split.test[0];
    println!(
        "\nquery: ({}, {}, ?) — gold: {}",
        vocab.entities[t.s.index()],
        vocab.relations[t.r.index()],
        vocab.entities[t.o.index()]
    );
    let rels = kg.graph.relations();
    for (i, p) in beam_search(&trainer.model, &kg.graph, t.s, t.r, 8, 3)
        .iter()
        .take(5)
        .enumerate()
    {
        let chain: Vec<String> = p
            .relations
            .iter()
            .map(|r| {
                if rels.is_inverse(*r) {
                    format!("{}⁻¹", vocab.relations[rels.inverse(*r).index()])
                } else {
                    vocab.relations[r.index()].clone()
                }
            })
            .collect();
        println!(
            "#{} → {:<18} logp {:>7.2}  via {}",
            i + 1,
            vocab.entities[p.entity.index()],
            p.logp,
            if chain.is_empty() {
                "(stay)".into()
            } else {
                chain.join(" → ")
            }
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
