//! Hyper-parameters and ablation switches for MMKGR.
//!
//! Defaults follow §V-A3 of the paper (T=4, distance threshold k=3,
//! bandwidth u=3, λ=(0.1, 0.8, 0.1), batch 128, 50 epochs), with feature
//! widths scaled down from the paper's GPU sizes (d_s=200, d_i≤4096,
//! d_t=1000) to CPU-friendly ones — see DESIGN.md.

use serde::{Deserialize, Serialize};

/// Which reward components are active (the paper's 3D reward and its
/// ablations, §V-D2 and Fig. 9).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Reward-shaping on the destination reward (ConvE score when the
    /// agent misses; Eq. 13). Off = plain 0/1 destination reward.
    pub shaping: bool,
    /// Distance reward (Eq. 14).
    pub distance: bool,
    /// Diversity reward (Eq. 15).
    pub diversity: bool,
}

impl RewardConfig {
    /// The full 3D mechanism.
    pub fn full() -> Self {
        RewardConfig {
            shaping: true,
            distance: true,
            diversity: true,
        }
    }

    /// DEKGR: destination (with shaping) only.
    pub fn destination_only() -> Self {
        RewardConfig {
            shaping: true,
            distance: false,
            diversity: false,
        }
    }

    /// DSKGR: destination + distance.
    pub fn destination_distance() -> Self {
        RewardConfig {
            shaping: true,
            distance: true,
            diversity: false,
        }
    }

    /// DVKGR: destination + diversity.
    pub fn destination_diversity() -> Self {
        RewardConfig {
            shaping: true,
            distance: false,
            diversity: true,
        }
    }

    /// ZOKGR: the bare "0-1 reward" of prior RL reasoners.
    pub fn zero_one() -> Self {
        RewardConfig {
            shaping: false,
            distance: false,
            diversity: false,
        }
    }
}

/// Which recurrent cell encodes the path history `h_t` of Eq. (1).
///
/// The paper fixes an LSTM; the alternatives exist for the
/// `ablation_history` bench, which asks whether that choice is load-
/// bearing at reproduction scale.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistoryEncoder {
    /// The paper's encoder (Eq. 1).
    #[default]
    Lstm,
    /// Gated recurrent unit — fewer parameters, no cell state.
    Gru,
    /// Exponential moving average of projected inputs — a deliberately
    /// weak, gate-free encoder that bounds how much the gating machinery
    /// actually contributes.
    Ema,
}

impl HistoryEncoder {
    pub fn name(&self) -> &'static str {
        match self {
            HistoryEncoder::Lstm => "LSTM",
            HistoryEncoder::Gru => "GRU",
            HistoryEncoder::Ema => "EMA",
        }
    }
}

/// Named model variants used throughout the paper's ablations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Full MMKGR.
    Full,
    /// Structure only (no multi-modal features), 3D reward kept.
    Oskgr,
    /// Structure + text (no images).
    Stkgr,
    /// Structure + images (no text).
    Sikgr,
    /// No irrelevance-filtration module.
    Fakgr,
    /// No attention-fusion module (MLB fusion + filtration only).
    Fgkgr,
    /// Destination reward only.
    Dekgr,
    /// Destination + distance rewards.
    Dskgr,
    /// Destination + diversity rewards.
    Dvkgr,
    /// Plain 0/1 terminal reward.
    Zokgr,
}

impl Variant {
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Full => "MMKGR",
            Variant::Oskgr => "OSKGR",
            Variant::Stkgr => "STKGR",
            Variant::Sikgr => "SIKGR",
            Variant::Fakgr => "FAKGR",
            Variant::Fgkgr => "FGKGR",
            Variant::Dekgr => "DEKGR",
            Variant::Dskgr => "DSKGR",
            Variant::Dvkgr => "DVKGR",
            Variant::Zokgr => "ZOKGR",
        }
    }
}

/// Full MMKGR configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MmkgrConfig {
    /// Structural embedding width `d_s`.
    pub struct_dim: usize,
    /// Attention width `d` (Q/K/V projections).
    pub fusion_dim: usize,
    /// MLB joint width `j`.
    pub mlb_dim: usize,
    /// Projected per-modality width (`d_x/2` in Eq. 3).
    pub modal_proj_dim: usize,
    /// Maximum reasoning step `T`.
    pub max_steps: usize,
    /// Distance-reward threshold on hops `k` (Eq. 14).
    pub distance_threshold: usize,
    /// Gaussian bandwidth `u` (Eq. 15).
    pub bandwidth: f32,
    /// Reward mixture `(λ1, λ2, λ3)`, summing to 1 (Eq. 16).
    pub lambda: (f32, f32, f32),
    pub batch_size: usize,
    pub epochs: usize,
    pub lr: f32,
    /// Moving-average reward baseline decay.
    pub baseline_decay: f32,
    /// Entropy-bonus weight (0 disables; REINFORCE exploration aid).
    pub entropy_weight: f32,
    /// ε-exploration during training: the behaviour policy samples from
    /// `(1−ε)·π + ε·uniform` (gradients still use π, i.e. vanilla
    /// REINFORCE with an exploratory behaviour mix).
    pub epsilon: f32,
    /// Beam width for ranking inference.
    pub beam_width: usize,
    /// Paths remembered per query relation for the diversity reward.
    pub diversity_memory: usize,
    /// Sampled rollouts per training query per epoch (MINERVA-style
    /// multiplicity; more rollouts = denser exploration per query).
    pub rollouts_per_query: usize,
    pub seed: u64,
    // --- ablation switches -------------------------------------------
    pub use_text: bool,
    pub use_image: bool,
    pub use_attention_fusion: bool,
    pub use_irrelevance_filtration: bool,
    pub reward: RewardConfig,
    /// Path-history encoder (Eq. 1); serde-default keeps older
    /// checkpoints loadable.
    #[serde(default)]
    pub history: HistoryEncoder,
    /// Behaviour-cloning epochs on BFS demonstration paths before the
    /// REINFORCE phase. 0 = the paper's protocol (pure RL); nonzero is
    /// the reproduction-scale training protocol applied uniformly to all
    /// RL reasoners (DESIGN.md, deviation list).
    #[serde(default)]
    pub warmstart_epochs: usize,
    /// Pay the distance reward (Eq. 14) for *any* terminated walk, as the
    /// equation literally reads — not only on reaching the gold entity.
    /// Exists for the `ablation_reward_gate` bench, which demonstrates
    /// why the success-gated reading (DESIGN.md deviation 1) is the only
    /// one consistent with the paper's results: under the literal reading
    /// "hop once anywhere and stop" is the optimal policy.
    #[serde(default)]
    pub paper_literal_distance: bool,
}

impl Default for MmkgrConfig {
    fn default() -> Self {
        MmkgrConfig {
            struct_dim: 32,
            fusion_dim: 32,
            mlb_dim: 32,
            modal_proj_dim: 16,
            max_steps: 4,
            distance_threshold: 3,
            bandwidth: 3.0,
            lambda: (0.1, 0.8, 0.1),
            batch_size: 128,
            epochs: 50,
            lr: 1e-3,
            baseline_decay: 0.95,
            entropy_weight: 0.02,
            epsilon: 0.0,
            beam_width: 16,
            diversity_memory: 32,
            rollouts_per_query: 2,
            seed: 7,
            use_text: true,
            use_image: true,
            use_attention_fusion: true,
            use_irrelevance_filtration: true,
            reward: RewardConfig::full(),
            history: HistoryEncoder::Lstm,
            warmstart_epochs: 0,
            paper_literal_distance: false,
        }
    }
}

impl MmkgrConfig {
    /// A fast configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        MmkgrConfig {
            struct_dim: 16,
            fusion_dim: 16,
            mlb_dim: 16,
            modal_proj_dim: 8,
            epochs: 5,
            batch_size: 32,
            beam_width: 8,
            ..Self::default()
        }
    }

    /// Apply a named ablation variant.
    pub fn variant(mut self, v: Variant) -> Self {
        match v {
            Variant::Full => {}
            Variant::Oskgr => {
                self.use_text = false;
                self.use_image = false;
            }
            Variant::Stkgr => self.use_image = false,
            Variant::Sikgr => self.use_text = false,
            Variant::Fakgr => self.use_irrelevance_filtration = false,
            Variant::Fgkgr => self.use_attention_fusion = false,
            Variant::Dekgr => self.reward = RewardConfig::destination_only(),
            Variant::Dskgr => self.reward = RewardConfig::destination_distance(),
            Variant::Dvkgr => self.reward = RewardConfig::destination_diversity(),
            Variant::Zokgr => self.reward = RewardConfig::zero_one(),
        }
        self
    }

    /// Structural row width `d_y = 3·d_s` ( `[e_s; h_t; r_q]`, Eq. 1).
    pub fn struct_row_dim(&self) -> usize {
        3 * self.struct_dim
    }

    /// Multi-modal row width `d_x` (Eq. 3): one or two projected blocks.
    pub fn modal_row_dim(&self) -> usize {
        let blocks = self.use_text as usize + self.use_image as usize;
        blocks * self.modal_proj_dim
    }

    /// Action-embedding width `d_a = 2·d_s` (`[r; e]` stacking).
    pub fn action_dim(&self) -> usize {
        2 * self.struct_dim
    }

    pub fn uses_modalities(&self) -> bool {
        self.use_text || self.use_image
    }

    /// Validate invariant: λ sums to 1 (Eq. 16 side condition).
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.lambda.0 + self.lambda.1 + self.lambda.2;
        if (sum - 1.0).abs() > 1e-4 {
            return Err(format!("lambda must sum to 1, got {sum}"));
        }
        if self.max_steps == 0 {
            return Err("max_steps must be ≥ 1".into());
        }
        if self.bandwidth <= 0.0 {
            return Err("bandwidth must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_hyperparameters() {
        let c = MmkgrConfig::default();
        assert_eq!(c.max_steps, 4);
        assert_eq!(c.distance_threshold, 3);
        assert_eq!(c.bandwidth, 3.0);
        assert_eq!(c.lambda, (0.1, 0.8, 0.1));
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.epochs, 50);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn variant_switches() {
        let os = MmkgrConfig::default().variant(Variant::Oskgr);
        assert!(!os.uses_modalities());
        assert_eq!(os.modal_row_dim(), 0);

        let st = MmkgrConfig::default().variant(Variant::Stkgr);
        assert!(st.use_text && !st.use_image);
        assert_eq!(st.modal_row_dim(), st.modal_proj_dim);

        let zo = MmkgrConfig::default().variant(Variant::Zokgr);
        assert_eq!(zo.reward, RewardConfig::zero_one());

        let fa = MmkgrConfig::default().variant(Variant::Fakgr);
        assert!(!fa.use_irrelevance_filtration && fa.use_attention_fusion);
    }

    #[test]
    fn validation_catches_bad_lambda() {
        let c = MmkgrConfig {
            lambda: (0.5, 0.5, 0.5),
            ..MmkgrConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn derived_dims() {
        let c = MmkgrConfig::default();
        assert_eq!(c.struct_row_dim(), 96);
        assert_eq!(c.modal_row_dim(), 32);
        assert_eq!(c.action_dim(), 64);
    }

    #[test]
    fn variant_names_unique() {
        let all = [
            Variant::Full,
            Variant::Oskgr,
            Variant::Stkgr,
            Variant::Sikgr,
            Variant::Fakgr,
            Variant::Fgkgr,
            Variant::Dekgr,
            Variant::Dskgr,
            Variant::Dvkgr,
            Variant::Zokgr,
        ];
        let mut names: Vec<&str> = all.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
