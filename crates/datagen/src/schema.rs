//! Entity latents and the relation schema with planted compositions.

use mmkgr_tensor::init::normal;
use mmkgr_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::GenConfig;

/// Latent world model: every entity has a semantic vector near one of
/// `clusters` centroids. Modality features and relation structure are both
/// derived from these latents, which is what gives the modalities genuine
/// (but noisy) signal about graph structure — the property MMKGR exploits.
pub struct LatentWorld {
    pub latents: Matrix,
    pub cluster_of: Vec<usize>,
    pub centroids: Matrix,
}

pub fn sample_latents(cfg: &GenConfig, rng: &mut StdRng) -> LatentWorld {
    let centroids = normal(rng, cfg.clusters, cfg.latent_dim, 1.0);
    let mut cluster_of = Vec::with_capacity(cfg.entities);
    let mut latents = Matrix::zeros(cfg.entities, cfg.latent_dim);
    for e in 0..cfg.entities {
        let c = rng.gen_range(0..cfg.clusters);
        cluster_of.push(c);
        let noise = normal(rng, 1, cfg.latent_dim, 0.3);
        for (i, v) in latents.row_mut(e).iter_mut().enumerate() {
            *v = centroids.get(c, i) + noise.get(0, i);
        }
    }
    LatentWorld {
        latents,
        cluster_of,
        centroids,
    }
}

/// How a single relation behaves in the latent world.
#[derive(Clone, Debug)]
pub struct RelationSchema {
    /// Source entities come from this cluster.
    pub src_cluster: usize,
    /// Target entities come from this cluster.
    pub tgt_cluster: usize,
    /// TransE-style translation vector in latent space.
    pub offset: Vec<f32>,
    /// If `Some((r1, r2))`, this relation is (approximately) the
    /// composition `r1 ∘ r2` — the planted multi-hop rule.
    pub composed_of: Option<(usize, usize)>,
    /// Average out-fanout per participating source entity.
    pub fanout: usize,
}

/// Build schemas for all base relations. The first
/// `(1 - composed_frac) * R` relations are atomic; the rest are
/// compositions of two atomic relations with chainable clusters.
pub fn build_schema(cfg: &GenConfig, world: &LatentWorld, rng: &mut StdRng) -> Vec<RelationSchema> {
    let total = cfg.base_relations;
    let num_composed = ((total as f64) * cfg.composed_frac).round() as usize;
    let num_atomic = total - num_composed;
    assert!(
        num_atomic >= 2,
        "need at least two atomic relations to compose"
    );

    // Rough per-relation quota so the expected triple count matches cfg.
    let quota = (cfg.train_triples as f64 / (1.0 - cfg.valid_frac - cfg.test_frac) / total as f64)
        .ceil() as usize;

    let mut schemas: Vec<RelationSchema> = Vec::with_capacity(total);
    for _ in 0..num_atomic {
        let src = rng.gen_range(0..cfg.clusters);
        let tgt = rng.gen_range(0..cfg.clusters);
        let offset: Vec<f32> = (0..cfg.latent_dim)
            .map(|i| {
                world.centroids.get(tgt, i) - world.centroids.get(src, i)
                    + rng.gen_range(-0.2f32..0.2)
            })
            .collect();
        schemas.push(RelationSchema {
            src_cluster: src,
            tgt_cluster: tgt,
            offset,
            composed_of: None,
            fanout: rng.gen_range(1..=3),
        });
        let _ = quota;
    }
    for _ in 0..num_composed {
        // Find a chainable pair r1: A→B, r2: B→C.
        let mut r1 = rng.gen_range(0..num_atomic);
        let mut r2 = rng.gen_range(0..num_atomic);
        let mut tries = 0;
        while schemas[r1].tgt_cluster != schemas[r2].src_cluster && tries < 200 {
            r1 = rng.gen_range(0..num_atomic);
            r2 = rng.gen_range(0..num_atomic);
            tries += 1;
        }
        if schemas[r1].tgt_cluster != schemas[r2].src_cluster {
            // No chainable pair — force-chain r2 after r1.
            r2 = (0..num_atomic)
                .min_by_key(|&j| {
                    (schemas[j].src_cluster as i64 - schemas[r1].tgt_cluster as i64).abs()
                })
                .unwrap();
        }
        let offset: Vec<f32> = (0..cfg.latent_dim)
            .map(|i| schemas[r1].offset[i] + schemas[r2].offset[i])
            .collect();
        schemas.push(RelationSchema {
            src_cluster: schemas[r1].src_cluster,
            tgt_cluster: schemas[r2].tgt_cluster,
            offset,
            composed_of: Some((r1, r2)),
            fanout: 1,
        });
    }
    schemas
}

/// Squared Euclidean distance between `z_s + offset` and `z_o` — the
/// compatibility score that decides which pairs become triples.
pub fn translate_score(latents: &Matrix, s: usize, offset: &[f32], o: usize) -> f32 {
    let zs = latents.row(s);
    let zo = latents.row(o);
    let mut d = 0.0f32;
    for i in 0..offset.len() {
        let diff = zs[i] + offset[i] - zo[i];
        d += diff * diff;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_tensor::init::seeded_rng;

    #[test]
    fn latents_cluster_near_centroids() {
        let cfg = GenConfig::tiny();
        let mut rng = seeded_rng(1);
        let w = sample_latents(&cfg, &mut rng);
        assert_eq!(w.latents.rows(), cfg.entities);
        for e in 0..cfg.entities {
            let c = w.cluster_of[e];
            let d: f32 = w
                .latents
                .row(e)
                .iter()
                .zip(w.centroids.row(c))
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            // noise std 0.3 over 8 dims → E[d] ≈ 0.72; 6σ bound
            assert!(d < 8.0, "entity {e} too far from its centroid: {d}");
        }
    }

    #[test]
    fn schema_has_requested_compositions() {
        let cfg = GenConfig::tiny();
        let mut rng = seeded_rng(2);
        let w = sample_latents(&cfg, &mut rng);
        let schemas = build_schema(&cfg, &w, &mut rng);
        assert_eq!(schemas.len(), cfg.base_relations);
        let composed = schemas.iter().filter(|s| s.composed_of.is_some()).count();
        assert_eq!(composed, 2); // 0.34 * 6 rounds to 2
        for s in &schemas {
            if let Some((r1, r2)) = s.composed_of {
                // composed offset = sum of parents
                for i in 0..cfg.latent_dim {
                    let want = schemas[r1].offset[i] + schemas[r2].offset[i];
                    assert!((s.offset[i] - want).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn translate_score_zero_for_exact_translation() {
        let latents = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 2.0]);
        let offset = vec![1.0, 2.0];
        assert_eq!(translate_score(&latents, 0, &offset, 1), 0.0);
        assert!(translate_score(&latents, 1, &offset, 0) > 0.0);
    }
}
