//! NeuralLP-style rule learner (Yang et al., NeurIPS 2017).
//!
//! The original learns differentiable TensorLog rule weights end to end.
//! Our substitution keeps the essence — *soft-weighted chain rules over
//! relations* — with a two-phase procedure that fits this repo's
//! from-scratch substrate:
//!
//! 1. **Mining**: for every training triple `(s, r, o)`, enumerate paths
//!    `s → o` of length ≤ 3 in the graph (excluding the direct `(r)` edge)
//!    and harvest their relation sequences as candidate rule bodies.
//! 2. **Confidence fitting**: each rule body's weight is its smoothed
//!    precision — `support / (fires + α)` — estimated by replaying the
//!    body over sampled sources (this is the closed-form optimum of the
//!    per-rule logistic fit NeuralLP's gradient descent approximates).
//!
//! Inference scores `(s, r, o)` with a noisy-OR over rules whose body
//! connects `s` to `o`; `score_all_objects` walks each body forward from
//! `s` accumulating per-endpoint noisy-OR mass.

use std::collections::HashMap;

use mmkgr_embed::TripleScorer;
use mmkgr_kg::{enumerate_paths, EntityId, KnowledgeGraph, MultiModalKG, RelationId};
use mmkgr_tensor::init::seeded_rng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A chain rule `body ⇒ head` with a learned confidence in `[0, 1]`.
#[derive(Clone, Debug)]
pub struct Rule {
    pub body: Vec<RelationId>,
    pub confidence: f32,
    pub support: usize,
}

pub struct NeuralLp {
    /// Rules per head relation (base + inverse heads).
    pub rules: HashMap<RelationId, Vec<Rule>>,
    graph: KnowledgeGraph,
    max_body_len: usize,
}

#[derive(Clone, Debug)]
pub struct NeuralLpConfig {
    pub max_body_len: usize,
    /// Max mined paths per training triple.
    pub paths_per_triple: usize,
    /// Rules kept per head relation (by confidence).
    pub rules_per_head: usize,
    /// Laplace smoothing of the confidence estimate.
    pub smoothing: f32,
    /// Sampled sources for the precision estimate.
    pub precision_samples: usize,
    pub seed: u64,
}

impl Default for NeuralLpConfig {
    fn default() -> Self {
        NeuralLpConfig {
            max_body_len: 3,
            paths_per_triple: 8,
            rules_per_head: 32,
            smoothing: 2.0,
            precision_samples: 64,
            seed: 13,
        }
    }
}

impl NeuralLp {
    pub fn train(kg: &MultiModalKG, cfg: &NeuralLpConfig) -> Self {
        let graph = kg.graph.clone();
        let rs = graph.relations();
        let mut rng = seeded_rng(cfg.seed);

        // --- phase 1: mine candidate bodies per head ---------------------
        // body key: the relation id sequence.
        let mut support: HashMap<(u32, Vec<u32>), usize> = HashMap::new();
        for t in &kg.split.train {
            let paths = enumerate_paths(&graph, t.s, t.o, cfg.max_body_len, cfg.paths_per_triple);
            for p in paths {
                let body: Vec<u32> = p.relation_seq().iter().map(|r| r.0).collect();
                // skip the trivial one-hop body equal to the head itself
                if body.len() == 1 && body[0] == t.r.0 {
                    continue;
                }
                *support.entry((t.r.0, body)).or_default() += 1;
                // also mine for the inverse head (answering head queries)
                let inv_head = rs.inverse(t.r).0;
                let inv_body: Vec<u32> = p
                    .relation_seq()
                    .iter()
                    .rev()
                    .map(|r| rs.inverse(*r).0)
                    .collect();
                if !(inv_body.len() == 1 && inv_body[0] == inv_head) {
                    *support.entry((inv_head, inv_body)).or_default() += 1;
                }
            }
        }

        // --- phase 2: fit confidences -----------------------------------
        // head → known (s, o) pairs for the precision estimate
        let mut head_pairs: HashMap<u32, Vec<(EntityId, EntityId)>> = HashMap::new();
        for t in &kg.split.train {
            head_pairs.entry(t.r.0).or_default().push((t.s, t.o));
            head_pairs
                .entry(rs.inverse(t.r).0)
                .or_default()
                .push((t.o, t.s));
        }

        let mut rules: HashMap<RelationId, Vec<Rule>> = HashMap::new();
        let all_sources: Vec<u32> = (0..graph.num_entities() as u32).collect();
        for ((head, body), sup) in support {
            if sup < 2 {
                continue; // singleton evidence is noise
            }
            let body_rels: Vec<RelationId> = body.iter().map(|&r| RelationId(r)).collect();
            // precision: of sampled body firings, how many land on a known
            // (s, head, o) pair?
            let pairs = head_pairs.get(&head);
            let mut fires = 0usize;
            let mut hits = 0usize;
            for _ in 0..cfg.precision_samples {
                let s = EntityId(*all_sources.choose(&mut rng).unwrap());
                if let Some(o) = walk_body(&graph, s, &body_rels, &mut rng) {
                    fires += 1;
                    if let Some(pairs) = pairs {
                        if pairs.iter().any(|&(ps, po)| ps == s && po == o) {
                            hits += 1;
                        }
                    }
                }
            }
            let confidence =
                (sup as f32 + hits as f32) / (sup as f32 + fires as f32 + cfg.smoothing);
            rules.entry(RelationId(head)).or_default().push(Rule {
                body: body_rels,
                confidence,
                support: sup,
            });
        }
        for list in rules.values_mut() {
            list.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
            list.truncate(cfg.rules_per_head);
        }
        NeuralLp {
            rules,
            graph,
            max_body_len: cfg.max_body_len,
        }
    }

    /// Noisy-OR mass over all endpoints reachable from `s` by each rule
    /// body for `head`. Endpoint scores land in `out` keyed by entity.
    pub fn endpoint_scores(&self, s: EntityId, head: RelationId) -> HashMap<EntityId, f32> {
        let mut not_prob: HashMap<EntityId, f32> = HashMap::new();
        let Some(rules) = self.rules.get(&head) else {
            return HashMap::new();
        };
        let mut frontier: Vec<EntityId> = Vec::new();
        let mut next: Vec<EntityId> = Vec::new();
        for rule in rules {
            frontier.clear();
            frontier.push(s);
            for (depth, &r) in rule.body.iter().enumerate() {
                next.clear();
                for &e in &frontier {
                    for tgt in self.graph.targets(e, r) {
                        next.push(tgt);
                    }
                }
                next.sort_unstable();
                next.dedup();
                // bound the frontier: rule bodies on hubs can explode
                if next.len() > 256 {
                    next.truncate(256);
                }
                std::mem::swap(&mut frontier, &mut next);
                if frontier.is_empty() {
                    break;
                }
                let _ = depth;
            }
            for &e in &frontier {
                let slot = not_prob.entry(e).or_insert(1.0);
                *slot *= 1.0 - rule.confidence;
            }
        }
        not_prob.into_iter().map(|(e, np)| (e, 1.0 - np)).collect()
    }

    pub fn num_rules(&self) -> usize {
        self.rules.values().map(|v| v.len()).sum()
    }

    pub fn max_body_len(&self) -> usize {
        self.max_body_len
    }
}

/// Follow `body` from `s`, choosing uniformly at branching points.
fn walk_body(
    graph: &KnowledgeGraph,
    s: EntityId,
    body: &[RelationId],
    rng: &mut rand::rngs::StdRng,
) -> Option<EntityId> {
    let mut cur = s;
    for &r in body {
        let targets: Vec<EntityId> = graph.targets(cur, r).collect();
        if targets.is_empty() {
            return None;
        }
        cur = targets[rng.gen_range(0..targets.len())];
    }
    Some(cur)
}

impl TripleScorer for NeuralLp {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        self.endpoint_scores(s, r).get(&o).copied().unwrap_or(0.0)
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        let scores = self.endpoint_scores(s, r);
        out.clear();
        out.resize(n, 0.0);
        for (e, v) in scores {
            if e.index() < n {
                out[e.index()] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_datagen::{generate, GenConfig};

    #[test]
    fn mines_rules_on_tiny_dataset() {
        let kg = generate(&GenConfig::tiny());
        let model = NeuralLp::train(&kg, &NeuralLpConfig::default());
        assert!(model.num_rules() > 0, "no rules mined");
        for rules in model.rules.values() {
            for r in rules {
                assert!((0.0..=1.0).contains(&r.confidence));
                assert!(!r.body.is_empty() && r.body.len() <= 3);
            }
        }
    }

    #[test]
    fn composed_relations_get_their_defining_rule() {
        // The tiny generator plants r_composed = r1 ∘ r2; the miner should
        // recover at least one length-2 body for some composed head.
        let kg = generate(&GenConfig::tiny());
        let model = NeuralLp::train(&kg, &NeuralLpConfig::default());
        let has_two_hop_rule = model
            .rules
            .values()
            .flatten()
            .any(|r| r.body.len() == 2 && r.confidence > 0.1);
        assert!(has_two_hop_rule, "no confident 2-hop rule found");
    }

    #[test]
    fn scores_are_noisy_or_bounded() {
        let kg = generate(&GenConfig::tiny());
        let model = NeuralLp::train(&kg, &NeuralLpConfig::default());
        let t = &kg.split.test[0];
        let mut out = Vec::new();
        model.score_all_objects(t.s, t.r, kg.num_entities(), &mut out);
        assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn scoring_beats_random_on_test_triples() {
        let kg = generate(&GenConfig::tiny());
        let model = NeuralLp::train(&kg, &NeuralLpConfig::default());
        // On average the gold object should outscore a random entity.
        let mut rng = seeded_rng(5);
        let mut gold_sum = 0.0f32;
        let mut rand_sum = 0.0f32;
        let mut n = 0;
        for t in kg.split.test.iter().take(40) {
            let g = model.score(t.s, t.r, t.o);
            let ro = EntityId(rng.gen_range(0..kg.num_entities()) as u32);
            let r = model.score(t.s, t.r, ro);
            gold_sum += g;
            rand_sum += r;
            n += 1;
        }
        assert!(n > 0);
        assert!(
            gold_sum >= rand_sum,
            "gold avg {gold_sum} should be ≥ random avg {rand_sum}"
        );
    }
}
