//! # MMKGR — Multi-hop Multi-modal Knowledge Graph Reasoning
//!
//! A complete, from-scratch Rust reproduction of *"MMKGR: Multi-hop
//! Multi-modal Knowledge Graph Reasoning"* (Zheng et al., ICDE 2023),
//! including every substrate the paper depends on: a tape-based autodiff
//! engine, neural-network layers, multi-modal KG storage, synthetic
//! dataset generation, single-hop KGE models (the full Table I family:
//! TransE/TransD/DistMult/ComplEx/RESCAL/HolE/ConvE/IKRL/TransAE/MTRL),
//! the MMKGR model itself (unified gate-attention fusion +
//! 3D-reward RL), the paper's multi-hop baselines (MINERVA/RLH/FIRE/
//! GAATs/NeuralLP), and an evaluation harness regenerating every table
//! and figure of the paper's experimental section.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `mmkgr-tensor` | matrices + reverse-mode autodiff |
//! | [`nn`] | `mmkgr-nn` | layers, optimizers, losses |
//! | [`kg`] | `mmkgr-kg` | multi-modal KG storage |
//! | [`datagen`] | `mmkgr-datagen` | synthetic MKG generator |
//! | [`embed`] | `mmkgr-embed` | single-hop KGE models |
//! | [`core`] | `mmkgr-core` | **the MMKGR model** |
//! | [`baselines`] | `mmkgr-baselines` | multi-hop comparators |
//! | [`eval`] | `mmkgr-eval` | metrics + experiment harness |
//!
//! # Quickstart
//!
//! ```no_run
//! use mmkgr::prelude::*;
//!
//! // 1. A multi-modal KG (synthetic WN9-IMG-TXT analogue at 10% scale).
//! let kg = mmkgr::datagen::generate(&GenConfig::wn9_img_txt().scaled(0.1));
//!
//! // 2. Train MMKGR (gate-attention fusion + 3D-reward REINFORCE).
//! let cfg = MmkgrConfig::default();
//! let engine = RewardEngine::new(&cfg, Some(NoShaper));
//! let model = MmkgrModel::new(&kg, cfg, None);
//! let mut trainer = Trainer::new(model, engine);
//! trainer.train(&kg, 0);
//!
//! // 3. Answer a query with an explainable multi-hop path.
//! let t = kg.split.test[0];
//! let paths = beam_search(&trainer.model, &kg.graph, t.s, t.r, 16, 4);
//! println!("best path: {:?}", paths.first());
//! ```

pub use mmkgr_baselines as baselines;
pub use mmkgr_core as core;
pub use mmkgr_datagen as datagen;
pub use mmkgr_embed as embed;
pub use mmkgr_eval as eval;
pub use mmkgr_kg as kg;
pub use mmkgr_nn as nn;
pub use mmkgr_tensor as tensor;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use mmkgr_core::prelude::*;
    pub use mmkgr_datagen::GenConfig;
    pub use mmkgr_embed::{ConvE, KgeTrainConfig, Mtrl, TransE, TripleScorer};
    pub use mmkgr_eval::FewShotSplit;
    pub use mmkgr_eval::{Dataset, Harness, HarnessConfig, ScaleChoice};
    pub use mmkgr_kg::{
        EntityId, KnowledgeGraph, ModalBank, MultiModalKG, Query, RelationId, Split, Triple,
    };
}
