//! Generator configuration and the two paper-dataset presets.

/// Parameters of the synthetic multi-modal KG generator.
///
/// The presets mirror the shape statistics of the paper's Table II; the
/// `scaled` combinator shrinks a preset for CI-speed runs while keeping
/// ratios (relations per entity, triples per entity, images per entity).
#[derive(Clone, Debug)]
pub struct GenConfig {
    pub name: String,
    pub entities: usize,
    pub base_relations: usize,
    /// Target number of training triples (approximate; generation is
    /// stochastic but lands within a few percent).
    pub train_triples: usize,
    pub valid_frac: f64,
    pub test_frac: f64,
    /// Latent semantic dimensionality entities are embedded in.
    pub latent_dim: usize,
    /// Number of entity-type clusters.
    pub clusters: usize,
    /// Fraction of relations defined as compositions `r3 = r1 ∘ r2`.
    /// Held-out facts of composed relations are the multi-hop-inferable
    /// knowledge the RL agent must find.
    pub composed_frac: f64,
    /// Probability that a derivable composed fact is materialized into the
    /// triple store (the rest stays latent → inferable-only).
    pub close_prob: f64,
    /// Fraction of syntactic chain instances `s →r1→ m →r2→ o` that are
    /// *actually true* for the composed relation (the latent-compatibility
    /// filter). Below 1.0, pure symbolic rule-following is ambiguous —
    /// several chain endpoints are reachable but only the latent-closest
    /// ones are facts — so models need the (latent-correlated) embedding
    /// and modality signal to disambiguate, as in the real datasets.
    pub rule_precision: f64,
    /// Images per entity (paper: 10 for WN9, 100 for FB).
    pub images_per_entity: usize,
    /// Raw image feature width (signal + background).
    pub image_dim: usize,
    /// Trailing image dims that carry pure noise ("black background").
    pub image_bg_dim: usize,
    /// Probability an image is a near-duplicate of an earlier one
    /// (the redundancy the filtration gate must cope with).
    pub image_dup_prob: f64,
    /// Gaussian noise std on modality signal dims.
    pub modality_noise: f32,
    /// Raw text feature width.
    pub text_dim: usize,
    /// Action-space cap applied to the walker graph.
    pub max_out_degree: usize,
    pub seed: u64,
}

impl GenConfig {
    /// WN9-IMG-TXT analogue: 6,555 entities, 9 relations, ~11.7k train.
    pub fn wn9_img_txt() -> Self {
        GenConfig {
            name: "WN9-IMG-TXT".into(),
            entities: 6_555,
            base_relations: 9,
            train_triples: 11_747,
            valid_frac: 0.09,
            test_frac: 0.09,
            latent_dim: 16,
            clusters: 12,
            composed_frac: 0.34, // 3 of 9 relations are composed
            close_prob: 0.55,
            rule_precision: 0.72,
            images_per_entity: 10,
            image_dim: 48,
            image_bg_dim: 12,
            image_dup_prob: 0.3,
            modality_noise: 0.25,
            text_dim: 48,
            max_out_degree: 64,
            seed: 0x574E39, // "WN9"
        }
    }

    /// FB-IMG-TXT analogue: 11,757 entities, 1,231 relations, ~286k train.
    /// Sparser *per relation* and more complex than WN9 (the property the
    /// paper leans on to explain the lower absolute scores).
    pub fn fb_img_txt() -> Self {
        GenConfig {
            name: "FB-IMG-TXT".into(),
            entities: 11_757,
            base_relations: 1_231,
            train_triples: 285_850,
            valid_frac: 0.094,
            test_frac: 0.109,
            latent_dim: 24,
            clusters: 40,
            composed_frac: 0.3,
            close_prob: 0.5,
            rule_precision: 0.62, // FB chains are noisier than WN9's
            images_per_entity: 100,
            image_dim: 48,
            image_bg_dim: 12,
            image_dup_prob: 0.5,  // FB images are crawled en masse → more dupes
            modality_noise: 0.35, // noisier modality data than WN9
            text_dim: 48,
            max_out_degree: 48,
            seed: 0xFB15C,
        }
    }

    /// Shrink every count by `factor` (e.g. `0.1` → one-tenth scale),
    /// keeping densities. Used by the experiment harness's default scale.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor in (0, 1]");
        let f = |x: usize| ((x as f64 * factor).round() as usize).max(1);
        self.name = format!("{}@{factor}", self.name);
        self.entities = f(self.entities).max(50);
        self.base_relations = f(self.base_relations).max(3);
        self.train_triples = f(self.train_triples).max(100);
        self.clusters = f(self.clusters).clamp(4, self.entities / 4);
        self.images_per_entity = f(self.images_per_entity).max(2);
        self
    }

    /// A miniature config for unit tests: generates in milliseconds.
    pub fn tiny() -> Self {
        GenConfig {
            name: "tiny".into(),
            entities: 60,
            base_relations: 6,
            train_triples: 260,
            valid_frac: 0.1,
            test_frac: 0.1,
            latent_dim: 8,
            clusters: 4,
            composed_frac: 0.34,
            close_prob: 0.6,
            rule_precision: 0.7,
            images_per_entity: 3,
            image_dim: 12,
            image_bg_dim: 4,
            image_dup_prob: 0.3,
            modality_noise: 0.2,
            text_dim: 10,
            max_out_degree: 32,
            seed: 42,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_shapes() {
        let wn9 = GenConfig::wn9_img_txt();
        assert_eq!(wn9.entities, 6555);
        assert_eq!(wn9.base_relations, 9);
        let fb = GenConfig::fb_img_txt();
        assert_eq!(fb.entities, 11757);
        assert_eq!(fb.base_relations, 1231);
        assert!(fb.images_per_entity > wn9.images_per_entity);
    }

    #[test]
    fn scaled_shrinks_proportionally() {
        let s = GenConfig::wn9_img_txt().scaled(0.1);
        assert_eq!(s.entities, 656);
        assert!(s.base_relations >= 3);
        assert!((s.train_triples as f64 - 1174.7).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_zero_rejected() {
        let _ = GenConfig::wn9_img_txt().scaled(0.0);
    }
}
