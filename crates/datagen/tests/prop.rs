//! Property-based tests on the synthetic MKG generator — the invariants
//! every experiment's dataset rests on.

use std::collections::HashSet;

use mmkgr_datagen::{generate, GenConfig};
use proptest::prelude::*;

fn small_cfg(entities: usize, relations: usize, triples: usize, seed: u64) -> GenConfig {
    let mut c = GenConfig::tiny();
    c.entities = entities;
    c.base_relations = relations;
    c.train_triples = triples;
    c.seed = seed;
    c
}

proptest! {
    // Generation is expensive relative to unit tests; a handful of cases
    // per property is enough to cover the parameter space.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every triple references a valid entity and a valid base relation,
    /// in all three splits.
    #[test]
    fn triples_reference_valid_ids(
        entities in 40usize..120,
        relations in 4usize..10,
        triples in 150usize..400,
        seed in 0u64..1000,
    ) {
        let kg = generate(&small_cfg(entities, relations, triples, seed));
        let n = kg.num_entities() as u32;
        let r = kg.num_base_relations() as u32;
        for split in [&kg.split.train, &kg.split.valid, &kg.split.test] {
            for t in split {
                prop_assert!(t.s.0 < n);
                prop_assert!(t.o.0 < n);
                prop_assert!(t.r.0 < r, "split triples use base relations only");
            }
        }
    }

    /// The three splits are pairwise disjoint — no leakage of evaluation
    /// facts into training.
    #[test]
    fn splits_are_disjoint(seed in 0u64..1000) {
        let kg = generate(&small_cfg(80, 6, 300, seed));
        let as_set = |ts: &[mmkgr_kg::Triple]| -> HashSet<(u32, u32, u32)> {
            ts.iter().map(|t| (t.s.0, t.r.0, t.o.0)).collect()
        };
        let train = as_set(&kg.split.train);
        let valid = as_set(&kg.split.valid);
        let test = as_set(&kg.split.test);
        prop_assert!(train.is_disjoint(&valid));
        prop_assert!(train.is_disjoint(&test));
        prop_assert!(valid.is_disjoint(&test));
    }

    /// The modality bank covers every entity with consistent dimensions
    /// and at least one image.
    #[test]
    fn modal_bank_is_complete(seed in 0u64..1000) {
        let cfg = small_cfg(60, 5, 250, seed);
        let kg = generate(&cfg);
        prop_assert_eq!(kg.modal.num_entities(), kg.num_entities());
        prop_assert_eq!(kg.modal.text_dim(), cfg.text_dim);
        prop_assert_eq!(kg.modal.image_dim(), cfg.image_dim);
        for e in 0..kg.num_entities() {
            let e = mmkgr_kg::EntityId(e as u32);
            prop_assert!(kg.modal.image_count(e) >= 1);
            prop_assert_eq!(kg.modal.text(e).len(), cfg.text_dim);
            prop_assert_eq!(kg.modal.mean_image(e).len(), cfg.image_dim);
            for v in kg.modal.text(e) {
                prop_assert!(v.is_finite());
            }
        }
    }

    /// Same config → identical dataset; different seed → different data
    /// (determinism is what makes CLI checkpoints portable).
    #[test]
    fn generation_is_deterministic(seed in 0u64..1000) {
        let a = generate(&small_cfg(60, 5, 250, seed));
        let b = generate(&small_cfg(60, 5, 250, seed));
        prop_assert_eq!(&a.split.train, &b.split.train);
        prop_assert_eq!(&a.split.test, &b.split.test);
        let c = generate(&small_cfg(60, 5, 250, seed ^ 0xFFFF_FFFF));
        prop_assert_ne!(&a.split.train, &c.split.train);
    }

    /// The walker graph respects the configured out-degree cap.
    #[test]
    fn out_degree_is_capped(seed in 0u64..500) {
        let mut cfg = small_cfg(60, 5, 400, seed);
        cfg.max_out_degree = 12;
        let kg = generate(&cfg);
        for e in 0..kg.num_entities() {
            prop_assert!(
                kg.graph.out_degree(mmkgr_kg::EntityId(e as u32)) <= 12,
                "degree cap violated"
            );
        }
    }
}

#[test]
fn test_facts_are_mostly_multihop_reachable() {
    // The generator's purpose: held-out facts should be provable by
    // alternative paths (≤ 4 hops) rather than memorizable — otherwise
    // multi-hop reasoning models have nothing to find. Plain BFS that
    // skips the direct gold edge (the training protocol's masking).
    use std::collections::VecDeque;
    let kg = generate(&GenConfig::tiny());
    let reach = |t: &mmkgr_kg::Triple| -> bool {
        let mut seen = vec![false; kg.num_entities()];
        seen[t.s.index()] = true;
        let mut frontier = VecDeque::from([(t.s, 0usize)]);
        while let Some((cur, d)) = frontier.pop_front() {
            if d >= 4 {
                continue;
            }
            for e in kg.graph.neighbors(cur) {
                if cur == t.s && e.relation == t.r && e.target == t.o {
                    continue; // masked gold edge
                }
                if seen[e.target.index()] {
                    continue;
                }
                if e.target == t.o {
                    return true;
                }
                seen[e.target.index()] = true;
                frontier.push_back((e.target, d + 1));
            }
        }
        false
    };
    let reachable = kg.split.test.iter().filter(|t| reach(t)).count();
    let frac = reachable as f64 / kg.split.test.len().max(1) as f64;
    assert!(
        frac > 0.6,
        "only {frac:.2} of test facts reachable within 4 hops"
    );
}
