//! Crash-safe live graph mutation: the write path of the serving stack.
//!
//! [`LiveGraphStore`] owns the one mutable thing in a serving process —
//! the published graph epoch — and makes writes to it durable and
//! crash-consistent:
//!
//! 1. **Validate** the whole batch against the current epoch (typed
//!    [`MutationError`]s; an invalid batch never touches the log).
//! 2. **Commit**: append one WAL record ([`mmkgr_kg::WalWriter`],
//!    CRC32-framed, fsynced) — the durability point. A crash after this
//!    instant must never lose the mutation.
//! 3. **Apply**: build the successor [`KnowledgeGraph`] (copy-on-write
//!    delta over the shared base CSR) and publish it through the
//!    [`GraphHandle`]. In-flight readers keep their pinned epoch;
//!    the publish is one `RwLock`-guarded pointer swap.
//! 4. **Compact** (periodically): fold the delta into a fresh CSR,
//!    atomically rewrite the `.mmkg` snapshot with the WAL sequence
//!    watermark, then truncate the WAL. A crash between the snapshot
//!    rename and the truncate is benign — recovery skips WAL records
//!    below the snapshot's watermark.
//!
//! **Recovery** (= boot): load the newest valid snapshot, replay the WAL
//! tail at or above the snapshot's `wal_seq` watermark, publish the
//! result. [`mmkgr_kg::store::wal`] tolerates a torn final record
//! (truncated, not replayed — it was never acknowledged) and fails
//! loudly on interior corruption.
//!
//! The chaos crash points ([`super::faults::FaultPlan::wal_crash`],
//! [`super::faults::FaultPlan::compact_crash`]) abort the process at the
//! two interesting instants: post-commit/pre-apply and post-snapshot/
//! pre-truncate. CI's kill-and-reboot smoke drives them end to end.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use mmkgr_kg::{
    GraphHandle, KnowledgeGraph, MutationError, MutationStats, TripleOp, WalError, WalRecord,
    WalWriter,
};

use super::faults;
use super::protocol::MutationMetrics;

/// Snapshot-rewrite hook invoked by compaction: persist `graph` (the
/// folded, delta-free successor) with `wal_seq` as the snapshot's replay
/// watermark, atomically (write-temp + fsync + rename). Injected by the
/// boot layer because the snapshot's full section layout (models,
/// vocab, manifest) lives above this crate.
pub type SnapshotRewrite = dyn Fn(&KnowledgeGraph, u64) -> std::io::Result<()> + Send + Sync;

/// What one applied mutation batch did.
#[derive(Clone, Debug)]
pub struct MutationOutcome {
    /// Epoch the batch published.
    pub epoch: u64,
    /// WAL sequence number of the committed record.
    pub seq: u64,
    pub stats: MutationStats,
    /// Whether this batch tripped a compaction.
    pub compacted: bool,
}

/// Why a live mutation was refused or lost.
#[derive(Debug)]
pub enum LiveStoreError {
    /// The batch referenced ids outside the graph's spaces; nothing was
    /// logged or applied.
    Invalid(MutationError),
    /// The WAL append (or truncate) failed; the batch was not applied —
    /// a mutation is never visible unless it is durable first.
    Wal(std::io::Error),
    /// Compaction's snapshot rewrite failed. The preceding batch *was*
    /// committed and applied; only the fold was abandoned (the WAL keeps
    /// the records, so durability is unaffected).
    Snapshot(std::io::Error),
}

impl std::fmt::Display for LiveStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveStoreError::Invalid(e) => write!(f, "invalid mutation: {e}"),
            LiveStoreError::Wal(e) => write!(f, "WAL write failed: {e}"),
            LiveStoreError::Snapshot(e) => write!(f, "compaction snapshot rewrite failed: {e}"),
        }
    }
}

impl std::error::Error for LiveStoreError {}

/// Why a boot-time recovery failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The WAL itself is unreadable (interior corruption, bad header).
    Wal(WalError),
    /// A committed record no longer applies to the snapshot it should
    /// follow — snapshot and log disagree about the graph's shape.
    Mismatch { seq: u64, error: MutationError },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Wal(e) => write!(f, "WAL recovery failed: {e}"),
            RecoveryError::Mismatch { seq, error } => write!(
                f,
                "WAL record seq {seq} does not apply to the snapshot graph: {error}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        RecoveryError::Wal(e)
    }
}

/// One caller's batch waiting in the group-commit queue. The leader
/// (whoever holds the WAL lock) drains the queue, writes every frame,
/// fsyncs once, and fills each ticket's result.
struct Ticket {
    ops: Vec<TripleOp>,
    done: Mutex<Option<Result<MutationOutcome, LiveStoreError>>>,
}

impl Ticket {
    fn fill(&self, r: Result<MutationOutcome, LiveStoreError>) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
    }

    fn take(&self) -> Option<Result<MutationOutcome, LiveStoreError>> {
        self.done.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// The serving write path: WAL-durable, epoch-versioned, periodically
/// compacted live mutation over a [`GraphHandle`]. One per process.
pub struct LiveGraphStore {
    graph: GraphHandle,
    /// Serializes writers and keeps WAL order identical to publish
    /// order; readers never take it.
    wal: Mutex<WalWriter>,
    /// Batches waiting for a group-commit leader (empty when
    /// `group_commit` is off).
    pending: Mutex<VecDeque<Arc<Ticket>>>,
    /// Batch concurrent `apply` callers into one fsync (on by default;
    /// the bench toggles it off to measure the one-fsync-per-batch
    /// baseline).
    group_commit: AtomicBool,
    /// Next WAL sequence number known fsync-durable: every record with
    /// `seq < committed` survives a crash. The replication shipper only
    /// ships below this watermark, so a follower can never see a frame
    /// the primary might lose.
    committed: AtomicU64,
    /// Records applied live (post-boot) by this process.
    applied: AtomicU64,
    /// Records replayed from the WAL at boot.
    replayed: u64,
    compactions: AtomicU64,
    /// Applied records since the last compaction.
    since_compact: AtomicU64,
    /// Compact once `since_compact` reaches this (0 = never — also the
    /// forced mode when no snapshot rewrite is wired, since truncating
    /// the WAL without persisting the fold would lose durability).
    compact_every: u64,
    rewrite: Option<Box<SnapshotRewrite>>,
    /// Published epochs still possibly pinned by in-flight readers, for
    /// the `epoch_lag` metric (pruned on read; `Weak` so tracking never
    /// keeps a dead epoch alive).
    epochs: Mutex<VecDeque<(u64, Weak<KnowledgeGraph>)>>,
}

impl LiveGraphStore {
    /// Recover and open: replay `wal_path` (tolerating a torn tail) on
    /// top of `base` — skipping records already folded into the snapshot
    /// (`seq < snapshot_seq`) — and publish the result. Returns the
    /// store; the number of records replayed is [`Self::replayed`].
    ///
    /// `snapshot_seq` is the snapshot's `wal_seq` watermark (0 for
    /// snapshots that predate live mutation — every record replays).
    pub fn open(
        base: Arc<KnowledgeGraph>,
        wal_path: &Path,
        snapshot_seq: u64,
    ) -> Result<LiveGraphStore, RecoveryError> {
        let (mut writer, records) = WalWriter::open(wal_path)?;
        // A snapshot ahead of its log (compaction crashed between the
        // truncate and... nothing — truncate is last; but a *restored*
        // older WAL next to a newer snapshot) must not reuse sequence
        // numbers below the watermark.
        writer.set_next_seq(snapshot_seq);
        let mut graph = base;
        let mut replayed = 0u64;
        for rec in &records {
            if rec.seq < snapshot_seq {
                continue; // already folded into the snapshot
            }
            let (next, _) = graph
                .apply_ops(&rec.ops)
                .map_err(|error| RecoveryError::Mismatch {
                    seq: rec.seq,
                    error,
                })?;
            graph = Arc::new(next);
            replayed += 1;
        }
        let handle = GraphHandle::new(Arc::clone(&graph));
        let mut epochs = VecDeque::new();
        epochs.push_back((graph.epoch(), Arc::downgrade(&graph)));
        let committed = writer.next_seq();
        Ok(LiveGraphStore {
            graph: handle,
            wal: Mutex::new(writer),
            pending: Mutex::new(VecDeque::new()),
            group_commit: AtomicBool::new(true),
            committed: AtomicU64::new(committed),
            applied: AtomicU64::new(0),
            replayed,
            compactions: AtomicU64::new(0),
            since_compact: AtomicU64::new(replayed),
            compact_every: 0,
            rewrite: None,
            epochs: Mutex::new(epochs),
        })
    }

    /// Enable periodic compaction: after every `every` applied records,
    /// fold the delta, rewrite the snapshot via `rewrite`, truncate the
    /// WAL. `every = 0` disables.
    pub fn with_compaction(mut self, every: u64, rewrite: Box<SnapshotRewrite>) -> Self {
        self.compact_every = every;
        self.rewrite = Some(rewrite);
        self
    }

    /// The live handle — wire this into reasoners ([`super::PolicyReasoner::try_new_live`])
    /// and the retriever ([`super::Retriever::new_live`]) so queries pin
    /// epochs from it.
    pub fn handle(&self) -> GraphHandle {
        self.graph.clone()
    }

    /// Pin the currently published graph.
    pub fn pin(&self) -> Arc<KnowledgeGraph> {
        self.graph.pin()
    }

    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// Records replayed from the WAL at boot.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Records applied live since boot.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Turn group commit on or off (on by default). Off restores the
    /// one-fsync-per-batch write path.
    pub fn set_group_commit(&self, on: bool) {
        self.group_commit.store(on, Ordering::Relaxed);
    }

    /// Whether concurrent `apply` callers share fsyncs.
    pub fn group_commit(&self) -> bool {
        self.group_commit.load(Ordering::Relaxed)
    }

    /// WAL sequence number below which every record is fsync-durable.
    pub fn committed_seq(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Path of the WAL file backing this store (the replication
    /// shipper's read source).
    pub fn wal_file(&self) -> PathBuf {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .path()
            .to_path_buf()
    }

    /// Validate → WAL-commit → apply → publish one batch; maybe compact.
    ///
    /// Concurrent callers are group-committed: each enqueues a ticket,
    /// and whoever wins the WAL lock drains the queue, writes every
    /// frame, fsyncs **once**, and publishes the batches in queue order
    /// (WAL order and publish order stay identical). Batches form
    /// naturally from callers that arrive while the previous leader's
    /// fsync is in flight.
    ///
    /// The returned outcome's `stats.touched` lists every entity whose
    /// action space changed — the key for targeted cache invalidation.
    pub fn apply(&self, ops: &[TripleOp]) -> Result<MutationOutcome, LiveStoreError> {
        if !self.group_commit.load(Ordering::Relaxed) {
            let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            return self.apply_one_locked(&mut wal, ops);
        }
        let ticket = Arc::new(Ticket {
            ops: ops.to_vec(),
            done: Mutex::new(None),
        });
        self.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(Arc::clone(&ticket));
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        // A previous leader may have committed this ticket while we
        // waited for the lock.
        if let Some(result) = ticket.take() {
            return result;
        }
        // We are the leader: drain the queue (our ticket is still in it —
        // only a leader removes tickets, and ours has no result yet) and
        // commit the whole group under one fsync.
        let group: Vec<Arc<Ticket>> = self
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        self.commit_group_locked(&mut wal, &group);
        ticket.take().expect("leader fills every drained ticket")
    }

    /// The pre-group-commit write path: one batch, one fsync.
    fn apply_one_locked(
        &self,
        wal: &mut WalWriter,
        ops: &[TripleOp],
    ) -> Result<MutationOutcome, LiveStoreError> {
        // Pin *under the writer lock*: `next` must succeed the currently
        // published epoch, not a stale one.
        let current = self.graph.pin();
        let (next, stats) = current.apply_ops(ops).map_err(LiveStoreError::Invalid)?;
        // Durability point: the record is fsynced before anyone can see
        // the mutation. Crash-after-commit loses only the in-memory
        // apply, which replay reconstructs.
        let seq = wal.append(ops).map_err(LiveStoreError::Wal)?;
        self.committed.store(wal.next_seq(), Ordering::Release);
        let ordinal = self.applied.load(Ordering::Relaxed) + 1;
        faults::maybe_wal_crash(ordinal);
        let next = Arc::new(next);
        let epoch = next.epoch();
        self.track_epoch(epoch, &next);
        self.graph.publish(next);
        self.applied.store(ordinal, Ordering::Relaxed);
        let pending = self.since_compact.fetch_add(1, Ordering::Relaxed) + 1;
        let mut compacted = false;
        if self.compact_every > 0 && pending >= self.compact_every && self.rewrite.is_some() {
            self.compact_locked(wal)?;
            compacted = true;
        }
        Ok(MutationOutcome {
            epoch,
            seq,
            stats,
            compacted,
        })
    }

    /// Commit a drained group: validate each batch against the evolving
    /// graph, write every valid frame unsynced, fsync once, then publish
    /// in queue order. Invalid batches get their typed error without
    /// touching the log; they never block the rest of the group.
    fn commit_group_locked(&self, wal: &mut WalWriter, group: &[Arc<Ticket>]) {
        let mut graph = self.graph.pin();
        // (ticket index, successor graph, stats, seq) per staged batch.
        let mut staged: Vec<(usize, Arc<KnowledgeGraph>, MutationStats, u64)> = Vec::new();
        for (i, ticket) in group.iter().enumerate() {
            match graph.apply_ops(&ticket.ops) {
                Err(e) => ticket.fill(Err(LiveStoreError::Invalid(e))),
                Ok((next, stats)) => match wal.append_unsynced(&ticket.ops) {
                    Err(e) => ticket.fill(Err(LiveStoreError::Wal(e))),
                    Ok(seq) => {
                        let next = Arc::new(next);
                        graph = Arc::clone(&next);
                        staged.push((i, next, stats, seq));
                    }
                },
            }
        }
        if staged.is_empty() {
            return;
        }
        // The group's single durability point.
        if let Err(e) = wal.sync() {
            let msg = e.to_string();
            for (i, ..) in staged {
                group[i].fill(Err(LiveStoreError::Wal(std::io::Error::other(msg.clone()))));
            }
            return;
        }
        self.committed.store(wal.next_seq(), Ordering::Release);
        let last = staged.len() - 1;
        for (n, (i, next, stats, seq)) in staged.into_iter().enumerate() {
            let ordinal = self.applied.load(Ordering::Relaxed) + 1;
            faults::maybe_wal_crash(ordinal);
            let epoch = next.epoch();
            self.track_epoch(epoch, &next);
            self.graph.publish(next);
            self.applied.store(ordinal, Ordering::Relaxed);
            let pending = self.since_compact.fetch_add(1, Ordering::Relaxed) + 1;
            let mut outcome = MutationOutcome {
                epoch,
                seq,
                stats,
                compacted: false,
            };
            // Compaction (if due) runs once, after the whole group; its
            // outcome — including a failed snapshot rewrite — lands on
            // the group's final batch, matching the single-batch path.
            if n == last
                && self.compact_every > 0
                && pending >= self.compact_every
                && self.rewrite.is_some()
            {
                match self.compact_locked(wal) {
                    Ok(()) => outcome.compacted = true,
                    Err(e) => {
                        group[i].fill(Err(e));
                        continue;
                    }
                }
            }
            group[i].fill(Ok(outcome));
        }
    }

    /// Apply one record shipped from the primary, preserving its
    /// sequence number in the local WAL — the follower half of
    /// WAL-shipping replication. Records at an already-applied `seq`
    /// (overlap after a reconnect) are skipped with `Ok(None)`; a gap —
    /// `rec.seq` ahead of the local log — is an error, because applying
    /// past missing records would silently diverge from the primary.
    pub fn apply_replicated(
        &self,
        rec: &WalRecord,
    ) -> Result<Option<MutationOutcome>, LiveStoreError> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let expected = wal.next_seq();
        if rec.seq < expected {
            return Ok(None);
        }
        if rec.seq > expected {
            return Err(LiveStoreError::Wal(std::io::Error::other(format!(
                "replication gap: got seq {}, expected {expected}",
                rec.seq
            ))));
        }
        let current = self.graph.pin();
        let (next, stats) = current
            .apply_ops(&rec.ops)
            .map_err(LiveStoreError::Invalid)?;
        let seq = wal.append(&rec.ops).map_err(LiveStoreError::Wal)?;
        debug_assert_eq!(seq, rec.seq);
        self.committed.store(wal.next_seq(), Ordering::Release);
        let ordinal = self.applied.load(Ordering::Relaxed) + 1;
        // The same post-commit/pre-publish crash point as the primary
        // write path: `wal_crash` chaos plans fire on the shipping path
        // too.
        faults::maybe_wal_crash(ordinal);
        let next = Arc::new(next);
        let epoch = next.epoch();
        self.track_epoch(epoch, &next);
        self.graph.publish(next);
        self.applied.store(ordinal, Ordering::Relaxed);
        let pending = self.since_compact.fetch_add(1, Ordering::Relaxed) + 1;
        let mut compacted = false;
        if self.compact_every > 0 && pending >= self.compact_every && self.rewrite.is_some() {
            self.compact_locked(&mut wal)?;
            compacted = true;
        }
        Ok(Some(MutationOutcome {
            epoch,
            seq,
            stats,
            compacted,
        }))
    }

    /// Force a compaction now (no-op without a snapshot rewrite hook).
    /// Returns whether one ran.
    pub fn compact(&self) -> Result<bool, LiveStoreError> {
        if self.rewrite.is_none() {
            return Ok(false);
        }
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        self.compact_locked(&mut wal)?;
        Ok(true)
    }

    fn compact_locked(&self, wal: &mut WalWriter) -> Result<(), LiveStoreError> {
        let rewrite = self.rewrite.as_ref().expect("checked by callers");
        let current = self.graph.pin();
        let folded = Arc::new(current.fold());
        // Watermark: every record below `next_seq` is inside the fold.
        let watermark = wal.next_seq();
        rewrite(&folded, watermark).map_err(LiveStoreError::Snapshot)?;
        // Crash window: snapshot (with watermark) is in place, WAL still
        // holds the folded records. Recovery skips them by watermark —
        // this is exactly what `compact_crash` chaos-tests.
        faults::maybe_compact_crash();
        wal.truncate().map_err(LiveStoreError::Wal)?;
        // Same epoch, flattened representation: readers of the folded
        // graph see byte-identical answers (fold preserves the logical
        // view, truncated action spaces included).
        self.track_epoch(folded.epoch(), &folded);
        self.graph.publish(folded);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.since_compact.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn track_epoch(&self, epoch: u64, graph: &Arc<KnowledgeGraph>) {
        let mut epochs = self.epochs.lock().unwrap_or_else(|e| e.into_inner());
        epochs.push_back((epoch, Arc::downgrade(graph)));
        // Bound the deque: drop leading entries nothing pins anymore.
        while epochs.len() > 1 && epochs.front().is_some_and(|(_, w)| w.strong_count() == 0) {
            epochs.pop_front();
        }
    }

    /// How far the oldest still-pinned epoch trails the published one
    /// (0 = every reader is current). Readers that pin and finish
    /// quickly keep this at 0; a long-running retrieval over an old
    /// epoch shows up here.
    pub fn epoch_lag(&self) -> u64 {
        let current = self.graph.epoch();
        let mut epochs = self.epochs.lock().unwrap_or_else(|e| e.into_inner());
        while epochs.len() > 1 && epochs.front().is_some_and(|(_, w)| w.strong_count() == 0) {
            epochs.pop_front();
        }
        epochs
            .iter()
            .find(|(_, w)| w.strong_count() > 0)
            .map(|&(e, _)| current.saturating_sub(e))
            .unwrap_or(0)
    }

    /// The `mutation` block of `GET /metrics`.
    pub fn metrics(&self) -> MutationMetrics {
        MutationMetrics {
            applied: self.applied(),
            replayed: self.replayed,
            compactions: self.compactions(),
            epoch: self.epoch(),
            epoch_lag: self.epoch_lag(),
        }
    }
}

impl std::fmt::Debug for LiveGraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveGraphStore")
            .field("epoch", &self.epoch())
            .field("applied", &self.applied())
            .field("replayed", &self.replayed)
            .field("compactions", &self.compactions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_kg::{EntityId, RelationId, Triple};

    fn t(s: u32, r: u32, o: u32) -> Triple {
        Triple::new(s, r, o)
    }

    fn base_graph() -> Arc<KnowledgeGraph> {
        Arc::new(KnowledgeGraph::from_triples(
            6,
            2,
            vec![t(0, 0, 1), t(1, 0, 2), t(1, 1, 4)],
            None,
        ))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mmkgr-live-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn apply_commits_publishes_and_reports_touched() {
        let path = tmp("apply");
        let store = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
        assert_eq!(store.replayed(), 0);
        let out = store
            .apply(&[TripleOp::Insert(t(2, 1, 5)), TripleOp::Delete(t(1, 0, 2))])
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.stats.inserted, 1);
        assert_eq!(out.stats.deleted, 1);
        assert!(out.stats.touched.contains(&EntityId(2)));
        assert!(out.stats.touched.contains(&EntityId(5)));
        let g = store.pin();
        assert!(g.has_edge(EntityId(2), RelationId(1), EntityId(5)));
        assert!(!g.has_edge(EntityId(1), RelationId(0), EntityId(2)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_batches_touch_nothing() {
        let path = tmp("invalid");
        let store = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
        let err = store
            .apply(&[TripleOp::Insert(t(0, 0, 99))])
            .expect_err("entity 99 is out of range");
        assert!(matches!(err, LiveStoreError::Invalid(_)));
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.applied(), 0);
        // The WAL holds nothing: a fresh recovery replays zero records.
        drop(store);
        let again = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
        assert_eq!(again.replayed(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_replays_committed_mutations() {
        let path = tmp("recover");
        {
            let store = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
            store.apply(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
            store.apply(&[TripleOp::Delete(t(0, 0, 1))]).unwrap();
            // Simulated crash: drop without compaction.
        }
        let store = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
        assert_eq!(store.replayed(), 2);
        let g = store.pin();
        assert_eq!(g.epoch(), 2);
        assert!(g.has_edge(EntityId(3), RelationId(0), EntityId(4)));
        assert!(!g.has_edge(EntityId(0), RelationId(0), EntityId(1)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_watermark_skips_folded_records() {
        let path = tmp("watermark");
        {
            let store = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
            store.apply(&[TripleOp::Insert(t(3, 0, 4))]).unwrap(); // seq 0
            store.apply(&[TripleOp::Insert(t(4, 0, 5))]).unwrap(); // seq 1
        }
        // Pretend a snapshot folded seq 0 (watermark 1): replay must
        // apply only seq 1 — on a base that already contains seq 0.
        let folded_base = {
            let (g, _) = base_graph()
                .apply_ops(&[TripleOp::Insert(t(3, 0, 4))])
                .unwrap();
            Arc::new(KnowledgeGraph::from_triples(
                6,
                2,
                g.logical_triples(),
                None,
            ))
        };
        let store = LiveGraphStore::open(folded_base, &path, 1).unwrap();
        assert_eq!(store.replayed(), 1);
        let g = store.pin();
        assert!(g.has_edge(EntityId(3), RelationId(0), EntityId(4)));
        assert!(g.has_edge(EntityId(4), RelationId(0), EntityId(5)));
        // New appends continue above the watermark.
        let out = store.apply(&[TripleOp::Insert(t(5, 1, 0))]).unwrap();
        assert!(out.seq >= 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_folds_rewrites_and_truncates() {
        let path = tmp("compact");
        let rewrites: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&rewrites);
        let store = LiveGraphStore::open(base_graph(), &path, 0)
            .unwrap()
            .with_compaction(
                2,
                Box::new(move |graph, watermark| {
                    assert!(
                        !graph.has_delta(),
                        "compaction must hand over a folded graph"
                    );
                    seen.lock().unwrap().push(watermark);
                    Ok(())
                }),
            );
        let a = store.apply(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        assert!(!a.compacted);
        let b = store.apply(&[TripleOp::Insert(t(4, 0, 5))]).unwrap();
        assert!(b.compacted);
        assert_eq!(store.compactions(), 1);
        assert_eq!(*rewrites.lock().unwrap(), vec![2]);
        // Post-compaction view is the same logical graph, delta-free.
        let g = store.pin();
        assert!(!g.has_delta());
        assert!(g.has_edge(EntityId(3), RelationId(0), EntityId(4)));
        assert!(g.has_edge(EntityId(4), RelationId(0), EntityId(5)));
        // The WAL was truncated: replaying from the (simulated) new
        // snapshot at watermark 2 replays nothing.
        drop(store);
        let again = LiveGraphStore::open(
            Arc::new(KnowledgeGraph::from_triples(
                6,
                2,
                g.logical_triples(),
                None,
            )),
            &path,
            2,
        )
        .unwrap();
        assert_eq!(again.replayed(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_rewrite_keeps_wal_and_durability() {
        let path = tmp("badrewrite");
        let store = LiveGraphStore::open(base_graph(), &path, 0)
            .unwrap()
            .with_compaction(1, Box::new(|_, _| Err(std::io::Error::other("disk full"))));
        let err = store
            .apply(&[TripleOp::Insert(t(3, 0, 4))])
            .expect_err("rewrite fails");
        assert!(matches!(err, LiveStoreError::Snapshot(_)));
        // The mutation itself is applied and durable; only the fold was
        // abandoned.
        assert!(store
            .pin()
            .has_edge(EntityId(3), RelationId(0), EntityId(4)));
        drop(store);
        let again = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
        assert_eq!(again.replayed(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_appliers_group_commit_every_batch() {
        let path = tmp("group");
        let store = Arc::new(LiveGraphStore::open(base_graph(), &path, 0).unwrap());
        assert!(store.group_commit());
        // 4 writer threads toggling distinct edges: every batch must
        // commit, in some serial order, with WAL order == publish order.
        let threads: Vec<_> = (0..4)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        let op = if i % 2 == 0 {
                            TripleOp::Insert(t(w, 1, (w + 1) % 6))
                        } else {
                            TripleOp::Delete(t(w, 1, (w + 1) % 6))
                        };
                        store.apply(&[op]).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(store.applied(), 32);
        assert_eq!(store.epoch(), 32);
        assert_eq!(store.committed_seq(), 32);
        // Every batch is durable and replays cleanly.
        drop(store);
        let again = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
        assert_eq!(again.replayed(), 32);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_reports_invalid_batches_individually() {
        let path = tmp("group-invalid");
        let store = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
        // Group of one invalid batch: typed error, nothing logged.
        let err = store
            .apply(&[TripleOp::Insert(t(0, 0, 99))])
            .expect_err("entity 99 is out of range");
        assert!(matches!(err, LiveStoreError::Invalid(_)));
        assert_eq!(store.applied(), 0);
        assert_eq!(store.committed_seq(), 0);
        // A valid batch after it commits under seq 0.
        let out = store.apply(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        assert_eq!(out.seq, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn apply_replicated_preserves_seq_skips_duplicates_rejects_gaps() {
        let primary_wal = tmp("repl-primary");
        let follower_wal = tmp("repl-follower");
        let primary = LiveGraphStore::open(base_graph(), &primary_wal, 0).unwrap();
        primary.apply(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        primary.apply(&[TripleOp::Insert(t(4, 0, 5))]).unwrap();
        let records = mmkgr_kg::store::wal::replay(&primary_wal).unwrap();
        assert_eq!(records.len(), 2);

        let follower = LiveGraphStore::open(base_graph(), &follower_wal, 0).unwrap();
        // A gap (seq 1 before seq 0) is refused — applying past missing
        // records would diverge from the primary.
        assert!(matches!(
            follower.apply_replicated(&records[1]),
            Err(LiveStoreError::Wal(_))
        ));
        let out = follower.apply_replicated(&records[0]).unwrap().unwrap();
        assert_eq!(out.seq, 0);
        // Duplicate delivery (reconnect overlap) is a clean skip.
        assert!(follower.apply_replicated(&records[0]).unwrap().is_none());
        let out = follower.apply_replicated(&records[1]).unwrap().unwrap();
        assert_eq!(out.seq, 1);
        // Same mutations, same epochs: the follower's graph converges.
        assert_eq!(follower.epoch(), primary.epoch());
        assert!(follower
            .pin()
            .has_edge(EntityId(4), RelationId(0), EntityId(5)));
        // The follower's local WAL holds the same committed records.
        drop(follower);
        assert_eq!(
            mmkgr_kg::store::wal::replay(&follower_wal).unwrap(),
            records
        );
        let _ = std::fs::remove_file(&primary_wal);
        let _ = std::fs::remove_file(&follower_wal);
    }

    #[test]
    fn epoch_lag_tracks_pinned_readers() {
        let path = tmp("lag");
        let store = LiveGraphStore::open(base_graph(), &path, 0).unwrap();
        let pinned = store.pin(); // long-running reader at epoch 0
        store.apply(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        store.apply(&[TripleOp::Insert(t(4, 0, 5))]).unwrap();
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.epoch_lag(), 2);
        drop(pinned);
        assert_eq!(store.epoch_lag(), 0);
        let m = store.metrics();
        assert_eq!(m.applied, 2);
        assert_eq!(m.epoch, 2);
        let _ = std::fs::remove_file(&path);
    }
}
