//! GAATs — Graph Attenuated Attention neTworkS (Wang et al., 2019).
//!
//! The original encodes entities by multi-hop attention over incoming
//! paths with an *attenuation* factor that decays distant contributions,
//! then decodes with a translation scorer. Our implementation keeps the
//! published core: a one-layer neighbor-attention encoder with a learnable
//! per-relation attenuation gate, trained end to end with margin ranking
//! on a TransE-style decode. (The original's multi-layer path enumeration
//! is collapsed into the single attention layer — the attenuated-attention
//! aggregation, which is what distinguishes GAATs from plain GATs, is
//! preserved.)

use mmkgr_embed::{NegativeSampler, TripleScorer};
use mmkgr_kg::{EntityId, KnowledgeGraph, MultiModalKG, RelationId, Triple, TripleSet};
use mmkgr_nn::{loss::margin_ranking, Adam, Ctx, Embedding, ParamId, Params};
use mmkgr_tensor::init::{seeded_rng, xavier};
use mmkgr_tensor::{softmax_slice, Matrix, Tape, Var};
use rand::seq::SliceRandom;

pub struct GaatsConfig {
    pub dim: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub margin: f32,
    /// Neighbors aggregated per entity (attention over a sample).
    pub neighbor_cap: usize,
    pub seed: u64,
}

impl Default for GaatsConfig {
    fn default() -> Self {
        GaatsConfig {
            dim: 32,
            epochs: 20,
            batch_size: 256,
            lr: 5e-3,
            margin: 1.0,
            neighbor_cap: 16,
            seed: 17,
        }
    }
}

pub struct Gaats {
    pub params: Params,
    ent: Embedding,
    rel: Embedding,
    /// Attention vector `a` over `[e; n; r]` triples (3d → 1).
    attn: ParamId,
    /// Per-relation attenuation logits (R×1): σ(β_r) damps neighbors
    /// reached through relation r.
    attenuation: ParamId,
    cfg: GaatsConfig,
    /// Encoded entity table, refreshed by [`Gaats::materialize`].
    encoded: Option<Matrix>,
    graph: KnowledgeGraph,
}

impl Gaats {
    pub fn new(kg: &MultiModalKG, cfg: GaatsConfig) -> Self {
        let mut params = Params::new();
        let mut rng = seeded_rng(cfg.seed);
        let n = kg.num_entities();
        let r_total = kg.graph.relations().total();
        let ent = Embedding::new(&mut params, &mut rng, "gaats.ent", n, cfg.dim);
        let rel = Embedding::new(&mut params, &mut rng, "gaats.rel", r_total, cfg.dim);
        let attn = params.add("gaats.attn", xavier(&mut rng, 3 * cfg.dim, 1));
        let attenuation = params.add("gaats.beta", Matrix::zeros(r_total, 1));
        Gaats {
            params,
            ent,
            rel,
            attn,
            attenuation,
            cfg,
            encoded: None,
            graph: kg.graph.clone(),
        }
    }

    /// Tape encoding of a batch of entities: `e' = e + Σ α·σ(β_r)·(n + r)`.
    fn encode(&self, ctx: &Ctx<'_>, entities: &[usize]) -> Var {
        let t = ctx.tape;
        let base = t.gather_rows(ctx.p(self.ent.table), entities);
        // Build neighbor aggregation per entity as a constant-weighted
        // gather. Attention weights are computed from current parameter
        // values (a detached attention, re-estimated each batch) — the
        // gradient flows through the aggregated embeddings and the
        // attenuation gate, keeping the hot loop linear.
        let ent_t = self.params.value(self.ent.table);
        let rel_t = self.params.value(self.rel.table);
        let attn = self.params.value(self.attn);
        let beta = self.params.value(self.attenuation);
        let d = self.cfg.dim;

        let mut n_idx: Vec<usize> = Vec::new();
        let mut r_idx: Vec<usize> = Vec::new();
        let mut weights: Vec<f32> = Vec::new(); // α·σ(β) per gathered row
        let mut offsets: Vec<(usize, usize)> = Vec::with_capacity(entities.len());
        let mut scores: Vec<f32> = Vec::new();
        for &e in entities {
            let neigh = self.graph.neighbors(EntityId(e as u32));
            let take = neigh.len().min(self.cfg.neighbor_cap);
            let start = n_idx.len();
            scores.clear();
            for edge in &neigh[..take] {
                let ni = edge.target.index();
                let ri = edge.relation.index();
                // attention logit aᵀ[e; n; r] (leaky-relu)
                let mut s = 0.0f32;
                for k in 0..d {
                    s += attn.get(k, 0) * ent_t.get(e, k)
                        + attn.get(d + k, 0) * ent_t.get(ni, k)
                        + attn.get(2 * d + k, 0) * rel_t.get(ri, k);
                }
                scores.push(if s > 0.0 { s } else { 0.2 * s });
                n_idx.push(ni);
                r_idx.push(ri);
            }
            softmax_slice(&mut scores);
            for (slot, &alpha) in scores.iter().enumerate() {
                let ri = r_idx[start + slot];
                let att = 1.0 / (1.0 + (-beta.get(ri, 0)).exp());
                weights.push(alpha * att);
            }
            offsets.push((start, n_idx.len()));
        }
        if n_idx.is_empty() {
            return base;
        }
        // Aggregate: gathered (n + r) rows, weighted, summed per entity.
        let n_rows = t.gather_rows(ctx.p(self.ent.table), &n_idx);
        let r_rows = t.gather_rows(ctx.p(self.rel.table), &r_idx);
        let nr = t.add(n_rows, r_rows);
        let w = ctx.input(Matrix::col_vector(&weights));
        let weighted = t.mul_col_broadcast(nr, w);
        // Sum each entity's slice via a sparse selection matrix.
        let mut sel = Matrix::zeros(entities.len(), n_idx.len());
        for (row, &(a, b)) in offsets.iter().enumerate() {
            for k in a..b {
                sel.set(row, k, 1.0);
            }
        }
        let sel = ctx.input(sel);
        let agg = t.matmul(sel, weighted);
        t.add(base, agg)
    }

    fn batch_distance(&self, ctx: &Ctx<'_>, triples: &[&Triple]) -> Var {
        let t = ctx.tape;
        let s_idx: Vec<usize> = triples.iter().map(|x| x.s.index()).collect();
        let r_idx: Vec<usize> = triples.iter().map(|x| x.r.index()).collect();
        let o_idx: Vec<usize> = triples.iter().map(|x| x.o.index()).collect();
        let hs = self.encode(ctx, &s_idx);
        let ho = self.encode(ctx, &o_idx);
        let r = t.gather_rows(ctx.p(self.rel.table), &r_idx);
        let diff = t.sub(t.add(hs, r), ho);
        let sq = t.mul(diff, diff);
        t.sum_rows(sq)
    }

    pub fn train(&mut self, kg: &MultiModalKG, known: &TripleSet) -> Vec<f32> {
        let mut rng = seeded_rng(self.cfg.seed ^ 0x6A47);
        let sampler = NegativeSampler::new(known, kg.num_entities());
        let mut opt = Adam::new(self.cfg.lr);
        let triples = &kg.split.train;
        let mut trace = Vec::with_capacity(self.cfg.epochs);
        let mut order: Vec<usize> = (0..triples.len()).collect();
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                let pos: Vec<&Triple> = chunk.iter().map(|&i| &triples[i]).collect();
                let negs: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
                let neg_refs: Vec<&Triple> = negs.iter().collect();
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, &self.params);
                let pos_d = self.batch_distance(&ctx, &pos);
                let neg_d = self.batch_distance(&ctx, &neg_refs);
                let loss = margin_ranking(&tape, pos_d, neg_d, self.cfg.margin);
                epoch_loss += tape.scalar(loss);
                batches += 1;
                let grads = tape.backward(loss);
                ctx.into_leases().accumulate(&mut self.params, &grads);
                opt.step(&mut self.params);
                self.params.zero_grads();
            }
            trace.push(epoch_loss / batches.max(1) as f32);
        }
        self.materialize();
        trace
    }

    /// Encode every entity once (tape-free) for fast scoring.
    pub fn materialize(&mut self) {
        let n = self.graph.num_entities();
        let ent_t = self.params.value(self.ent.table).clone();
        let rel_t = self.params.value(self.rel.table).clone();
        let attn = self.params.value(self.attn).clone();
        let beta = self.params.value(self.attenuation).clone();
        let d = self.cfg.dim;
        let mut encoded = ent_t.clone();
        let mut scores: Vec<f32> = Vec::new();
        for e in 0..n {
            let neigh = self.graph.neighbors(EntityId(e as u32));
            let take = neigh.len().min(self.cfg.neighbor_cap);
            if take == 0 {
                continue;
            }
            scores.clear();
            for edge in &neigh[..take] {
                let ni = edge.target.index();
                let ri = edge.relation.index();
                let mut s = 0.0f32;
                for k in 0..d {
                    s += attn.get(k, 0) * ent_t.get(e, k)
                        + attn.get(d + k, 0) * ent_t.get(ni, k)
                        + attn.get(2 * d + k, 0) * rel_t.get(ri, k);
                }
                scores.push(if s > 0.0 { s } else { 0.2 * s });
            }
            softmax_slice(&mut scores);
            for (slot, edge) in neigh[..take].iter().enumerate() {
                let ni = edge.target.index();
                let ri = edge.relation.index();
                let att = 1.0 / (1.0 + (-beta.get(ri, 0)).exp());
                let w = scores[slot] * att;
                for k in 0..d {
                    let v = encoded.get(e, k) + w * (ent_t.get(ni, k) + rel_t.get(ri, k));
                    encoded.set(e, k, v);
                }
            }
        }
        self.encoded = Some(encoded);
    }

    fn enc(&self) -> &Matrix {
        self.encoded
            .as_ref()
            .expect("Gaats::materialize must run before scoring")
    }
}

impl TripleScorer for Gaats {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let h = self.enc();
        let er = self.rel.row(&self.params, r.index());
        let hs = h.row(s.index());
        let ho = h.row(o.index());
        let mut dist = 0.0f32;
        for i in 0..self.cfg.dim {
            let v = hs[i] + er[i] - ho[i];
            dist += v * v;
        }
        -dist
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        let h = self.enc();
        let er = self.rel.row(&self.params, r.index());
        let hs = h.row(s.index());
        let query: Vec<f32> = hs.iter().zip(er).map(|(a, b)| a + b).collect();
        mmkgr_embed::scorer::prepare_score_buffer(out, n);
        for o in 0..n {
            let row = h.row(o);
            let mut dist = 0.0f32;
            for i in 0..query.len() {
                let v = query[i] - row[i];
                dist += v * v;
            }
            out.push(-dist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_datagen::{generate, GenConfig};

    #[test]
    fn training_reduces_loss() {
        let kg = generate(&GenConfig::tiny());
        let known = kg.all_known();
        let mut g = Gaats::new(
            &kg,
            GaatsConfig {
                epochs: 6,
                dim: 16,
                ..Default::default()
            },
        );
        let trace = g.train(&kg, &known);
        assert!(trace.last().unwrap() < &trace[0], "{trace:?}");
    }

    #[test]
    fn encoding_differs_from_raw_embedding() {
        let kg = generate(&GenConfig::tiny());
        let mut g = Gaats::new(
            &kg,
            GaatsConfig {
                epochs: 1,
                dim: 16,
                ..Default::default()
            },
        );
        g.materialize();
        // any connected entity's encoding should differ from its raw row
        let e = (0..kg.num_entities())
            .find(|&e| kg.graph.out_degree(EntityId(e as u32)) > 0)
            .unwrap();
        let raw = g.ent.row(&g.params, e).to_vec();
        let enc = g.enc().row(e).to_vec();
        assert_ne!(raw, enc);
    }

    #[test]
    fn isolated_entity_keeps_raw_embedding() {
        // Build a dataset, then query an entity with no neighbors if any.
        let kg = generate(&GenConfig::tiny());
        let mut g = Gaats::new(
            &kg,
            GaatsConfig {
                epochs: 1,
                dim: 16,
                ..Default::default()
            },
        );
        g.materialize();
        if let Some(e) =
            (0..kg.num_entities()).find(|&e| kg.graph.out_degree(EntityId(e as u32)) == 0)
        {
            assert_eq!(g.ent.row(&g.params, e), g.enc().row(e));
        }
    }

    #[test]
    fn vectorized_matches_pointwise() {
        let kg = generate(&GenConfig::tiny());
        let mut g = Gaats::new(
            &kg,
            GaatsConfig {
                epochs: 1,
                dim: 16,
                ..Default::default()
            },
        );
        g.materialize();
        let mut out = Vec::new();
        g.score_all_objects(EntityId(1), RelationId(0), 8, &mut out);
        for (o, &v) in out.iter().enumerate() {
            let p = g.score(EntityId(1), RelationId(0), EntityId(o as u32));
            assert!((v - p).abs() < 1e-4);
        }
    }
}
