//! Criterion micro-benchmarks for the hot components of the MMKGR stack:
//! the gate-attention fusion forward (with/without each module — the cost
//! side of the Fig. 4 ablation), a policy rollout step, a TransE training
//! epoch, full-candidate ranking, and graph adjacency ops.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mmkgr_core::infer::RolloutPolicy;
use mmkgr_core::prelude::*;
use mmkgr_datagen::{generate, GenConfig};
use mmkgr_embed::{KgeTrainConfig, TransE, TripleScorer};
use mmkgr_kg::{Edge, EntityId, RelationId};
use mmkgr_nn::{Ctx, Params};
use mmkgr_tensor::init::seeded_rng;
use mmkgr_tensor::{Matrix, Tape};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = seeded_rng(0);
    let a = mmkgr_tensor::init::xavier(&mut rng, 64, 64);
    let b = mmkgr_tensor::init::xavier(&mut rng, 64, 64);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)))
    });
}

fn bench_fusion_forward(c: &mut Criterion) {
    // The unified gate-attention network on a typical action space (m=16).
    let mut params = Params::new();
    let mut rng = seeded_rng(1);
    let gate = mmkgr_core::GateAttention::new(&mut params, &mut rng, 96, 32, 32, 32);
    let y = mmkgr_tensor::init::xavier(&mut rng, 1, 96);
    let x = mmkgr_tensor::init::xavier(&mut rng, 16, 32);
    let mut group = c.benchmark_group("gate_attention");
    group.bench_function("full", |b| {
        b.iter(|| std::hint::black_box(gate.forward_raw(&params, &y, &x, true, true)))
    });
    group.bench_function("no_filtration_FAKGR", |b| {
        b.iter(|| std::hint::black_box(gate.forward_raw(&params, &y, &x, true, false)))
    });
    group.bench_function("no_attention_FGKGR", |b| {
        b.iter(|| std::hint::black_box(gate.forward_raw(&params, &y, &x, false, true)))
    });
    group.finish();
}

fn bench_rollout_step(c: &mut Criterion) {
    let kg = generate(&GenConfig::tiny());
    let model = MmkgrModel::new(&kg, MmkgrConfig::quick(), None);
    let no_op = kg.graph.relations().no_op();
    let mut actions = vec![Edge {
        relation: no_op,
        target: EntityId(0),
    }];
    actions.extend_from_slice(kg.graph.neighbors(EntityId(0)));
    let h = vec![0.1f32; model.hidden_dim()];
    let mut probs = Vec::new();
    c.bench_function("policy_action_probs", |b| {
        b.iter(|| {
            model.raw_state_probs(EntityId(0), &h, RelationId(0), &actions, &mut probs);
            std::hint::black_box(&probs);
        })
    });
}

fn bench_transe_epoch(c: &mut Criterion) {
    let kg = generate(&GenConfig::tiny());
    let known = kg.all_known();
    c.bench_function("transe_epoch_tiny", |b| {
        b.iter_batched(
            || TransE::new(kg.num_entities(), kg.graph.relations().total(), 16, 0),
            |mut m| {
                m.train(
                    &kg.split.train,
                    &known,
                    &KgeTrainConfig {
                        epochs: 1,
                        ..KgeTrainConfig::quick()
                    },
                );
                std::hint::black_box(m.entity_matrix().get(0, 0));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ranking(c: &mut Criterion) {
    let kg = generate(&GenConfig::tiny());
    let model = TransE::new(kg.num_entities(), kg.graph.relations().total(), 16, 2);
    let mut out = Vec::new();
    c.bench_function("score_all_objects", |b| {
        b.iter(|| {
            model.score_all_objects(EntityId(0), RelationId(0), kg.num_entities(), &mut out);
            std::hint::black_box(out.len());
        })
    });
}

fn bench_beam_search(c: &mut Criterion) {
    use mmkgr_core::beam::{beam_search_reference, BeamConfig, BeamEngine};
    let kg = generate(&GenConfig::tiny());
    let model = MmkgrModel::new(&kg, MmkgrConfig::quick(), None);
    let mut group = c.benchmark_group("beam_search");
    group.bench_function("legacy_api_w8_t4", |b| {
        b.iter(|| {
            std::hint::black_box(mmkgr_core::beam_search(
                &model,
                &kg.graph,
                EntityId(0),
                RelationId(0),
                8,
                4,
            ))
        })
    });
    let mut engine = BeamEngine::new();
    for width in [8usize, 64] {
        group.bench_function(&format!("reference_w{width}_t4"), |b| {
            b.iter(|| {
                std::hint::black_box(beam_search_reference(
                    &model,
                    &kg.graph,
                    EntityId(0),
                    RelationId(0),
                    &BeamConfig::exact(width, 4),
                ))
            })
        });
        group.bench_function(&format!("engine_exact_w{width}_t4"), |b| {
            b.iter(|| {
                engine.run(
                    &model,
                    &kg.graph,
                    EntityId(0),
                    RelationId(0),
                    &BeamConfig::exact(width, 4),
                );
                std::hint::black_box(engine.frontier_len())
            })
        });
        group.bench_function(&format!("engine_dedup_w{width}_t4"), |b| {
            b.iter(|| {
                engine.run(
                    &model,
                    &kg.graph,
                    EntityId(0),
                    RelationId(0),
                    &BeamConfig::dedup(width, 4),
                );
                std::hint::black_box(engine.frontier_len())
            })
        });
    }
    group.finish();
}

fn bench_serve_answer(c: &mut Criterion) {
    use mmkgr_core::serve::{KgReasoner, PolicyReasoner, Query, ServeConfig};
    use std::sync::Arc;
    let kg = generate(&GenConfig::tiny());
    let graph = Arc::new(kg.graph.clone());
    let cold = PolicyReasoner::new(
        "MMKGR",
        MmkgrModel::new(&kg, MmkgrConfig::quick(), None),
        Arc::clone(&graph),
        ServeConfig::default(),
    );
    let cached = PolicyReasoner::new(
        "MMKGR",
        MmkgrModel::new(&kg, MmkgrConfig::quick(), None),
        graph,
        ServeConfig::default().with_cache(1024),
    );
    let q = Query::new(EntityId(0), RelationId(0))
        .with_beam(8)
        .with_steps(3);
    let mut group = c.benchmark_group("serve_answer");
    group.bench_function("uncached", |b| {
        b.iter(|| std::hint::black_box(cold.answer(&q)))
    });
    cached.answer(&q); // prime
    group.bench_function("cache_hit", |b| {
        b.iter(|| std::hint::black_box(cached.answer(&q)))
    });
    group.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let kg = generate(&GenConfig::tiny());
    let mut group = c.benchmark_group("graph");
    group.bench_function("neighbors", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for e in 0..kg.num_entities() as u32 {
                acc += kg.graph.neighbors(EntityId(e)).len();
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("hop_distance_3", |b| {
        b.iter(|| {
            std::hint::black_box(mmkgr_kg::hop_distance(
                &kg.graph,
                EntityId(0),
                EntityId(kg.num_entities() as u32 - 1),
                3,
            ))
        })
    });
    group.finish();
}

fn bench_autograd_tape(c: &mut Criterion) {
    // One REINFORCE-shaped forward/backward: the training inner loop.
    let mut rng = seeded_rng(3);
    let w = mmkgr_tensor::init::xavier(&mut rng, 64, 64);
    let x = mmkgr_tensor::init::xavier(&mut rng, 16, 64);
    c.bench_function("tape_forward_backward", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let vw = tape.input(w.clone());
            let vx = tape.input(x.clone());
            let h = tape.tanh(tape.matmul(vx, vw));
            let p = tape.log_softmax_rows(h);
            let picked = tape.pick_per_row(p, &[0; 16]);
            let loss = tape.mean(picked);
            std::hint::black_box(tape.backward(loss).get(vw).is_some())
        })
    });
    let _ = Ctx::new(&Tape::new(), &Params::new());
    let _ = Matrix::zeros(1, 1);
}

criterion_group!(
    benches,
    bench_matmul,
    bench_fusion_forward,
    bench_rollout_step,
    bench_transe_epoch,
    bench_ranking,
    bench_beam_search,
    bench_serve_answer,
    bench_graph_ops,
    bench_autograd_tape,
);
criterion_main!(benches);
