//! Figure 6 — proportions of test triples successfully inferred at
//! 2/3/4 hops on WN9-IMG-TXT for MMKGR, DVKGR (no distance reward) and
//! OSKGR (no modalities).
//!
//! Expected shape (paper): the distance reward pushes mass toward 2 hops;
//! removing it (DVKGR) grows the 3-4 hop share; removing modalities
//! (OSKGR) also needs longer proofs.

use mmkgr_bench::run_hops_figure;
use mmkgr_eval::{Dataset, ScaleChoice};

fn main() {
    run_hops_figure(Dataset::Wn9ImgTxt, ScaleChoice::from_args(), "fig6");
}
