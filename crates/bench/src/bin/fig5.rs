//! Figure 5 — ablation of the 3D reward mechanism: DEKGR (destination
//! only), DSKGR (+distance), DVKGR (+diversity), full MMKGR.

use mmkgr_bench::{ModelRow, Stopwatch};
use mmkgr_core::Variant;
use mmkgr_eval::{save_json, Dataset, Harness, HarnessConfig, ScaleChoice, Table};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{}", h.kg.stats());
        let mut table = Table::new(
            format!("Fig. 5 — 3D-reward ablation on {}", dataset.name()),
            &["Model", "MRR", "Hits@1", "Hits@5", "Hits@10"],
        );
        for v in [
            Variant::Dekgr,
            Variant::Dskgr,
            Variant::Dvkgr,
            Variant::Full,
        ] {
            let (trainer, _) = h.train_variant(v);
            let row = ModelRow::new(v.name(), &h.eval_policy(&trainer.model));
            sw.lap(v.name());
            table.push_row(row.cells());
            dump.push((dataset.name().to_string(), row));
        }
        table.print();
    }
    save_json("fig5", &dump);
}
