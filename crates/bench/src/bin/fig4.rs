//! Figure 4 — ablation of the unified gate-attention network:
//! FGKGR (no attention-fusion), FAKGR (no irrelevance-filtration), full
//! MMKGR; Hits@{1,5,10} and MRR on both datasets.

use mmkgr_bench::{ModelRow, Stopwatch};
use mmkgr_core::Variant;
use mmkgr_eval::{save_json, Dataset, Harness, HarnessConfig, ScaleChoice, Table};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{}", h.kg.stats());
        let mut table = Table::new(
            format!("Fig. 4 — gate-attention ablation on {}", dataset.name()),
            &["Model", "MRR", "Hits@1", "Hits@5", "Hits@10"],
        );
        for v in [Variant::Fgkgr, Variant::Fakgr, Variant::Full] {
            let (trainer, _) = h.train_variant(v);
            let row = ModelRow::new(v.name(), &h.eval_policy(&trainer.model));
            sw.lap(v.name());
            table.push_row(row.cells());
            dump.push((dataset.name().to_string(), row));
        }
        table.print();
    }
    save_json("fig4", &dump);
}
