//! Typed identifiers for entities and relations.
//!
//! Relations use a layered id space (see [`RelationSpace`]): the base
//! relations from the dataset, their synthetic inverses (needed so the RL
//! walker can traverse edges backwards), and a NO_OP/self-loop relation the
//! agents use to stay in place once they believe they have arrived.

use serde::{Deserialize, Serialize};

/// Entity identifier (dense, `0..num_entities`).
///
/// `repr(transparent)` so id arrays can be reinterpreted as raw `u32`
/// slices by the zero-copy snapshot loader ([`crate::store`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct EntityId(pub u32);

/// Relation identifier (dense; see [`RelationSpace`] for the layout).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct RelationId(pub u32);

impl EntityId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Layout of the relation id space.
///
/// ```text
/// [0, base)          original dataset relations
/// [base, 2*base)     inverse relations  (inverse(r) = r + base)
/// 2*base             NO_OP self-loop relation
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSpace {
    base: u32,
}

impl RelationSpace {
    pub fn new(base_relations: usize) -> Self {
        RelationSpace {
            base: base_relations as u32,
        }
    }

    /// Number of base (dataset) relations.
    #[inline]
    pub fn base(&self) -> usize {
        self.base as usize
    }

    /// Total distinct relation ids including inverses and NO_OP.
    /// This is the embedding-table size agents must allocate.
    #[inline]
    pub fn total(&self) -> usize {
        2 * self.base as usize + 1
    }

    /// The NO_OP (stay-in-place) relation id.
    #[inline]
    pub fn no_op(&self) -> RelationId {
        RelationId(2 * self.base)
    }

    /// Inverse of a base or inverse relation (involution).
    #[inline]
    pub fn inverse(&self, r: RelationId) -> RelationId {
        if r == self.no_op() {
            r
        } else if r.0 < self.base {
            RelationId(r.0 + self.base)
        } else {
            RelationId(r.0 - self.base)
        }
    }

    /// True if `r` is one of the original dataset relations.
    #[inline]
    pub fn is_base(&self, r: RelationId) -> bool {
        r.0 < self.base
    }

    /// True if `r` is a synthetic inverse relation.
    #[inline]
    pub fn is_inverse(&self, r: RelationId) -> bool {
        r.0 >= self.base && r.0 < 2 * self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_space_layout() {
        let rs = RelationSpace::new(9);
        assert_eq!(rs.base(), 9);
        assert_eq!(rs.total(), 19);
        assert_eq!(rs.no_op(), RelationId(18));
    }

    #[test]
    fn inverse_is_involution() {
        let rs = RelationSpace::new(5);
        for i in 0..10 {
            let r = RelationId(i);
            assert_eq!(rs.inverse(rs.inverse(r)), r);
        }
        assert_eq!(rs.inverse(rs.no_op()), rs.no_op());
    }

    #[test]
    fn base_and_inverse_classification() {
        let rs = RelationSpace::new(3);
        assert!(rs.is_base(RelationId(2)));
        assert!(!rs.is_base(RelationId(3)));
        assert!(rs.is_inverse(RelationId(3)));
        assert!(!rs.is_inverse(rs.no_op()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(EntityId(7).to_string(), "e7");
        assert_eq!(RelationId(3).to_string(), "r3");
    }
}
