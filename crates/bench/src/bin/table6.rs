//! Table VI — Hits@1 of MMKGR across the (max step T, distance threshold
//! k) grid. Cells with k > T are structurally empty (the paper's dashes).

use mmkgr_bench::Stopwatch;
use mmkgr_eval::{pct, save_json, Dataset, Harness, HarnessConfig, ScaleChoice, Table};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let (t_values, k_values): (Vec<usize>, Vec<usize>) = match scale {
        ScaleChoice::Quick => (vec![2, 3, 4], vec![2, 3]),
        _ => (vec![2, 3, 4, 5, 6], vec![2, 3, 4, 5, 6]),
    };
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{}", h.kg.stats());
        let mut headers: Vec<String> = vec!["Th. k".into()];
        headers.extend(t_values.iter().map(|t| format!("T={t}")));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!(
                "Table VI — Hits@1 vs T and threshold k on {}",
                dataset.name()
            ),
            &header_refs,
        );
        let mut grid = Vec::new();
        for &k in &k_values {
            let mut cells = vec![k.to_string()];
            for &t in &t_values {
                if k > t {
                    cells.push("—".into());
                    continue;
                }
                let (trainer, _) = h.train_mmkgr_with(
                    |c| {
                        c.max_steps = t;
                        c.distance_threshold = k;
                    },
                    0,
                );
                let r = h.eval_policy_steps(&trainer.model, t);
                sw.lap(&format!("{} T={t} k={k}", dataset.name()));
                cells.push(pct(r.hits1));
                grid.push((dataset.name().to_string(), t, k, r.hits1));
            }
            table.push_row(cells);
        }
        table.print();
        dump.extend(grid);
    }
    save_json("table6", &dump);
}
