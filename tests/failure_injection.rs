//! Failure-injection tests: degenerate graphs, empty modalities, dead
//! ends, and pathological configurations must not panic or emit NaN.

use mmkgr::core::{NoShaper, RewardEngine};
use mmkgr::kg::{KnowledgeGraph, ModalBank};
use mmkgr::prelude::*;

/// A graph where one entity is a dead end and one is isolated.
fn degenerate_kg() -> MultiModalKG {
    let train = vec![
        Triple::new(0, 0, 1),
        Triple::new(1, 0, 2),
        Triple::new(2, 1, 0),
    ];
    let test = vec![Triple::new(0, 1, 2)];
    // entity 3 is isolated; entity 4 exists only as padding
    let graph = KnowledgeGraph::from_triples(5, 2, train.clone(), None);
    let modal = ModalBank::empty(5);
    MultiModalKG::new(
        "degenerate",
        graph,
        modal,
        Split {
            train,
            valid: vec![],
            test,
        },
    )
}

#[test]
fn training_survives_empty_modalities_and_isolated_entities() {
    let kg = degenerate_kg();
    let mut cfg = MmkgrConfig::quick();
    cfg.struct_dim = 8;
    cfg.fusion_dim = 8;
    cfg.mlb_dim = 8;
    cfg.epochs = 2;
    cfg.batch_size = 4;
    // modalities off automatically? No — the bank is empty (0-dim), so
    // projections are degenerate; the model must still run.
    cfg.use_text = false;
    cfg.use_image = false;
    let engine = RewardEngine::new(&cfg, Some(NoShaper));
    let model = MmkgrModel::new(&kg, cfg, None);
    let mut trainer = Trainer::new(model, engine);
    let report = trainer.train(&kg, 0);
    assert!(report.epochs.iter().all(|e| e.mean_loss.is_finite()));
}

#[test]
fn beam_search_from_isolated_entity_stays_put() {
    let kg = degenerate_kg();
    let cfg = MmkgrConfig::quick().variant(mmkgr::core::Variant::Oskgr);
    let model = MmkgrModel::new(&kg, cfg, None);
    let paths = beam_search(&model, &kg.graph, EntityId(3), RelationId(0), 4, 3);
    assert!(!paths.is_empty());
    assert!(
        paths.iter().all(|p| p.entity == EntityId(3) && p.hops == 0),
        "isolated entities can only NO_OP"
    );
}

#[test]
fn empty_test_split_evaluates_to_zero_metrics() {
    let kg = degenerate_kg();
    let cfg = MmkgrConfig::quick().variant(mmkgr::core::Variant::Oskgr);
    let model = MmkgrModel::new(&kg, cfg, None);
    let known = kg.all_known();
    let summary = evaluate_ranking(&model, &kg.graph, &[], &known, 4, 3);
    assert_eq!(summary.total, 0);
    assert_eq!(summary.mrr, 0.0);
}

#[test]
fn zero_modal_dims_bank_is_consistent() {
    let bank = ModalBank::empty(3);
    assert_eq!(bank.image_dim(), 0);
    assert_eq!(bank.text_dim(), 0);
    assert_eq!(bank.text(EntityId(2)), &[] as &[f32]);
    assert_eq!(bank.images_of(EntityId(0)).count(), 0);
}

#[test]
fn single_entity_graph_does_not_panic() {
    // One entity, zero triples: every query degenerates.
    let graph = KnowledgeGraph::from_triples(1, 1, vec![], None);
    let modal = ModalBank::empty(1);
    let kg = MultiModalKG::new(
        "singleton",
        graph,
        modal,
        Split {
            train: vec![],
            valid: vec![],
            test: vec![],
        },
    );
    let cfg = MmkgrConfig::quick().variant(mmkgr::core::Variant::Oskgr);
    let model = MmkgrModel::new(&kg, cfg, None);
    let paths = beam_search(
        &model,
        &kg.graph,
        EntityId(0),
        kg.graph.relations().no_op(),
        2,
        2,
    );
    assert!(paths.iter().all(|p| p.entity == EntityId(0)));
}

#[test]
fn reward_engine_handles_empty_path_embeddings() {
    let cfg = MmkgrConfig::quick();
    let mut engine: RewardEngine<NoShaper> = RewardEngine::new(&cfg, None);
    engine.remember(RelationId(0), vec![]); // ignored, not stored
    assert_eq!(engine.memory_len(RelationId(0)), 0);
    assert_eq!(engine.diversity(RelationId(0), &[]), 0.0);
}

#[test]
fn nan_guard_matrix_detection() {
    use mmkgr::tensor::Matrix;
    let mut m = Matrix::ones(2, 2);
    assert!(!m.has_non_finite());
    m.set(0, 0, f32::INFINITY);
    assert!(m.has_non_finite());
}
