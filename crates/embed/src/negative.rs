//! Uniform negative sampling with known-positive rejection.

use mmkgr_kg::{Triple, TripleSet};
use rand::rngs::StdRng;
use rand::Rng;

/// Corrupts heads or tails of positive triples, rejecting corruptions that
/// are themselves known facts (the "filtered" negative protocol TransE-
/// family training uses to avoid false negatives).
pub struct NegativeSampler<'a> {
    known: &'a TripleSet,
    num_entities: usize,
}

impl<'a> NegativeSampler<'a> {
    pub fn new(known: &'a TripleSet, num_entities: usize) -> Self {
        assert!(num_entities > 1, "need ≥2 entities to corrupt");
        NegativeSampler {
            known,
            num_entities,
        }
    }

    /// One corruption of `t`: flips a fair coin between head and tail.
    /// Falls back to an unchecked corruption after a bounded number of
    /// rejections (dense graphs could otherwise loop).
    pub fn corrupt(&self, t: &Triple, rng: &mut StdRng) -> Triple {
        for _ in 0..32 {
            let e = rng.gen_range(0..self.num_entities) as u32;
            let cand = if rng.gen_bool(0.5) {
                if e == t.s.0 {
                    continue;
                }
                Triple {
                    s: mmkgr_kg::EntityId(e),
                    r: t.r,
                    o: t.o,
                }
            } else {
                if e == t.o.0 {
                    continue;
                }
                Triple {
                    s: t.s,
                    r: t.r,
                    o: mmkgr_kg::EntityId(e),
                }
            };
            if cand.s != cand.o && !self.known.contains_triple(&cand) {
                return cand;
            }
        }
        // Bounded fallback: force a tail flip to the next entity id.
        let e = (t.o.0 + 1) % self.num_entities as u32;
        Triple {
            s: t.s,
            r: t.r,
            o: mmkgr_kg::EntityId(e),
        }
    }

    /// `k` corruptions of `t`.
    pub fn corrupt_many(&self, t: &Triple, k: usize, rng: &mut StdRng) -> Vec<Triple> {
        (0..k).map(|_| self.corrupt(t, rng)).collect()
    }
}

/// Bernoulli negative sampling (Wang et al., TransH 2014): per relation,
/// heads are corrupted with probability `tph / (tph + hpt)` (tails
/// otherwise), where `tph`/`hpt` are the relation's mean tails-per-head /
/// heads-per-tail. 1-to-N relations then mostly corrupt the head and
/// N-to-1 the tail, which lowers the false-negative rate uniform
/// sampling suffers on skewed relations.
pub struct BernoulliSampler<'a> {
    known: &'a TripleSet,
    num_entities: usize,
    /// `P(corrupt head)` per relation id.
    head_prob: Vec<f64>,
}

impl<'a> BernoulliSampler<'a> {
    /// Build the per-relation statistics from the training triples.
    pub fn new(known: &'a TripleSet, num_entities: usize, train: &[Triple]) -> Self {
        assert!(num_entities > 1, "need ≥2 entities to corrupt");
        use std::collections::HashMap;
        let mut heads_of: HashMap<(u32, u32), usize> = HashMap::new(); // (r, o) → #heads
        let mut tails_of: HashMap<(u32, u32), usize> = HashMap::new(); // (r, s) → #tails
        let mut max_rel = 0u32;
        for t in train {
            *heads_of.entry((t.r.0, t.o.0)).or_insert(0) += 1;
            *tails_of.entry((t.r.0, t.s.0)).or_insert(0) += 1;
            max_rel = max_rel.max(t.r.0);
        }
        let mut tph_sum = vec![0.0f64; max_rel as usize + 1];
        let mut tph_n = vec![0usize; max_rel as usize + 1];
        for ((r, _), &n) in &tails_of {
            tph_sum[*r as usize] += n as f64;
            tph_n[*r as usize] += 1;
        }
        let mut hpt_sum = vec![0.0f64; max_rel as usize + 1];
        let mut hpt_n = vec![0usize; max_rel as usize + 1];
        for ((r, _), &n) in &heads_of {
            hpt_sum[*r as usize] += n as f64;
            hpt_n[*r as usize] += 1;
        }
        let head_prob = (0..=max_rel as usize)
            .map(|r| {
                let tph = if tph_n[r] > 0 {
                    tph_sum[r] / tph_n[r] as f64
                } else {
                    1.0
                };
                let hpt = if hpt_n[r] > 0 {
                    hpt_sum[r] / hpt_n[r] as f64
                } else {
                    1.0
                };
                tph / (tph + hpt)
            })
            .collect();
        BernoulliSampler {
            known,
            num_entities,
            head_prob,
        }
    }

    /// `P(corrupt head)` for a relation (0.5 for unseen relations).
    pub fn head_probability(&self, r: mmkgr_kg::RelationId) -> f64 {
        self.head_prob.get(r.index()).copied().unwrap_or(0.5)
    }

    /// One corruption of `t`, side chosen by the relation's Bernoulli
    /// probability; filtered against known positives like the uniform
    /// sampler.
    pub fn corrupt(&self, t: &Triple, rng: &mut StdRng) -> Triple {
        let p_head = self.head_probability(t.r);
        for _ in 0..32 {
            let e = rng.gen_range(0..self.num_entities) as u32;
            let cand = if rng.gen_bool(p_head.clamp(0.01, 0.99)) {
                if e == t.s.0 {
                    continue;
                }
                Triple {
                    s: mmkgr_kg::EntityId(e),
                    r: t.r,
                    o: t.o,
                }
            } else {
                if e == t.o.0 {
                    continue;
                }
                Triple {
                    s: t.s,
                    r: t.r,
                    o: mmkgr_kg::EntityId(e),
                }
            };
            if cand.s != cand.o && !self.known.contains_triple(&cand) {
                return cand;
            }
        }
        let e = (t.o.0 + 1) % self.num_entities as u32;
        Triple {
            s: t.s,
            r: t.r,
            o: mmkgr_kg::EntityId(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_tensor::init::seeded_rng;

    #[test]
    fn corruptions_avoid_known_positives() {
        let positives = vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 2),
            Triple::new(0, 0, 3),
        ];
        let known = TripleSet::from_triples(&positives);
        let sampler = NegativeSampler::new(&known, 10);
        let mut rng = seeded_rng(0);
        for _ in 0..100 {
            let neg = sampler.corrupt(&positives[0], &mut rng);
            assert!(
                !known.contains_triple(&neg),
                "sampled a known positive: {neg}"
            );
        }
    }

    #[test]
    fn corruption_changes_exactly_one_slot() {
        let t = Triple::new(4, 1, 7);
        let known = TripleSet::new();
        let sampler = NegativeSampler::new(&known, 20);
        let mut rng = seeded_rng(1);
        for _ in 0..50 {
            let neg = sampler.corrupt(&t, &mut rng);
            assert_eq!(neg.r, t.r);
            let head_changed = neg.s != t.s;
            let tail_changed = neg.o != t.o;
            assert!(head_changed ^ tail_changed, "exactly one side must change");
        }
    }

    #[test]
    fn corrupt_many_count() {
        let known = TripleSet::new();
        let sampler = NegativeSampler::new(&known, 5);
        let mut rng = seeded_rng(2);
        assert_eq!(
            sampler
                .corrupt_many(&Triple::new(0, 0, 1), 7, &mut rng)
                .len(),
            7
        );
    }

    #[test]
    fn bernoulli_prefers_head_corruption_for_one_to_many() {
        // r0 is 1-to-N: one head (0) with many tails → tph high, hpt = 1
        // → corrupting the head is the safer negative.
        let train: Vec<Triple> = (1..9).map(|o| Triple::new(0, 0, o)).collect();
        let known = TripleSet::from_triples(&train);
        let sampler = BernoulliSampler::new(&known, 20, &train);
        let p = sampler.head_probability(mmkgr_kg::RelationId(0));
        assert!(
            p > 0.8,
            "1-to-N relation should mostly corrupt heads, p = {p}"
        );
        let mut rng = seeded_rng(3);
        let mut head_flips = 0;
        for _ in 0..200 {
            let neg = sampler.corrupt(&train[0], &mut rng);
            assert!(!known.contains_triple(&neg));
            if neg.s != train[0].s {
                head_flips += 1;
            }
        }
        assert!(head_flips > 140, "observed {head_flips}/200 head flips");
    }

    #[test]
    fn bernoulli_prefers_tail_corruption_for_many_to_one() {
        // r0 is N-to-1: many heads share one tail.
        let train: Vec<Triple> = (1..9).map(|s| Triple::new(s, 0, 0)).collect();
        let known = TripleSet::from_triples(&train);
        let sampler = BernoulliSampler::new(&known, 20, &train);
        let p = sampler.head_probability(mmkgr_kg::RelationId(0));
        assert!(
            p < 0.2,
            "N-to-1 relation should mostly corrupt tails, p = {p}"
        );
    }

    #[test]
    fn bernoulli_balanced_for_one_to_one() {
        let train: Vec<Triple> = (0..8).map(|i| Triple::new(2 * i, 0, 2 * i + 1)).collect();
        let known = TripleSet::from_triples(&train);
        let sampler = BernoulliSampler::new(&known, 40, &train);
        let p = sampler.head_probability(mmkgr_kg::RelationId(0));
        assert!(
            (p - 0.5).abs() < 0.1,
            "1-to-1 relation should be balanced, p = {p}"
        );
        // unseen relation defaults to a fair coin
        assert_eq!(sampler.head_probability(mmkgr_kg::RelationId(99)), 0.5);
    }
}
