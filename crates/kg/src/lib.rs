//! `mmkgr-kg` — the multi-modal knowledge-graph storage substrate.
//!
//! A multi-modal KG (Definition 1 of the MMKGR paper) couples a structural
//! graph of relation triples with per-entity auxiliary data (image and text
//! feature vectors). This crate provides:
//!
//! - typed ids and the layered relation space ([`RelationSpace`]: base,
//!   inverse, NO_OP),
//! - CSR adjacency with automatic inverse edges ([`KnowledgeGraph`]),
//! - per-entity modality banks ([`ModalBank`]),
//! - dataset bundles with splits ([`MultiModalKG`]),
//! - evaluation queries and filtered-ranking helpers ([`query`]),
//! - path utilities for walks, BFS and rule mining ([`paths`]).

pub mod dataset;
pub mod graph;
pub mod ids;
pub mod io;
pub mod live;
pub mod modal;
pub mod paths;
pub mod query;
pub mod stats;
pub mod store;
pub mod subgraph;
pub mod triple;

pub use dataset::{DatasetStats, MultiModalKG, Split};
pub use graph::{Edge, KnowledgeGraph, MutationError, MutationStats};
pub use ids::{EntityId, RelationId, RelationSpace};
pub use io::{load_split_dir, read_triples, write_triples, Vocab};
pub use live::GraphHandle;
pub use modal::ModalBank;
pub use paths::{enumerate_paths, hop_distance, random_walk, Path};
pub use query::{Query, QueryKind, RankFilter};
pub use stats::{gini, GraphProfile};
pub use store::{
    CsrStore, SectionReport, Snapshot, SnapshotError, SnapshotWriter, TripleOp, VerifyReport,
    WalError, WalRecord, WalWriter,
};
pub use subgraph::{extract, ModalPresence, Subgraph, SubgraphConfig, SubgraphEntity};
pub use triple::{Triple, TripleSet};
