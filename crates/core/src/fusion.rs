//! The unified gate-attention network (paper §IV-B, Fig. 3).
//!
//! Pipeline (Eqs. 5–12):
//!
//! ```text
//! Q = X·Wq          K = Y·Wk          V = Y·Wv              (Eq. 5)
//! Bl = (K·Wlk) ⊙ (Q·Wlq)                                    (Eq. 6, MLB)
//! Br = (V·Wrv) ⊙ (Q·Wrq)                                    (Eq. 7)
//! gt = σ(Bl·Wm)                                             (Eq. 8)
//! Gs = softmax((gt ⊙ K) · ((1−gt) ⊙ Q)ᵀ)                    (Eq. 9)
//! V̂  = Gs · Br                                              (Eq. 10)
//! Gf = σ(Br ⊙ V̂);  Z = Gf ⊙ (Br ⊙ V̂)                        (Eqs. 11–12)
//! ```
//!
//! `Y`'s rows are identical copies of the structural feature
//! `y = [e_s; h_t; r_q]` (Eq. 1), so we keep `y` as a single row and use
//! row-broadcast products — mathematically identical, and it removes the
//! dominant `m×d_y` matmuls from the RL hot loop.
//!
//! Ablations: `use_attention_fusion = false` (FGKGR) short-circuits
//! Eqs. 9–10 and filters the MLB fusion `Bl` directly;
//! `use_irrelevance_filtration = false` (FAKGR) returns `V̂` unfiltered.
//! With no modalities at all (OSKGR) the caller uses [`GateAttention::
//! bypass`] — a linear projection of `y` (paper §V-E: "only structural
//! features are considered in Eq. (17)").

use mmkgr_nn::{Ctx, ParamId, Params};
use mmkgr_tensor::init::xavier;
use mmkgr_tensor::{Matrix, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Parameters of the unified gate-attention network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GateAttention {
    pub wq: ParamId,
    pub wk: ParamId,
    pub wv: ParamId,
    pub wlk: ParamId,
    pub wlq: ParamId,
    pub wrv: ParamId,
    pub wrq: ParamId,
    pub wm: ParamId,
    /// Structure-only bypass projection (`d_y → j`).
    pub os_proj: ParamId,
    pub d: usize,
    pub j: usize,
}

impl GateAttention {
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        dy: usize,
        dx: usize,
        d: usize,
        j: usize,
    ) -> Self {
        let dx1 = dx.max(1); // keep params well-formed when modalities are off
        GateAttention {
            wq: params.add("gate.wq", xavier(rng, dx1, d)),
            wk: params.add("gate.wk", xavier(rng, dy, d)),
            wv: params.add("gate.wv", xavier(rng, dy, d)),
            wlk: params.add("gate.wlk", xavier(rng, d, j)),
            wlq: params.add("gate.wlq", xavier(rng, d, j)),
            wrv: params.add("gate.wrv", xavier(rng, d, j)),
            wrq: params.add("gate.wrq", xavier(rng, d, j)),
            wm: params.add("gate.wm", xavier(rng, j, d)),
            os_proj: params.add("gate.os_proj", xavier(rng, dy, j)),
            d,
            j,
        }
    }

    /// Tape forward: `y_row: 1×d_y`, `x: m×d_x` → `Z: m×j`.
    pub fn forward(
        &self,
        ctx: &Ctx<'_>,
        y_row: Var,
        x: Var,
        use_attention_fusion: bool,
        use_irrelevance_filtration: bool,
    ) -> Var {
        let t = ctx.tape;
        let q = t.matmul(x, ctx.p(self.wq)); // m×d
        let k_row = t.matmul(y_row, ctx.p(self.wk)); // 1×d
        let v_row = t.matmul(y_row, ctx.p(self.wv)); // 1×d

        let q_lq = t.matmul(q, ctx.p(self.wlq)); // m×j
        let k_lk = t.matmul(k_row, ctx.p(self.wlk)); // 1×j
        let bl = t.mul_row_broadcast(q_lq, k_lk); // Eq. 6

        let q_rq = t.matmul(q, ctx.p(self.wrq)); // m×j
        let v_rv = t.matmul(v_row, ctx.p(self.wrv)); // 1×j
        let br = t.mul_row_broadcast(q_rq, v_rv); // Eq. 7

        let v_hat = if use_attention_fusion {
            let gt = t.sigmoid(t.matmul(bl, ctx.p(self.wm))); // m×d, Eq. 8
            let gt_k = t.mul_row_broadcast(gt, k_row); // (gt ⊙ K)
            let one_minus_gt = t.add_scalar(t.neg(gt), 1.0);
            let g_q = t.mul(one_minus_gt, q); // ((1−gt) ⊙ Q)
            let gs = t.softmax_rows(t.matmul(gt_k, t.transpose(g_q))); // Eq. 9
            t.matmul(gs, br) // Eq. 10
        } else {
            // FGKGR: the Eq. 6 MLB fusion goes straight to filtration.
            bl
        };

        if use_irrelevance_filtration {
            let prod = t.mul(br, v_hat);
            let gf = t.sigmoid(prod); // Eq. 11
            t.mul(gf, prod) // Eq. 12
        } else {
            v_hat // FAKGR
        }
    }

    /// Structure-only bypass: `y_row: 1×d_y → 1×j`.
    pub fn bypass(&self, ctx: &Ctx<'_>, y_row: Var) -> Var {
        ctx.tape.matmul(y_row, ctx.p(self.os_proj))
    }

    /// Tape-free forward mirroring [`GateAttention::forward`] exactly.
    /// Used by beam-search inference; parity is asserted in tests.
    pub fn forward_raw(
        &self,
        params: &Params,
        y_row: &Matrix,
        x: &Matrix,
        use_attention_fusion: bool,
        use_irrelevance_filtration: bool,
    ) -> Matrix {
        let px = self.prepare_x(params, x);
        self.forward_raw_prepared(
            params,
            y_row,
            &px,
            use_attention_fusion,
            use_irrelevance_filtration,
        )
    }

    /// Precompute every `X`-side projection of the raw forward. `X`
    /// depends only on the candidate action set, not on the agent state
    /// `y`, so beam search shares one [`PreparedX`] across all frontier
    /// beams standing at the same entity — the dominant saving of the
    /// grouped policy forward.
    pub fn prepare_x(&self, params: &Params, x: &Matrix) -> PreparedX {
        let q = x.matmul(params.value(self.wq));
        let q_lq = q.matmul(params.value(self.wlq));
        let q_rq = q.matmul(params.value(self.wrq));
        PreparedX { q, q_lq, q_rq }
    }

    /// The per-state half of [`GateAttention::forward_raw`], given
    /// shared [`PreparedX`] projections. Bitwise-identical to the
    /// unshared path (same operations on the same values, in the same
    /// order).
    pub fn forward_raw_prepared(
        &self,
        params: &Params,
        y_row: &Matrix,
        px: &PreparedX,
        use_attention_fusion: bool,
        use_irrelevance_filtration: bool,
    ) -> Matrix {
        let mut scratch = GateScratch::new();
        self.forward_raw_scratch(
            params,
            y_row,
            px,
            use_attention_fusion,
            use_irrelevance_filtration,
            &mut scratch,
        );
        scratch.z
    }

    /// [`GateAttention::forward_raw_prepared`] with every intermediate in
    /// caller-owned scratch: the inference hot loop runs this once per
    /// beam state with zero allocations once the scratch is warm. The
    /// result lands in `scratch.z`. Bit-identical to the allocating path
    /// (same kernels, same operand order).
    pub fn forward_raw_scratch(
        &self,
        params: &Params,
        y_row: &Matrix,
        px: &PreparedX,
        use_attention_fusion: bool,
        use_irrelevance_filtration: bool,
        s: &mut GateScratch,
    ) {
        y_row.matmul_into(params.value(self.wk), &mut s.k); // 1×d
        y_row.matmul_into(params.value(self.wv), &mut s.v); // 1×d
        s.k.matmul_into(params.value(self.wlk), &mut s.klk); // 1×j
        s.v.matmul_into(params.value(self.wrv), &mut s.vrv); // 1×j

        s.bl.copy_from(&px.q_lq); // Eq. 6
        row_scale_inplace(&mut s.bl, s.klk.row(0));
        s.br.copy_from(&px.q_rq); // Eq. 7
        row_scale_inplace(&mut s.br, s.vrv.row(0));

        if use_attention_fusion {
            s.bl.matmul_into(params.value(self.wm), &mut s.gt); // Eq. 8
            s.gt.map_inplace(sigmoid);
            s.gtk.copy_from(&s.gt); // (gt ⊙ K)
            row_scale_inplace(&mut s.gtk, s.k.row(0));
            // ((1−gt) ⊙ Q), in place over gt (gtk already captured it).
            for (o, &qv) in s.gt.as_mut_slice().iter_mut().zip(px.q.as_slice()) {
                *o = (1.0 - *o) * qv;
            }
            s.gtk.matmul_nt_into(&s.gt, &mut s.att); // Eq. 9
            for r in 0..s.att.rows() {
                mmkgr_tensor::softmax_slice(s.att.row_mut(r));
            }
            s.att.matmul_into(&s.br, &mut s.vhat); // Eq. 10
        } else {
            // FGKGR: the Eq. 6 MLB fusion goes straight to filtration.
            s.vhat.copy_from(&s.bl);
        }

        if use_irrelevance_filtration {
            s.z.copy_from(&s.br); // Eqs. 11–12
            for (o, &vh) in s.z.as_mut_slice().iter_mut().zip(s.vhat.as_slice()) {
                *o *= vh;
            }
            s.z.map_inplace(|p| sigmoid(p) * p);
        } else {
            s.z.copy_from(&s.vhat); // FAKGR
        }
    }

    /// Tape-free bypass.
    pub fn bypass_raw(&self, params: &Params, y_row: &Matrix) -> Matrix {
        y_row.matmul(params.value(self.os_proj))
    }
}

/// The action-set-dependent projections of the raw gate forward (`Q` and
/// its MLB images), shareable across every agent state standing at the
/// same entity. Built by [`GateAttention::prepare_x`].
pub struct PreparedX {
    pub q: Matrix,
    pub q_lq: Matrix,
    pub q_rq: Matrix,
}

/// Reusable intermediates of [`GateAttention::forward_raw_scratch`]: one
/// per inference thread, warm after the first state.
pub struct GateScratch {
    k: Matrix,
    v: Matrix,
    klk: Matrix,
    vrv: Matrix,
    bl: Matrix,
    br: Matrix,
    gt: Matrix,
    gtk: Matrix,
    att: Matrix,
    vhat: Matrix,
    /// The output `Z` of the last forward.
    pub z: Matrix,
}

impl GateScratch {
    pub fn new() -> Self {
        let empty = || Matrix::zeros(0, 0);
        GateScratch {
            k: empty(),
            v: empty(),
            klk: empty(),
            vrv: empty(),
            bl: empty(),
            br: empty(),
            gt: empty(),
            gtk: empty(),
            att: empty(),
            vhat: empty(),
            z: empty(),
        }
    }
}

impl Default for GateScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// `a ⊙ row` with `row` broadcast over every row of `a`, in place.
fn row_scale_inplace(a: &mut Matrix, row: &[f32]) {
    for r in 0..a.rows() {
        for (o, &s) in a.row_mut(r).iter_mut().zip(row) {
            *o *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_tensor::init::seeded_rng;
    use mmkgr_tensor::Tape;

    fn setup() -> (Params, GateAttention) {
        let mut params = Params::new();
        let mut rng = seeded_rng(0);
        let gate = GateAttention::new(&mut params, &mut rng, 12, 8, 6, 5);
        (params, gate)
    }

    fn rand(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded_rng(seed);
        mmkgr_tensor::init::uniform(&mut rng, rows, cols, 1.0)
    }

    #[test]
    fn forward_shapes() {
        let (params, gate) = setup();
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let y = ctx.input(rand(1, 12, 1));
        let x = ctx.input(rand(4, 8, 2));
        let z = gate.forward(&ctx, y, x, true, true);
        assert_eq!(tape.shape(z), (4, 5));
    }

    #[test]
    fn raw_matches_tape_all_variants() {
        let (params, gate) = setup();
        let y = rand(1, 12, 3);
        let x = rand(5, 8, 4);
        for (fu, fi) in [(true, true), (true, false), (false, true), (false, false)] {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &params);
            let vy = ctx.input(y.clone());
            let vx = ctx.input(x.clone());
            let z = gate.forward(&ctx, vy, vx, fu, fi);
            let z_tape = tape.value_cloned(z);
            let z_raw = gate.forward_raw(&params, &y, &x, fu, fi);
            assert_eq!(z_tape.shape(), z_raw.shape());
            for (a, b) in z_tape.as_slice().iter().zip(z_raw.as_slice()) {
                assert!((a - b).abs() < 1e-4, "variant ({fu},{fi}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn bypass_raw_matches_tape() {
        let (params, gate) = setup();
        let y = rand(1, 12, 5);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let vy = ctx.input(y.clone());
        let z = gate.bypass(&ctx, vy);
        let z_tape = tape.value_cloned(z);
        let z_raw = gate.bypass_raw(&params, &y);
        for (a, b) in z_tape.as_slice().iter().zip(z_raw.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn filtration_shrinks_magnitude() {
        // Z = σ(p)·p has |Z| ≤ |p|: the gate can only attenuate.
        let (params, gate) = setup();
        let y = rand(1, 12, 6);
        let x = rand(3, 8, 7);
        let unfiltered = gate.forward_raw(&params, &y, &x, true, false);
        // compare against Br ⊙ V̂ magnitude: reconstruct p = Br⊙V̂ via
        // filtered/unfiltered relationship is internal; instead check the
        // output is finite and bounded by the pre-gate product norm.
        let filtered = gate.forward_raw(&params, &y, &x, true, true);
        assert!(filtered.as_slice().iter().all(|v| v.is_finite()));
        assert!(unfiltered.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradient_flows_through_full_network() {
        let (mut params, gate) = setup();
        let y = rand(1, 12, 8);
        let x = rand(4, 8, 9);
        let tape = Tape::new();
        let leases = {
            let ctx = Ctx::new(&tape, &params);
            let vy = ctx.input(y);
            let vx = ctx.input(x);
            let z = gate.forward(&ctx, vy, vx, true, true);
            let loss = tape.mean(tape.mul(z, z));
            let grads = tape.backward(loss);
            let leases = ctx.into_leases();
            leases.accumulate(&mut params, &grads);
            leases
        };
        assert!(leases.len() >= 8, "all gate weights leased");
        // every gate parameter should receive a nonzero gradient
        for pid in [
            gate.wq, gate.wk, gate.wv, gate.wlk, gate.wlq, gate.wrv, gate.wrq, gate.wm,
        ] {
            let g = params.grad(pid);
            assert!(g.norm() > 0.0, "no gradient for {:?}", params.name(pid));
        }
    }

    #[test]
    fn single_action_state_works() {
        // m = 1 (dead end: only NO_OP) must not break the attention matmuls.
        let (params, gate) = setup();
        let y = rand(1, 12, 10);
        let x = rand(1, 8, 11);
        let z = gate.forward_raw(&params, &y, &x, true, true);
        assert_eq!(z.shape(), (1, 5));
    }
}
