//! Integration tests for the `mmkgr` CLI binary: the full
//! generate → train → eval → explain workflow plus its failure modes.
//!
//! These shell out to the compiled binary (`CARGO_BIN_EXE_mmkgr`), so they
//! exercise argument parsing, exit codes and on-disk artifacts exactly as
//! a user would.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mmkgr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mmkgr"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmkgr-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = mmkgr(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = mmkgr(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn help_succeeds() {
    let out = mmkgr(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("COMMANDS"));
}

#[test]
fn generate_requires_out() {
    let out = mmkgr(&["generate", "--dataset", "tiny"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--out"));
}

#[test]
fn generate_rejects_unknown_dataset() {
    let dir = temp_dir("baddata");
    let out = mmkgr(&[
        "generate",
        "--dataset",
        "freebase",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown dataset"));
}

#[test]
fn eval_rejects_missing_run_dir() {
    let out = mmkgr(&["eval", "--run", "/nonexistent/run"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("meta.json"));
}

#[test]
fn bare_positional_arg_fails() {
    // Flags without values are boolean switches (`--live`), but a bare
    // positional where a flag is expected is still a parse error.
    let out = mmkgr(&["generate", "wn9"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("expected --flag"));
}

#[test]
fn full_workflow_generate_train_eval_explain() {
    let data = temp_dir("data");
    let run = temp_dir("run");

    // generate: writes the three splits + dataset meta
    let out = mmkgr(&[
        "generate",
        "--dataset",
        "tiny",
        "--out",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));
    for f in ["train.tsv", "valid.tsv", "test.tsv", "dataset.json"] {
        assert!(data.join(f).exists(), "missing {f}");
    }
    let first = std::fs::read_to_string(data.join("train.tsv")).unwrap();
    let line = first.lines().next().unwrap();
    assert_eq!(line.split('\t').count(), 3, "TSV triple format: {line:?}");

    // train: tiny dataset, minimal epochs, unshaped reward for speed
    let out = mmkgr(&[
        "train",
        "--dataset",
        "tiny",
        "--epochs",
        "2",
        "--shaper",
        "none",
        "--variant",
        "OSKGR",
        "--out",
        run.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "train failed: {}", stderr(&out));
    assert!(run.join("meta.json").exists());
    assert!(run.join("model.json").exists());

    // eval: reports the four metrics
    let out = mmkgr(&[
        "eval",
        "--run",
        run.to_str().unwrap(),
        "--max-eval",
        "10",
        "--beam",
        "4",
    ]);
    assert!(out.status.success(), "eval failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("MRR"), "metrics line missing: {text}");

    // answer: the unified serving API — ranked entities with evidence
    let out = mmkgr(&[
        "answer",
        "--run",
        run.to_str().unwrap(),
        "--top",
        "5",
        "--beam",
        "4",
    ]);
    assert!(out.status.success(), "answer failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("query (e"), "query header missing: {text}");
    assert!(text.contains("score"), "ranked answers missing: {text}");
    assert!(text.contains("hops"), "evidence missing: {text}");

    // explain: prints ranked paths for the default (first test) query
    let out = mmkgr(&[
        "explain",
        "--run",
        run.to_str().unwrap(),
        "--top",
        "3",
        "--beam",
        "4",
    ]);
    assert!(out.status.success(), "explain failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("query (e"), "query header missing: {text}");
    assert!(text.contains("logp"), "paths missing: {text}");

    // explain with an out-of-range entity fails cleanly
    let out = mmkgr(&[
        "explain",
        "--run",
        run.to_str().unwrap(),
        "--source",
        "99999",
        "--relation",
        "0",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("out of range"));

    cleanup(&data);
    cleanup(&run);
}

#[test]
fn stats_profiles_a_dataset() {
    let out = mmkgr(&["stats", "--dataset", "tiny"]);
    assert!(out.status.success(), "stats failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("components"), "graph profile missing: {text}");
    assert!(text.contains("top relations"), "frequency head missing");
    assert!(text.contains("modalities:"), "modality line missing");
}

#[test]
fn corrupted_checkpoint_fails_cleanly() {
    let run = temp_dir("corrupt");
    std::fs::write(
        run.join("meta.json"),
        r#"{"dataset":"tiny","scale":1.0,"seed":0,"variant":"MMKGR","history":"LSTM","epochs":1}"#,
    )
    .unwrap();
    std::fs::write(run.join("model.json"), "{ not json").unwrap();
    let out = mmkgr(&["eval", "--run", run.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("model.json"));
    cleanup(&run);
}

fn cleanup(p: &Path) {
    let _ = std::fs::remove_dir_all(p);
}
