//! Chaos tests: drive the HTTP serving stack through the fault-injection
//! harness (`mmkgr::core::serve::faults`) and prove the robustness
//! contract from the outside:
//!
//! - injected shard panics never kill the server — persistent failures
//!   yield a *degraded* answer (the exact merged top-k of the surviving
//!   shards, annotated on the wire), transient ones are retried away;
//! - injected latency cannot outlast a caller's `timeout_ms`: the
//!   request answers `deadline_exceeded` (504) near the deadline and the
//!   server keeps serving;
//! - admission control sheds excess load with `overloaded` (503) and a
//!   `Retry-After` header instead of queueing without bound;
//! - a poisoned worker-pool thread is respawned and the batch completes;
//! - stalled clients are cut off with `request_timeout` (408);
//! - injected I/O errors surface as typed snapshot errors;
//! - with no faults installed the wire bodies carry **no** degradation
//!   fields and the robustness counters stay zero — byte-compatible
//!   with the pre-fault-tolerance protocol.
//!
//! Fault plans are process-global; every test pins one via
//! [`faults::install`], whose guard also serializes the tests against
//! each other (the no-fault test installs an *empty* plan purely to
//! hold that lock).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mmkgr::core::serve::http::request;
use mmkgr::core::serve::protocol::AnswerBatchResponse;
use mmkgr::core::serve::protocol::{MetricsResponse, RetrieveResponse};
use mmkgr::core::serve::{
    faults, AnswerBatchRequest, AnswerRequest, Budget, FaultPlan, HttpServer, HttpServerConfig,
    KgReasoner, ModelRegistry, NameIndex, NamedQuery, Query, RetrieveRequest, Retriever,
    RunningServer, ScorerReasoner, ShardSel, ShardedReasoner, WireAnswer,
};
use mmkgr::embed::TransE;
use mmkgr::eval::load_registry_snapshot;
use mmkgr::kg::{EntityId, KnowledgeGraph, RelationId, RelationSpace, Triple};

const N: usize = 40;
const SHARDS: usize = 4;

fn scorer() -> Arc<TransE> {
    Arc::new(TransE::new(N, RelationSpace::new(3).total(), 8, 11))
}

/// A registry with one entity-sharded TransE model over a synthetic
/// vocabulary — no training, so every test boots in milliseconds.
fn sharded_registry() -> Arc<ModelRegistry> {
    let rs = RelationSpace::new(3);
    let mut registry = ModelRegistry::new(NameIndex::synthetic(N, 3));
    registry.register(Arc::new(
        ShardedReasoner::from_scorer("TransE", scorer(), N, rs, SHARDS).expect("shards"),
    ));
    Arc::new(registry)
}

fn boot(cfg: HttpServerConfig) -> RunningServer {
    HttpServer::bind(("127.0.0.1", 0), sharded_registry(), cfg)
        .expect("bind ephemeral port")
        .spawn()
}

/// [`sharded_registry`] plus a retriever over a deterministic
/// ring-with-chords graph, so `/v1/retrieve` exercises both the k-hop
/// expansion and the sharded beam-evidence path under faults.
fn retrieval_registry() -> Arc<ModelRegistry> {
    let rs = RelationSpace::new(3);
    let n = N as u32;
    let triples: Vec<Triple> = (0..n)
        .flat_map(|i| {
            [
                Triple {
                    s: EntityId(i),
                    r: RelationId(i % 3),
                    o: EntityId((i + 1) % n),
                },
                Triple {
                    s: EntityId(i),
                    r: RelationId((i + 1) % 3),
                    o: EntityId((i + 7) % n),
                },
            ]
        })
        .collect();
    let graph = KnowledgeGraph::from_triples(N, 3, triples, None);
    let mut registry = ModelRegistry::new(NameIndex::synthetic(N, 3));
    registry.register(Arc::new(
        ShardedReasoner::from_scorer("TransE", scorer(), N, rs, SHARDS).expect("shards"),
    ));
    registry.set_retriever(Arc::new(Retriever::new(Arc::new(graph))));
    Arc::new(registry)
}

fn boot_retrieval(cfg: HttpServerConfig) -> RunningServer {
    HttpServer::bind(("127.0.0.1", 0), retrieval_registry(), cfg)
        .expect("bind ephemeral port")
        .spawn()
}

fn answer_body(timeout_ms: Option<u64>) -> String {
    let mut q = NamedQuery::new("e3", "r1").with_top_k(5);
    if let Some(ms) = timeout_ms {
        q = q.with_timeout_ms(ms);
    }
    serde_json::to_string(&AnswerRequest {
        model: None,
        query: q,
    })
    .unwrap()
}

fn metrics(addr: SocketAddr) -> MetricsResponse {
    let (status, body) = request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).unwrap()
}

/// Like [`request`] but returns the raw response head too, so tests can
/// assert on headers (`Retry-After`).
fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes()).expect("write head");
    let _ = stream.write_all(body.as_bytes());
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    let mut parts = text.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or_default().to_string();
    let body = parts.next().unwrap_or_default().to_string();
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head, body)
}

#[test]
fn persistent_shard_panic_degrades_but_never_kills_the_server() {
    let dead = 2usize;
    let guard =
        faults::install(FaultPlan::new().with_shard_panic(ShardSel::One(dead), faults::ALWAYS));
    let server = boot(HttpServerConfig::default());
    let addr = server.addr();

    let (status, body) = request(addr, "POST", "/v1/answer", &answer_body(None)).unwrap();
    assert_eq!(status, 200, "a degraded answer is still an answer: {body}");
    let wire: WireAnswer = serde_json::from_str(&body).unwrap();
    assert!(wire.degraded);
    assert_eq!(wire.shards_failed, vec![dead as u64]);
    assert!(
        body.contains("\"degraded\""),
        "annotation must reach the wire"
    );

    let m = metrics(addr);
    assert!(m.robustness.degraded_answers >= 1);

    // Heal the fault: the same server immediately serves full answers
    // again, identical to an unsharded reference pass.
    drop(guard);
    let _quiet = faults::install(FaultPlan::new());
    let (status, healed) = request(addr, "POST", "/v1/answer", &answer_body(None)).unwrap();
    assert_eq!(status, 200);
    let healed: WireAnswer = serde_json::from_str(&healed).unwrap();
    assert!(!healed.degraded);
    let whole = ScorerReasoner::new("TransE", scorer(), N, RelationSpace::new(3));
    let reference = whole.answer(&Query::new(EntityId(3), RelationId(1)).with_top_k(5));
    assert_eq!(healed.ranked.len(), reference.ranked.len());
    for (w, r) in healed.ranked.iter().zip(&reference.ranked) {
        assert_eq!(w.entity, format!("e{}", r.entity.0));
    }
    server.shutdown();
}

#[test]
fn transient_shard_panic_is_retried_to_a_healthy_answer() {
    let retries_before = faults::SHARD_RETRIES.load(std::sync::atomic::Ordering::Relaxed);
    let _guard = faults::install(FaultPlan::new().with_shard_panic(ShardSel::One(1), 1));
    let server = boot(HttpServerConfig::default());
    let addr = server.addr();

    let (status, body) = request(addr, "POST", "/v1/answer", &answer_body(None)).unwrap();
    assert_eq!(status, 200, "{body}");
    let wire: WireAnswer = serde_json::from_str(&body).unwrap();
    assert!(!wire.degraded, "one panic + one retry must heal: {body}");
    assert!(
        !body.contains("degraded"),
        "healthy bodies carry no annotation"
    );
    assert!(
        faults::SHARD_RETRIES.load(std::sync::atomic::Ordering::Relaxed) > retries_before,
        "the retry must be visible in the robustness counters"
    );
    let m = metrics(addr);
    assert!(m.robustness.shard_retries > 0);
    server.shutdown();
}

#[test]
fn injected_latency_turns_into_a_504_and_the_server_survives() {
    let _guard = faults::install(
        FaultPlan::new().with_shard_latency(ShardSel::All, Duration::from_millis(500)),
    );
    let server = boot(HttpServerConfig::default());
    let addr = server.addr();

    let started = Instant::now();
    let (status, body) = request(addr, "POST", "/v1/answer", &answer_body(Some(50))).unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"deadline_exceeded\""), "{body}");
    assert!(body.contains("\"timeout_ms\""), "{body}");
    assert!(
        started.elapsed() < Duration::from_millis(450),
        "the caller must get its 504 near the deadline, not after the \
         injected latency drains"
    );

    // The server is still alive and still counting.
    let m = metrics(addr);
    assert!(m.robustness.deadline_exceeded >= 1);
    let (status, _) = request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn overload_is_shed_with_503_and_retry_after() {
    // One connection thread, a one-deep queue, a one-request bulkhead,
    // and every shard slowed: concurrent clients must overflow.
    let _guard = faults::install(
        FaultPlan::new().with_shard_latency(ShardSel::All, Duration::from_millis(300)),
    );
    let server = boot(HttpServerConfig {
        conn_threads: 1,
        max_queue_depth: 1,
        model_inflight_limit: 1,
        retry_after_ms: 1500,
        ..HttpServerConfig::default()
    });
    let addr = server.addr();

    let clients: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || request_raw(addr, "POST", "/v1/answer", &answer_body(None)))
        })
        .collect();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for c in clients {
        let (status, head, body) = c.join().expect("client thread");
        match status {
            200 => ok += 1,
            503 => {
                shed += 1;
                assert!(body.contains("\"overloaded\""), "{body}");
                assert!(
                    head.to_ascii_lowercase().contains("retry-after: 2"),
                    "1500ms rounds up to 2s: {head}"
                );
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(ok >= 1, "admission control must not shed everything");
    assert!(shed >= 1, "six slow concurrent requests must trip shedding");
    assert!(metrics(addr).robustness.shed >= shed as u64);
    server.shutdown();
}

#[test]
fn worker_panic_is_respawned_and_the_batch_completes() {
    let respawns_before = faults::WORKER_RESPAWNS.load(std::sync::atomic::Ordering::Relaxed);
    let _guard = faults::install(FaultPlan::new().with_worker_panic(1));
    let server = boot(HttpServerConfig {
        pool_workers: 2,
        ..HttpServerConfig::default()
    });
    let addr = server.addr();

    let queries: Vec<NamedQuery> = (0..6)
        .map(|i| NamedQuery::new(format!("e{i}"), "r0").with_top_k(3))
        .collect();
    let body = serde_json::to_string(&AnswerBatchRequest {
        model: None,
        queries: queries.clone(),
    })
    .unwrap();
    let (status, resp) = request(addr, "POST", "/v1/answer_batch", &body).unwrap();
    assert_eq!(
        status, 200,
        "the batch must survive a poisoned worker: {resp}"
    );
    let batch: AnswerBatchResponse = serde_json::from_str(&resp).unwrap();
    assert_eq!(batch.answers.len(), queries.len());

    // Respawn is lazy: the supervisor replaces finished workers when
    // the pool is next used. The second batch both proves the pool
    // still works and makes the respawn observable.
    let (status, resp) = request(addr, "POST", "/v1/answer_batch", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    assert!(
        faults::WORKER_RESPAWNS.load(std::sync::atomic::Ordering::Relaxed) > respawns_before,
        "the supervisor must have replaced the poisoned worker"
    );
    assert!(metrics(addr).robustness.worker_respawns > 0);
    server.shutdown();
}

#[test]
fn stalled_clients_are_cut_off_with_408() {
    let _guard = faults::install(FaultPlan::new());
    let server = boot(HttpServerConfig {
        read_timeout: Duration::from_millis(200),
        ..HttpServerConfig::default()
    });
    let addr = server.addr();

    // Send headers promising a body, then stall.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /v1/answer HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("\"request_timeout\""), "{text}");

    // The stalled connection burned a handler slot, nothing more.
    let (status, _) = request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert!(metrics(addr).robustness.request_timeouts >= 1);
    server.shutdown();
}

#[test]
fn injected_io_error_fails_snapshot_load_with_the_typed_error() {
    let path = std::path::Path::new("does-not-exist.mmkg");
    let fail = |label: &str| match load_registry_snapshot(path, None, 1) {
        Err(e) => format!("{e:?}"),
        Ok(_) => panic!("{label}: load must fail"),
    };
    {
        let _guard = faults::install(FaultPlan::new().with_io_error());
        let msg = fail("fault installed");
        assert!(
            msg.contains("injected"),
            "the injected I/O error surfaces typed: {msg}"
        );
    }
    // With the plan uninstalled the same call fails for the *real*
    // reason — the hook is inert, not rewriting genuine errors.
    let _quiet = faults::install(FaultPlan::new());
    assert!(!fail("no fault").contains("injected"));
}

#[test]
fn with_faults_disabled_the_wire_is_byte_identical_to_in_process() {
    // Holds the exclusivity lock with an empty (inert) plan so no other
    // chaos test can install faults while we assert byte-identity.
    let _quiet = faults::install(FaultPlan::new());
    let server = boot(HttpServerConfig::default());
    let addr = server.addr();

    for src in [0u32, 7, 39] {
        let q = NamedQuery::new(format!("e{src}"), "r2").with_top_k(6);
        let body = serde_json::to_string(&AnswerRequest {
            model: None,
            query: q.clone(),
        })
        .unwrap();
        let (status, resp) = request(addr, "POST", "/v1/answer", &body).unwrap();
        assert_eq!(status, 200, "{resp}");
        assert!(
            !resp.contains("degraded"),
            "healthy wire has no degradation fields"
        );
        assert!(!resp.contains("shards_failed"));

        // The HTTP ranking is bit-identical to the in-process sharded
        // reasoner under an (unreachable) deadline.
        let sharded =
            ShardedReasoner::from_scorer("TransE", scorer(), N, RelationSpace::new(3), SHARDS)
                .unwrap();
        let local = sharded
            .answer_within(
                &Query::new(EntityId(src), RelationId(2)).with_top_k(6),
                Budget::from_timeout_ms(60_000),
            )
            .unwrap();
        let wire: WireAnswer = serde_json::from_str(&resp).unwrap();
        assert_eq!(wire.ranked.len(), local.ranked.len());
        for (w, l) in wire.ranked.iter().zip(&local.ranked) {
            assert_eq!(w.entity, format!("e{}", l.entity.0));
            assert_eq!(w.score, l.score);
        }
    }

    // Robustness counters: this server saw no faults, so every
    // per-server counter is still zero.
    let m = metrics(addr);
    assert_eq!(m.robustness.shed, 0);
    assert_eq!(m.robustness.deadline_exceeded, 0);
    assert_eq!(m.robustness.degraded_answers, 0);
    assert_eq!(m.robustness.request_timeouts, 0);
    server.shutdown();
}

#[test]
fn retrieve_stays_whole_while_answers_degrade_on_a_dead_shard() {
    // One shard of the answer reasoner panics on every call. `/v1/answer`
    // on that server visibly degrades — but `/v1/retrieve` walks the
    // graph, not the scorer shards, so the subgraph must come back
    // whole, byte-identical to the healthy server, with path contexts
    // still ranked. Retrieval is isolated from scorer-shard outages.
    let guard =
        faults::install(FaultPlan::new().with_shard_panic(ShardSel::One(2), faults::ALWAYS));
    let server = boot_retrieval(HttpServerConfig::default());
    let addr = server.addr();

    // The fault is live and biting this server's answer surface…
    let (status, body) = request(addr, "POST", "/v1/answer", &answer_body(None)).unwrap();
    assert_eq!(status, 200, "{body}");
    let wire: WireAnswer = serde_json::from_str(&body).unwrap();
    assert!(wire.degraded, "the dead shard must degrade answers: {body}");

    // …while retrieval on the same server is unharmed.
    let req = RetrieveRequest::new(["e3".to_string()])
        .with_hops(2)
        .with_max_paths(5);
    let body = serde_json::to_string(&req).unwrap();
    let (status, outage) = request(addr, "POST", "/v1/retrieve", &body).unwrap();
    assert_eq!(
        status, 200,
        "a dead shard must not fail retrieval: {outage}"
    );
    let wire: RetrieveResponse = serde_json::from_str(&outage).unwrap();
    assert!(!wire.subgraph.entities.is_empty(), "{outage}");
    assert!(!wire.subgraph.triples.is_empty(), "{outage}");
    assert!(!wire.paths.is_empty(), "{outage}");
    assert!(
        !outage.contains("degraded"),
        "retrieval carries no degradation annotation: {outage}"
    );

    // Heal the fault: the retrieval bytes are identical across the
    // outage — the dead shard never influenced them.
    drop(guard);
    let _quiet = faults::install(FaultPlan::new());
    let (status, healthy) = request(addr, "POST", "/v1/retrieve", &body).unwrap();
    assert_eq!(status, 200, "{healthy}");
    assert_eq!(
        outage, healthy,
        "retrieval must be byte-identical with and without the dead shard"
    );

    let (status, _) = request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn retrieve_near_deadline_budget_is_a_typed_504_and_the_server_survives() {
    // Retrieval is one uninterruptible pass (expansion + evidence +
    // rerank) enforced around by the request budget: a pass that
    // outlasts its near-zero deadline yields a typed `deadline_exceeded`
    // — never a hang, a 500, or a dead server. The heavy pass here is a
    // 10-hop expansion over a 60k-entity graph.
    let _quiet = faults::install(FaultPlan::new());
    const BIG: usize = 60_000;
    let n = BIG as u32;
    let triples: Vec<Triple> = (0..n)
        .flat_map(|i| {
            [
                Triple {
                    s: EntityId(i),
                    r: RelationId(i % 3),
                    o: EntityId((i + 1) % n),
                },
                Triple {
                    s: EntityId(i),
                    r: RelationId((i + 1) % 3),
                    o: EntityId((i + 7919) % n),
                },
            ]
        })
        .collect();
    let graph = KnowledgeGraph::from_triples(BIG, 3, triples, None);
    let mut registry = ModelRegistry::new(NameIndex::synthetic(BIG, 3));
    registry.register(Arc::new(
        ShardedReasoner::from_scorer(
            "TransE",
            TransE::new(BIG, RelationSpace::new(3).total(), 8, 11),
            BIG,
            RelationSpace::new(3),
            SHARDS,
        )
        .expect("shards"),
    ));
    registry.set_retriever(Arc::new(Retriever::new(Arc::new(graph))));
    let server = HttpServer::bind(
        ("127.0.0.1", 0),
        Arc::new(registry),
        HttpServerConfig::default(),
    )
    .expect("bind ephemeral port")
    .spawn();
    let addr = server.addr();

    // A small pass under a generous budget answers.
    let ok = RetrieveRequest::new(["e3".to_string()])
        .with_hops(1)
        .with_max_paths(3)
        .with_timeout_ms(30_000);
    let (status, body) = request(
        addr,
        "POST",
        "/v1/retrieve",
        &serde_json::to_string(&ok).unwrap(),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");

    // The heavy pass under a 1ms budget is a typed 504.
    let tight = RetrieveRequest::new(["e3".to_string()])
        .with_hops(10)
        .with_max_entities(2 * BIG)
        .with_max_paths(3)
        .with_timeout_ms(1);
    let (status, body) = request(
        addr,
        "POST",
        "/v1/retrieve",
        &serde_json::to_string(&tight).unwrap(),
    )
    .unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"deadline_exceeded\""), "{body}");
    assert!(body.contains("\"timeout_ms\""), "{body}");

    let m = metrics(addr);
    assert!(m.robustness.deadline_exceeded >= 1);
    let (status, _) = request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}
