//! ComplEx (Trouillon et al., 2016): complex-valued bilinear scoring that,
//! unlike DistMult, can model asymmetric relations.
//!
//! Embeddings are stored as `[real | imaginary]` halves of width `2*dim`.
//! Score: `Re(⟨s, r, ō⟩) = Σ sᵣrᵣoᵣ + sᵢrᵣoᵢ + sᵣrᵢoᵢ − sᵢrᵢoᵣ`.

use mmkgr_kg::{EntityId, RelationId, Triple, TripleSet};
use mmkgr_nn::{Adam, Ctx, Embedding, Params};
use mmkgr_tensor::init::seeded_rng;
use mmkgr_tensor::{Tape, Var};

use crate::negative::NegativeSampler;
use crate::scorer::TripleScorer;
use crate::trainer::{batch_indices, KgeTrainConfig};

pub struct ComplEx {
    pub params: Params,
    pub entities: Embedding,
    pub relations: Embedding,
    /// Complex dimensionality (table width is `2*dim`).
    pub dim: usize,
}

impl ComplEx {
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut params = Params::new();
        let mut rng = seeded_rng(seed);
        let entities = Embedding::new(&mut params, &mut rng, "complex.ent", num_entities, 2 * dim);
        let relations =
            Embedding::new(&mut params, &mut rng, "complex.rel", num_relations, 2 * dim);
        ComplEx {
            params,
            entities,
            relations,
            dim,
        }
    }

    fn batch_score(&self, ctx: &Ctx<'_>, triples: &[&Triple]) -> Var {
        let t = ctx.tape;
        let d = self.dim;
        let s_idx: Vec<usize> = triples.iter().map(|x| x.s.index()).collect();
        let r_idx: Vec<usize> = triples.iter().map(|x| x.r.index()).collect();
        let o_idx: Vec<usize> = triples.iter().map(|x| x.o.index()).collect();
        let s = self.entities.forward(ctx, &s_idx);
        let r = self.relations.forward(ctx, &r_idx);
        let o = self.entities.forward(ctx, &o_idx);
        let (sr, si) = (t.slice_cols(s, 0, d), t.slice_cols(s, d, 2 * d));
        let (rr, ri) = (t.slice_cols(r, 0, d), t.slice_cols(r, d, 2 * d));
        let (or, oi) = (t.slice_cols(o, 0, d), t.slice_cols(o, d, 2 * d));
        let t1 = t.mul(t.mul(sr, rr), or);
        let t2 = t.mul(t.mul(si, rr), oi);
        let t3 = t.mul(t.mul(sr, ri), oi);
        let t4 = t.mul(t.mul(si, ri), or);
        let sum = t.sub(t.add(t.add(t1, t2), t3), t4);
        t.sum_rows(sum)
    }

    pub fn train(
        &mut self,
        triples: &[Triple],
        known: &TripleSet,
        cfg: &KgeTrainConfig,
    ) -> Vec<f32> {
        let mut rng = seeded_rng(cfg.seed);
        let sampler = NegativeSampler::new(known, self.entities.count);
        let mut opt = Adam::new(cfg.lr);
        let mut trace = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in batch_indices(triples.len(), cfg.batch_size, &mut rng) {
                let pos: Vec<&Triple> = batch.iter().map(|&i| &triples[i]).collect();
                let negs: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
                let neg_refs: Vec<&Triple> = negs.iter().collect();
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, &self.params);
                let pos_s = self.batch_score(&ctx, &pos);
                let neg_s = self.batch_score(&ctx, &neg_refs);
                let gap = tape.sub(neg_s, pos_s);
                let shifted = tape.add_scalar(gap, cfg.margin);
                let hinge = tape.relu(shifted);
                let loss = tape.mean(hinge);
                epoch_loss += tape.scalar(loss);
                batches += 1;
                let grads = tape.backward(loss);
                ctx.into_leases().accumulate(&mut self.params, &grads);
                opt.step(&mut self.params);
                self.params.zero_grads();
            }
            trace.push(epoch_loss / batches.max(1) as f32);
        }
        trace
    }
}

impl TripleScorer for ComplEx {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let d = self.dim;
        let es = self.entities.row(&self.params, s.index());
        let er = self.relations.row(&self.params, r.index());
        let eo = self.entities.row(&self.params, o.index());
        let mut acc = 0.0f32;
        for i in 0..d {
            let (sr, si) = (es[i], es[d + i]);
            let (rr, ri) = (er[i], er[d + i]);
            let (or_, oi) = (eo[i], eo[d + i]);
            acc += sr * rr * or_ + si * rr * oi + sr * ri * oi - si * ri * or_;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn can_model_asymmetry() {
        // Train on (0, r, 1) only; after training score(0,r,1) ≫ score(1,r,0).
        let triples = vec![Triple::new(0, 0, 1)];
        let known = TripleSet::from_triples(&triples);
        let mut model = ComplEx::new(3, 1, 8, 0);
        model.train(&triples, &known, &KgeTrainConfig::quick().with_epochs(80));
        let fwd = model.score(EntityId(0), RelationId(0), EntityId(1));
        let bwd = model.score(EntityId(1), RelationId(0), EntityId(0));
        assert!(
            fwd > bwd,
            "ComplEx must break symmetry: fwd {fwd} !> bwd {bwd}"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 1, 2),
            Triple::new(2, 0, 3),
        ];
        let known = TripleSet::from_triples(&triples);
        let mut model = ComplEx::new(4, 2, 8, 1);
        let trace = model.train(&triples, &known, &KgeTrainConfig::quick().with_epochs(50));
        assert!(trace.last().unwrap() < &trace[0]);
    }
}
