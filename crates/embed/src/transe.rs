//! TransE (Bordes et al., 2013).
//!
//! Fills two roles in the reproduction: (a) the structural-feature
//! initializer MMKGR's feature extraction calls for ("structural features
//! … initialized … by using the TransE algorithm"), and (b) the base of the
//! single-hop baselines.

use mmkgr_kg::{EntityId, RelationId, Triple, TripleSet};
use mmkgr_nn::{loss::margin_ranking, Adam, Ctx, Embedding, Params};
use mmkgr_tensor::init::seeded_rng;
use mmkgr_tensor::{Matrix, Tape, Var};

use crate::negative::NegativeSampler;
use crate::scorer::TripleScorer;
use crate::trainer::{batch_indices, KgeTrainConfig};

pub struct TransE {
    pub params: Params,
    pub entities: Embedding,
    pub relations: Embedding,
    pub dim: usize,
}

impl TransE {
    /// `num_relations` must cover the full relation space (base + inverse +
    /// NO_OP) so downstream RL models can reuse the tables directly.
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut params = Params::new();
        let mut rng = seeded_rng(seed);
        let entities = Embedding::new(&mut params, &mut rng, "transe.ent", num_entities, dim);
        let relations = Embedding::new(&mut params, &mut rng, "transe.rel", num_relations, dim);
        let mut model = TransE {
            params,
            entities,
            relations,
            dim,
        };
        model.normalize_entities();
        model
    }

    /// Squared-L2 translation distances for a batch: `‖s + r − o‖²`, `B×1`.
    fn batch_distance(&self, ctx: &Ctx<'_>, triples: &[&Triple]) -> Var {
        let t = ctx.tape;
        let s_idx: Vec<usize> = triples.iter().map(|x| x.s.index()).collect();
        let r_idx: Vec<usize> = triples.iter().map(|x| x.r.index()).collect();
        let o_idx: Vec<usize> = triples.iter().map(|x| x.o.index()).collect();
        let s = self.entities.forward(ctx, &s_idx);
        let r = self.relations.forward(ctx, &r_idx);
        let o = self.entities.forward(ctx, &o_idx);
        let diff = t.sub(t.add(s, r), o);
        let sq = t.mul(diff, diff);
        t.sum_rows(sq)
    }

    /// Margin-ranking training with filtered uniform negatives.
    /// Returns the per-epoch mean loss trace.
    pub fn train(
        &mut self,
        triples: &[Triple],
        known: &TripleSet,
        cfg: &KgeTrainConfig,
    ) -> Vec<f32> {
        let mut rng = seeded_rng(cfg.seed);
        let sampler = NegativeSampler::new(known, self.entities.count);
        let mut opt = Adam::new(cfg.lr);
        let mut trace = Vec::with_capacity(cfg.epochs);
        for _epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in batch_indices(triples.len(), cfg.batch_size, &mut rng) {
                let pos: Vec<&Triple> = batch.iter().map(|&i| &triples[i]).collect();
                let negs: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
                let neg_refs: Vec<&Triple> = negs.iter().collect();

                let tape = Tape::new();
                let ctx = Ctx::new(&tape, &self.params);
                let pos_d = self.batch_distance(&ctx, &pos);
                let neg_d = self.batch_distance(&ctx, &neg_refs);
                let loss = margin_ranking(&tape, pos_d, neg_d, cfg.margin);
                epoch_loss += tape.scalar(loss);
                batches += 1;
                let grads = tape.backward(loss);
                ctx.into_leases().accumulate(&mut self.params, &grads);
                opt.step(&mut self.params);
                self.params.zero_grads();
            }
            self.normalize_entities();
            trace.push(epoch_loss / batches.max(1) as f32);
        }
        trace
    }

    /// Project entity embeddings back onto the unit sphere (the TransE
    /// norm constraint that keeps distances comparable).
    pub fn normalize_entities(&mut self) {
        self.params
            .value_mut(self.entities.table)
            .l2_normalize_rows();
    }

    /// The trained entity table (`N×d`) — MMKGR's structural init.
    pub fn entity_matrix(&self) -> &Matrix {
        self.params.value(self.entities.table)
    }

    /// The trained relation table (`R_total×d`).
    pub fn relation_matrix(&self) -> &Matrix {
        self.params.value(self.relations.table)
    }
}

impl TripleScorer for TransE {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let es = self.entities.row(&self.params, s.index());
        let er = self.relations.row(&self.params, r.index());
        let eo = self.entities.row(&self.params, o.index());
        let mut d = 0.0f32;
        for i in 0..self.dim {
            let v = es[i] + er[i] - eo[i];
            d += v * v;
        }
        -d
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        self.score_objects_range(s, r, 0, n, out);
    }

    fn score_objects_range(
        &self,
        s: EntityId,
        r: RelationId,
        lo: usize,
        hi: usize,
        out: &mut Vec<f32>,
    ) {
        crate::scorer::prepare_score_buffer(out, hi.saturating_sub(lo));
        let es = self.entities.row(&self.params, s.index());
        let er = self.relations.row(&self.params, r.index());
        let query: Vec<f32> = es.iter().zip(er).map(|(a, b)| a + b).collect();
        let table = self.params.value(self.entities.table);
        for o in lo..hi {
            let row = table.row(o);
            let mut d = 0.0f32;
            for i in 0..self.dim {
                let v = query[i] - row[i];
                d += v * v;
            }
            out.push(-d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-entity cycle the model must fit: 0 -r0-> 1 -r0-> 2 -r0-> 3.
    fn chain_triples() -> Vec<Triple> {
        vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 0, 3),
        ]
    }

    #[test]
    fn training_reduces_loss() {
        let triples = chain_triples();
        let known = TripleSet::from_triples(&triples);
        let mut model = TransE::new(4, 1, 8, 0);
        let trace = model.train(&triples, &known, &KgeTrainConfig::quick().with_epochs(40));
        assert!(
            trace.last().unwrap() < &trace[0],
            "loss should drop: {:?}",
            (trace.first(), trace.last())
        );
    }

    #[test]
    fn positives_outscore_random_negatives_after_training() {
        let triples = chain_triples();
        let known = TripleSet::from_triples(&triples);
        let mut model = TransE::new(4, 1, 16, 0);
        model.train(&triples, &known, &KgeTrainConfig::quick().with_epochs(80));
        let pos = model.score(EntityId(0), RelationId(0), EntityId(1));
        let neg = model.score(EntityId(0), RelationId(0), EntityId(3));
        assert!(pos > neg, "pos {pos} !> neg {neg}");
    }

    #[test]
    fn score_all_objects_matches_pointwise() {
        let model = TransE::new(5, 2, 8, 3);
        let mut out = Vec::new();
        model.score_all_objects(EntityId(1), RelationId(0), 5, &mut out);
        for (o, &v) in out.iter().enumerate() {
            let p = model.score(EntityId(1), RelationId(0), EntityId(o as u32));
            assert!((v - p).abs() < 1e-5);
        }
        // The shard primitive must be a bit-exact slice of the full pass.
        let mut range = Vec::new();
        model.score_objects_range(EntityId(1), RelationId(0), 2, 5, &mut range);
        assert_eq!(range, out[2..5]);
    }

    #[test]
    fn entities_are_unit_norm_after_init() {
        let model = TransE::new(10, 2, 8, 1);
        let table = model.entity_matrix();
        for r in 0..10 {
            let n: f32 = table.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }
}
