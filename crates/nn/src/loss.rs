//! Loss functions used across the MMKGR stack.

use mmkgr_tensor::{Tape, Var};

/// Mean cross-entropy over rows of `logits` against integer `targets`.
pub fn cross_entropy(tape: &Tape, logits: Var, targets: &[usize]) -> Var {
    let logp = tape.log_softmax_rows(logits);
    let picked = tape.pick_per_row(logp, targets);
    let s = tape.mean(picked);
    tape.neg(s)
}

/// Margin ranking loss `mean(max(0, margin + pos - neg))` — the TransE
/// objective shape, where `pos`/`neg` are *distances* (lower is better),
/// both `n×1`.
pub fn margin_ranking(tape: &Tape, pos: Var, neg: Var, margin: f32) -> Var {
    let d = tape.sub(pos, neg);
    let shifted = tape.add_scalar(d, margin);
    let hinge = tape.relu(shifted);
    tape.mean(hinge)
}

/// Binary cross-entropy of probabilities `p` against 0/1 `targets`
/// (both `n×1`), numerically guarded by an epsilon inside the logs.
pub fn bce(tape: &Tape, p: Var, targets: Var) -> Var {
    let eps = 1e-7;
    let log_p = tape.ln_eps(p, eps);
    let one_minus_p = tape.scale(tape.add_scalar(tape.neg(p), 1.0), 1.0);
    let log_1mp = tape.ln_eps(one_minus_p, eps);
    let one_minus_t = tape.add_scalar(tape.neg(targets), 1.0);
    let a = tape.mul(targets, log_p);
    let b = tape.mul(one_minus_t, log_1mp);
    let s = tape.add(a, b);
    let m = tape.mean(s);
    tape.neg(m)
}

/// Mean squared error between two equally-shaped values.
pub fn mse(tape: &Tape, a: Var, b: Var) -> Var {
    let d = tape.sub(a, b);
    let sq = tape.mul(d, d);
    tape.mean(sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_tensor::Matrix;

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let tape = Tape::new();
        let logits = tape.input(Matrix::from_vec(2, 3, vec![10., 0., 0., 0., 10., 0.]));
        let loss = cross_entropy(&tape, logits, &[0, 1]);
        assert!(tape.scalar(loss) < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_k() {
        let tape = Tape::new();
        let logits = tape.input(Matrix::zeros(1, 4));
        let loss = cross_entropy(&tape, logits, &[2]);
        assert!((tape.scalar(loss) - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn margin_ranking_zero_when_separated() {
        let tape = Tape::new();
        let pos = tape.input(Matrix::full(3, 1, 0.1));
        let neg = tape.input(Matrix::full(3, 1, 5.0));
        let loss = margin_ranking(&tape, pos, neg, 1.0);
        assert_eq!(tape.scalar(loss), 0.0);
    }

    #[test]
    fn margin_ranking_penalizes_violations() {
        let tape = Tape::new();
        let pos = tape.input(Matrix::full(1, 1, 2.0));
        let neg = tape.input(Matrix::full(1, 1, 1.0));
        let loss = margin_ranking(&tape, pos, neg, 1.0);
        // margin + pos - neg = 1 + 2 - 1 = 2
        assert!((tape.scalar(loss) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn bce_confident_correct_is_small() {
        let tape = Tape::new();
        let p = tape.input(Matrix::from_vec(2, 1, vec![0.999, 0.001]));
        let t = tape.input(Matrix::from_vec(2, 1, vec![1.0, 0.0]));
        let loss = bce(&tape, p, t);
        assert!(tape.scalar(loss) < 0.01);
    }

    #[test]
    fn bce_survives_extreme_probs() {
        let tape = Tape::new();
        let p = tape.input(Matrix::from_vec(2, 1, vec![1.0, 0.0]));
        let t = tape.input(Matrix::from_vec(2, 1, vec![0.0, 1.0]));
        let loss = bce(&tape, p, t);
        assert!(tape.scalar(loss).is_finite());
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let tape = Tape::new();
        let a = tape.input(Matrix::ones(2, 2));
        let b = tape.input(Matrix::ones(2, 2));
        let loss = mse(&tape, a, b);
        assert_eq!(tape.scalar(loss), 0.0);
    }
}
