//! Property-based invariants for the graph substrate.

use mmkgr_kg::{EntityId, KnowledgeGraph, RelationSpace, Triple};
use proptest::prelude::*;

fn arb_triples(entities: usize, relations: usize) -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(
        (0..entities as u32, 0..relations as u32, 0..entities as u32)
            .prop_map(|(s, r, o)| Triple::new(s, r, o)),
        1..60,
    )
}

proptest! {
    #[test]
    fn degree_sum_equals_edges(triples in arb_triples(12, 3)) {
        let g = KnowledgeGraph::from_triples(12, 3, triples.clone(), None);
        let degree_sum: usize = (0..12).map(|e| g.out_degree(EntityId(e))).sum();
        prop_assert_eq!(degree_sum, 2 * triples.len());
        prop_assert_eq!(g.num_edges(), 2 * triples.len());
    }

    #[test]
    fn every_forward_edge_has_inverse(triples in arb_triples(10, 4)) {
        let g = KnowledgeGraph::from_triples(10, 4, triples.clone(), None);
        let rs = g.relations();
        for t in &triples {
            prop_assert!(g.has_edge(t.s, t.r, t.o));
            prop_assert!(g.has_edge(t.o, rs.inverse(t.r), t.s));
        }
    }

    #[test]
    fn neighbors_are_sorted(triples in arb_triples(8, 3)) {
        let g = KnowledgeGraph::from_triples(8, 3, triples, None);
        for e in 0..8 {
            let bucket = g.neighbors(EntityId(e));
            for w in bucket.windows(2) {
                prop_assert!((w[0].relation, w[0].target) <= (w[1].relation, w[1].target));
            }
        }
    }

    #[test]
    fn truncation_never_exceeds_cap(triples in arb_triples(8, 3), cap in 1usize..6) {
        let g = KnowledgeGraph::from_triples(8, 3, triples, Some(cap));
        prop_assert!(g.max_out_degree() <= cap);
    }

    #[test]
    fn targets_subset_of_neighbors(triples in arb_triples(8, 3)) {
        let g = KnowledgeGraph::from_triples(8, 3, triples, None);
        for e in 0..8u32 {
            for r in 0..7u32 { // includes inverse range
                for tgt in g.targets(EntityId(e), mmkgr_kg::RelationId(r)) {
                    prop_assert!(g.has_edge(EntityId(e), mmkgr_kg::RelationId(r), tgt));
                }
            }
        }
    }

    #[test]
    fn inverse_relation_space_total(base in 1usize..50) {
        let rs = RelationSpace::new(base);
        prop_assert_eq!(rs.total(), 2 * base + 1);
        for r in 0..(2 * base) as u32 {
            let rel = mmkgr_kg::RelationId(r);
            prop_assert_eq!(rs.inverse(rs.inverse(rel)), rel);
            prop_assert_ne!(rs.inverse(rel), rel);
        }
    }

    /// Pin the CSR store against a naive edge-list adjacency: for every
    /// entity, the multiset of (relation, target) neighbors must be
    /// identical, and the forward/inverse views must partition it.
    #[test]
    fn csr_neighbor_sets_match_naive_adjacency(triples in arb_triples(12, 3)) {
        let g = KnowledgeGraph::from_triples(12, 3, triples.clone(), None);
        let rs = g.relations();
        // naive reference: per-entity sorted vec of (relation, target)
        let mut naive: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 12];
        for t in &triples {
            naive[t.s.index()].push((t.r.0, t.o.0));
            naive[t.o.index()].push((rs.inverse(t.r).0, t.s.0));
        }
        for bucket in &mut naive {
            bucket.sort_unstable();
        }
        for e in 0..12u32 {
            let got: Vec<(u32, u32)> = g
                .neighbors(EntityId(e))
                .iter()
                .map(|edge| (edge.relation.0, edge.target.0))
                .collect();
            prop_assert_eq!(&got, &naive[e as usize]);
            let fwd = g.forward_neighbors(EntityId(e));
            let inv = g.inverse_neighbors(EntityId(e));
            prop_assert_eq!(fwd.len() + inv.len(), got.len());
            prop_assert!(fwd.iter().all(|x| rs.is_base(x.relation)));
            prop_assert!(inv.iter().all(|x| rs.is_inverse(x.relation)));
        }
    }

    /// Snapshot round-trip preserves the CSR arrays bit-for-bit.
    #[test]
    fn snapshot_roundtrip_is_bitwise(triples in arb_triples(10, 3)) {
        let g = KnowledgeGraph::from_triples(10, 3, triples, None);
        let path = std::env::temp_dir().join(format!(
            "mmkgr_prop_{}_{:x}.mmkg",
            std::process::id(),
            g.num_edges() * 31 + g.triples().len()
        ));
        let mut w = mmkgr_kg::SnapshotWriter::create(&path).unwrap();
        w.add_graph(&g).unwrap();
        w.finish().unwrap();
        let snap = mmkgr_kg::Snapshot::open(&path).unwrap();
        let back = snap.graph().unwrap();
        prop_assert_eq!(back.store().offsets_slice(), g.store().offsets_slice());
        prop_assert_eq!(back.store().edges_slice(), g.store().edges_slice());
        prop_assert_eq!(back.triples(), g.triples());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hop_distance_symmetric_with_inverses(triples in arb_triples(10, 2)) {
        // Because every edge has an inverse, reachability is symmetric.
        let g = KnowledgeGraph::from_triples(10, 2, triples, None);
        for a in 0..5u32 {
            for b in 5..10u32 {
                let ab = mmkgr_kg::hop_distance(&g, EntityId(a), EntityId(b), 6);
                let ba = mmkgr_kg::hop_distance(&g, EntityId(b), EntityId(a), 6);
                prop_assert_eq!(ab.is_some(), ba.is_some());
            }
        }
    }
}
