//! HTTP serving throughput: the `"http"` section of `BENCH_serve.json`.
//!
//! Boots the real [`HttpServer`] (registry → protocol → `std::net`
//! stack) on an ephemeral port and drives it with closed-loop client
//! threads issuing one request per connection (the server is
//! `Connection: close`), so the numbers include connection setup, HTTP
//! parsing, JSON (de)serialization, and name resolution — the full
//! remote-serving overhead on top of the in-process engine numbers that
//! `bench_serve` records.
//!
//! Scenarios:
//!
//! - `healthz_rps` — protocol floor: accept + parse + tiny JSON body.
//! - `answer` at 1/2/4 client threads — `POST /v1/answer` over distinct
//!   queries (beam 8, T=3, cache off ⇒ every request runs the engine).
//! - `answer_cached_qps` — same route on a cache-enabled model, hot:
//!   isolates the wire overhead (the engine is out of the loop).
//! - `answer_batch_qps` — the whole query set as one
//!   `POST /v1/answer_batch`, fanned out on the server's worker pool.
//! - `retrieve` at 1/2/4 client threads — `POST /v1/retrieve` k-hop
//!   subgraph + ranked-path-context extraction (the `"retrieve"`
//!   section of `BENCH_serve.json`).
//! - mutation churn — a writer thread sustains single-triple
//!   insert/delete batches through `POST /v1/admin/mutate` (one WAL
//!   fsync per batch) while two query clients keep reading; records the
//!   apply p50/p99, the sustained batch rate, and the query p50/p99
//!   *under churn* (the `"mutation"` section). Epoch-versioned reads
//!   mean the readers never block on the writer — the query tail under
//!   churn should sit near the unchurned `answer` numbers.
//!
//! Usage: `cargo run --release -p mmkgr-bench --bin bench_http`
//! (run `bench_serve` first; this merges `"http"` and `"retrieve"` into
//! its `BENCH_serve.json` in the current directory, creating the file if
//! it is missing).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use mmkgr_core::prelude::*;
use mmkgr_core::serve::http::request;
use mmkgr_core::serve::{
    HttpServer, HttpServerConfig, ModelRegistry, NameIndex, NamedQuery, PolicyReasoner,
    ReplicaSource, ReplicationState, RunningServer, ServeConfig,
};
use mmkgr_datagen::{generate, GenConfig};
use serde::Serialize;

#[derive(Serialize)]
struct AnswerLoad {
    clients: usize,
    requests: usize,
    qps: f64,
}

#[derive(Serialize)]
struct HttpBench {
    dataset: String,
    machine: String,
    commit: String,
    conn_threads: usize,
    pool_workers: usize,
    beam: usize,
    steps: usize,
    healthz_rps: f64,
    answer: Vec<AnswerLoad>,
    answer_cached_qps: f64,
    answer_batch_qps: f64,
    /// Non-200 responses across every closed-loop scenario (load
    /// shedding is healthy behavior, so 503s are tallied separately).
    requests_total: usize,
    errors_total: usize,
    shed_total: usize,
    error_rate: f64,
    shed_rate: f64,
}

#[derive(Serialize)]
struct RetrieveBench {
    dataset: String,
    machine: String,
    commit: String,
    hops: usize,
    max_entities: usize,
    max_paths: usize,
    diversity: f64,
    retrieve: Vec<AnswerLoad>,
    requests_total: usize,
    errors_total: usize,
    shed_total: usize,
}

#[derive(Serialize)]
struct MutationBench {
    dataset: String,
    machine: String,
    commit: String,
    /// Single-op batches committed (one WAL fsync each).
    batches: usize,
    applied: u64,
    final_epoch: u64,
    /// Sustained mutation commit rate, fsync included.
    apply_per_s: f64,
    apply_p50_us: f64,
    apply_p99_us: f64,
    /// Concurrent `/v1/answer` load while the writer churns.
    query_clients: usize,
    query_qps_under_churn: f64,
    query_p50_us: f64,
    query_p99_us: f64,
    query_errors: usize,
    /// Concurrent writers in the group-commit A/B runs.
    group_writers: usize,
    /// Sustained batches/s with group commit disabled (one fsync per
    /// caller — the pre-group-commit write path).
    group_commit_off_batches_per_s: f64,
    /// Sustained batches/s with group commit on (concurrent callers
    /// share one fsync).
    group_commit_on_batches_per_s: f64,
}

#[derive(Serialize)]
struct ReplicationBench {
    dataset: String,
    machine: String,
    commit: String,
    /// Single-op batches committed on the primary during the lag run.
    churn_batches: usize,
    churn_batches_per_s: f64,
    /// Commit-to-follower-apply latency, sampled per frame (~0.5 ms
    /// polling resolution).
    lag_p50_ms: f64,
    lag_p99_ms: f64,
    lag_max_ms: f64,
    frames_shipped: u64,
    reconnects: u64,
    /// Closed-loop `/v1/answer` clients in the read-scaling runs.
    read_clients: usize,
    single_node_qps: f64,
    two_replica_qps: f64,
    read_speedup: f64,
}

/// Outcome of one closed-loop run: throughput plus the response mix.
struct LoopResult {
    qps: f64,
    ok: usize,
    shed: usize,
    errors: usize,
}

/// `p` in [0,1] over an unsorted sample (sorted in place).
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// Like [`boot`] but with a [`LiveGraphStore`] wired through the
/// reasoner, the retriever, and the registry — the `serve --live`
/// configuration, minus the snapshot file.
///
/// [`LiveGraphStore`]: mmkgr_core::serve::LiveGraphStore
fn boot_live(
    kg: &mmkgr_kg::MultiModalKG,
    wal: &std::path::Path,
    cache: usize,
    replication: Option<Arc<ReplicationState>>,
) -> (
    RunningServer,
    Arc<mmkgr_core::serve::LiveGraphStore>,
    Arc<ModelRegistry>,
) {
    let base = Arc::new(kg.graph.clone());
    let live = Arc::new(mmkgr_core::serve::LiveGraphStore::open(base, wal, 0).expect("wal opens"));
    let handle = live.handle();
    let model = MmkgrModel::new(kg, MmkgrConfig::quick(), None);
    let mut registry = ModelRegistry::new(NameIndex::synthetic(
        kg.num_entities(),
        kg.num_base_relations(),
    ));
    registry.register(Arc::new(
        PolicyReasoner::try_new_live(
            "MMKGR",
            model,
            handle.clone(),
            ServeConfig::default().with_cache(cache),
        )
        .expect("serve config"),
    ));
    registry.set_retriever(Arc::new(mmkgr_core::serve::Retriever::new_live(handle)));
    registry.set_live(Arc::clone(&live));
    if let Some(rep) = replication {
        registry.set_replication(rep);
    }
    let registry = Arc::new(registry);
    let server = HttpServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&registry),
        HttpServerConfig {
            conn_threads: 4,
            pool_workers: 2,
            ..HttpServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn();
    (server, live, registry)
}

fn boot(kg: &mmkgr_kg::MultiModalKG, cache: usize) -> RunningServer {
    let model = MmkgrModel::new(kg, MmkgrConfig::quick(), None);
    let mut registry = ModelRegistry::new(NameIndex::synthetic(
        kg.num_entities(),
        kg.num_base_relations(),
    ));
    registry.register(Arc::new(PolicyReasoner::new(
        "MMKGR",
        model,
        Arc::new(kg.graph.clone()),
        ServeConfig::default().with_cache(cache),
    )));
    registry.set_retriever(Arc::new(mmkgr_core::serve::Retriever::new(Arc::new(
        kg.graph.clone(),
    ))));
    HttpServer::bind(
        ("127.0.0.1", 0),
        Arc::new(registry),
        HttpServerConfig {
            conn_threads: 4,
            pool_workers: 2,
            ..HttpServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
}

/// Fire `per_client` requests from each of `clients` threads, round-robin
/// over `bodies` (one connection per request), and return aggregate q/s
/// plus the ok/shed/error response mix. Benchmarks keep running through
/// non-200s — under deliberate overload a 503 is the server working as
/// designed, and the rates land in `BENCH_serve.json`.
fn closed_loop(
    addr: SocketAddr,
    method: &'static str,
    path: &'static str,
    bodies: Arc<Vec<String>>,
    clients: usize,
    per_client: usize,
) -> LoopResult {
    closed_loop_multi(&[addr], method, path, bodies, clients, per_client)
}

/// [`closed_loop`] over several replicas: client `c` pins itself to
/// `addrs[c % addrs.len()]`, so a 2-address run splits the closed-loop
/// load evenly across a primary/follower pair.
fn closed_loop_multi(
    addrs: &[SocketAddr],
    method: &'static str,
    path: &'static str,
    bodies: Arc<Vec<String>>,
    clients: usize,
    per_client: usize,
) -> LoopResult {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            let addr = addrs[c % addrs.len()];
            std::thread::spawn(move || {
                let (mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize);
                for i in 0..per_client {
                    let body = &bodies[(c + i * clients) % bodies.len()];
                    let (status, _resp) =
                        request(addr, method, path, body).expect("request succeeds");
                    match status {
                        200 => ok += 1,
                        503 => shed += 1,
                        _ => errors += 1,
                    }
                }
                (ok, shed, errors)
            })
        })
        .collect();
    let (mut ok, mut shed, mut errors) = (0, 0, 0);
    for h in handles {
        let (o, s, e) = h.join().expect("client thread");
        ok += o;
        shed += s;
        errors += e;
    }
    LoopResult {
        qps: (clients * per_client) as f64 / start.elapsed().as_secs_f64(),
        ok,
        shed,
        errors,
    }
}

fn main() {
    let kg = generate(&GenConfig::tiny());
    let queries: Vec<NamedQuery> = kg
        .split
        .test
        .iter()
        .chain(kg.split.valid.iter())
        .map(|t| {
            NamedQuery::new(format!("e{}", t.s.0), format!("r{}", t.r.0))
                .with_top_k(5)
                .with_beam(8)
                .with_steps(3)
        })
        .collect();
    let bodies: Arc<Vec<String>> = Arc::new(
        queries
            .iter()
            .map(|q| {
                format!(
                    r#"{{"query": {}}}"#,
                    serde_json::to_string(q).expect("query serializes")
                )
            })
            .collect(),
    );
    let empty = Arc::new(vec![String::new()]);

    println!("HTTP serving bench (tiny dataset, untrained quick model)");
    let server = boot(&kg, 0);
    let addr = server.addr();

    let (mut requests_total, mut shed_total, mut errors_total) = (0usize, 0usize, 0usize);
    let mut tally = |r: LoopResult| -> f64 {
        requests_total += r.ok + r.shed + r.errors;
        shed_total += r.shed;
        errors_total += r.errors;
        r.qps
    };

    // Warm: listener threads, beam engines, client path.
    closed_loop(addr, "POST", "/v1/answer", Arc::clone(&bodies), 2, 50);
    let healthz_rps = tally(closed_loop(
        addr,
        "GET",
        "/healthz",
        Arc::clone(&empty),
        4,
        400,
    ));
    println!("  GET /healthz: {healthz_rps:.0} req/s (4 clients)");

    let mut answer = Vec::new();
    for clients in [1, 2, 4] {
        let per_client = 600 / clients;
        let qps = tally(closed_loop(
            addr,
            "POST",
            "/v1/answer",
            Arc::clone(&bodies),
            clients,
            per_client,
        ));
        println!("  POST /v1/answer: {qps:.0} q/s ({clients} client(s), cache off)");
        answer.push(AnswerLoad {
            clients,
            requests: clients * per_client,
            qps,
        });
    }

    // One big batch over the worker pool.
    let batch_body = format!(
        r#"{{"queries": [{}]}}"#,
        queries
            .iter()
            .map(|q| serde_json::to_string(q).expect("query serializes"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let (status, _) = request(addr, "POST", "/v1/answer_batch", &batch_body).unwrap();
    assert_eq!(status, 200);
    let t = Instant::now();
    let rounds = 20;
    for _ in 0..rounds {
        let (status, _) = request(addr, "POST", "/v1/answer_batch", &batch_body).unwrap();
        assert_eq!(status, 200);
    }
    let answer_batch_qps = (rounds * queries.len()) as f64 / t.elapsed().as_secs_f64();
    println!(
        "  POST /v1/answer_batch: {answer_batch_qps:.0} q/s ({} queries/call)",
        queries.len()
    );

    // KG-RAG retrieval: 2-hop subgraph + MMR-ranked path contexts per
    // request, seeded round-robin over the eval queries. Tallied into
    // its own section so retrieval load doesn't skew the answer mix.
    let (hops, max_entities, max_paths, diversity) = (2usize, 64usize, 8usize, 0.25f64);
    let retrieve_bodies: Arc<Vec<String>> = Arc::new(
        kg.split
            .test
            .iter()
            .map(|t| {
                format!(
                    r#"{{"seeds": ["e{}"], "relation": "r{}", "hops": {hops}, "max_entities": {max_entities}, "max_paths": {max_paths}, "diversity": {diversity}}}"#,
                    t.s.0, t.r.0
                )
            })
            .collect(),
    );
    let (mut r_requests, mut r_shed, mut r_errors) = (0usize, 0usize, 0usize);
    let mut retrieve = Vec::new();
    for clients in [1, 2, 4] {
        let per_client = 400 / clients;
        let r = closed_loop(
            addr,
            "POST",
            "/v1/retrieve",
            Arc::clone(&retrieve_bodies),
            clients,
            per_client,
        );
        r_requests += r.ok + r.shed + r.errors;
        r_shed += r.shed;
        r_errors += r.errors;
        println!(
            "  POST /v1/retrieve: {:.0} q/s ({clients} client(s))",
            r.qps
        );
        retrieve.push(AnswerLoad {
            clients,
            requests: clients * per_client,
            qps: r.qps,
        });
    }
    server.shutdown();

    // Cached serving: every request after the warm pass is a frontier
    // cache hit — what remains is pure wire + resolution overhead.
    let server = boot(&kg, 4096);
    let addr = server.addr();
    closed_loop(
        addr,
        "POST",
        "/v1/answer",
        Arc::clone(&bodies),
        2,
        bodies.len(),
    );
    let answer_cached_qps = tally(closed_loop(
        addr,
        "POST",
        "/v1/answer",
        Arc::clone(&bodies),
        4,
        300,
    ));
    println!("  POST /v1/answer: {answer_cached_qps:.0} q/s (4 clients, cache hot)");
    server.shutdown();

    // Mutation churn: one writer committing single-op batches (WAL
    // fsync each) flat-out, two query clients reading throughout.
    let wal = std::env::temp_dir().join(format!("mmkgr_bench_http_{}.wal", std::process::id()));
    std::fs::remove_file(&wal).ok();
    let (server, live, _registry) = boot_live(&kg, &wal, 1024, None);
    let addr = server.addr();
    closed_loop(addr, "POST", "/v1/answer", Arc::clone(&bodies), 2, 50);

    let n = kg.num_entities();
    let batches = 300usize;
    let query_clients = 2usize;
    // Batch 2k inserts a churn triple, batch 2k+1 deletes it again, so
    // the graph stays bounded while every batch does real work.
    let churn_triple = move |i: usize| (i % n, i % 3, (i * 7 + 13) % n);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churn_started = Instant::now();
    let writer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut lat_us = Vec::with_capacity(batches);
            for i in 0..batches {
                let (key, body) = if i % 2 == 0 {
                    (i, "insert")
                } else {
                    (i - 1, "delete")
                };
                let (s, r, o) = churn_triple(key);
                let body = format!(r#"{{"{body}": [{{"s": "e{s}", "r": "r{r}", "o": "e{o}"}}]}}"#);
                let t = Instant::now();
                let (status, resp) =
                    request(addr, "POST", "/v1/admin/mutate", &body).expect("mutate request");
                lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                assert_eq!(status, 200, "{resp}");
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
            lat_us
        })
    };
    let readers: Vec<_> = (0..query_clients)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut lat_us = Vec::new();
                let mut errors = 0usize;
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let body = &bodies[(c + i * query_clients) % bodies.len()];
                    i += 1;
                    let t = Instant::now();
                    let (status, _) =
                        request(addr, "POST", "/v1/answer", body).expect("answer request");
                    lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                    if status != 200 {
                        errors += 1;
                    }
                }
                (lat_us, errors)
            })
        })
        .collect();
    let mut apply_lat = writer.join().expect("writer thread");
    let churn_elapsed = churn_started.elapsed().as_secs_f64();
    let mut query_lat = Vec::new();
    let mut query_errors = 0usize;
    for r in readers {
        let (lat, errs) = r.join().expect("reader thread");
        query_lat.extend(lat);
        query_errors += errs;
    }
    // Group-commit A/B: the same single-op churn from concurrent
    // writers, once with every caller paying its own fsync (the
    // pre-group-commit write path) and once with concurrent callers
    // sharing one (the default).
    let group_writers = 4usize;
    let per_writer = 150usize;
    let group_run = |on: bool, round: usize| -> f64 {
        live.set_group_commit(on);
        let t = Instant::now();
        let handles: Vec<_> = (0..group_writers)
            .map(|w| {
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        let key = (round * group_writers + w) * per_writer + i;
                        let (s, r, o) = churn_triple(key);
                        let op = if i % 2 == 0 { "insert" } else { "delete" };
                        let body =
                            format!(r#"{{"{op}": [{{"s": "e{s}", "r": "r{r}", "o": "e{o}"}}]}}"#);
                        let (status, resp) =
                            request(addr, "POST", "/v1/admin/mutate", &body).expect("mutate");
                        assert_eq!(status, 200, "{resp}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("group writer");
        }
        (group_writers * per_writer) as f64 / t.elapsed().as_secs_f64()
    };
    let group_commit_off_batches_per_s = group_run(false, 1);
    let group_commit_on_batches_per_s = group_run(true, 2);
    println!(
        "  group commit ({group_writers} writers): off {group_commit_off_batches_per_s:.0} \
         batches/s -> on {group_commit_on_batches_per_s:.0} batches/s"
    );

    let m = live.metrics();
    let mutation = MutationBench {
        dataset: "tiny".into(),
        machine: String::new(), // stamped below
        commit: String::new(),
        batches,
        applied: m.applied,
        final_epoch: m.epoch,
        apply_per_s: batches as f64 / churn_elapsed,
        apply_p50_us: percentile(&mut apply_lat, 0.50),
        apply_p99_us: percentile(&mut apply_lat, 0.99),
        query_clients,
        query_qps_under_churn: query_lat.len() as f64 / churn_elapsed,
        query_p50_us: percentile(&mut query_lat, 0.50),
        query_p99_us: percentile(&mut query_lat, 0.99),
        query_errors,
        group_writers,
        group_commit_off_batches_per_s,
        group_commit_on_batches_per_s,
    };
    println!(
        "  POST /v1/admin/mutate: {:.0} batches/s (apply p50 {:.0}us p99 {:.0}us); \
         queries under churn: {:.0} q/s (p50 {:.0}us p99 {:.0}us, {} errors)",
        mutation.apply_per_s,
        mutation.apply_p50_us,
        mutation.apply_p99_us,
        mutation.query_qps_under_churn,
        mutation.query_p50_us,
        mutation.query_p99_us,
        query_errors,
    );
    server.shutdown();
    std::fs::remove_file(&wal).ok();

    // WAL-shipping replication: a primary and a follower in one
    // process, the follower tailing committed frames over the real
    // HTTP surface. Measures read scaling across the pair (closed-loop
    // clients pinned per replica) and commit-ack → follower-apply lag
    // under flat-out single-op churn (~0.5 ms sampling resolution).
    let wal_p = std::env::temp_dir().join(format!("mmkgr_bench_repl_{}_p.wal", std::process::id()));
    let wal_f = std::env::temp_dir().join(format!("mmkgr_bench_repl_{}_f.wal", std::process::id()));
    std::fs::remove_file(&wal_p).ok();
    std::fs::remove_file(&wal_f).ok();
    let rep_p = Arc::new(ReplicationState::primary(ReplicaSource {
        snapshot: wal_p.with_extension("mmkg"), // tail-only: never fetched
        wal: wal_p.clone(),
    }));
    let (primary, live_p, _reg_p) = boot_live(&kg, &wal_p, 1024, Some(Arc::clone(&rep_p)));
    let addr_p = primary.addr();
    let rep_f = Arc::new(ReplicationState::follower(
        addr_p.to_string(),
        ReplicaSource {
            snapshot: wal_f.with_extension("mmkg"),
            wal: wal_f.clone(),
        },
    ));
    let (follower, live_f, reg_f) = boot_live(&kg, &wal_f, 1024, Some(Arc::clone(&rep_f)));
    let addr_f = follower.addr();
    {
        let reg = Arc::clone(&reg_f);
        let rep = Arc::clone(&rep_f);
        std::thread::spawn(move || mmkgr_core::serve::replication::run_tailer(reg, rep));
    }

    // Read scaling on a quiet pair: the same closed-loop client count
    // against the primary alone, then split across both replicas.
    closed_loop(addr_p, "POST", "/v1/answer", Arc::clone(&bodies), 2, 50);
    closed_loop(addr_f, "POST", "/v1/answer", Arc::clone(&bodies), 2, 50);
    let read_clients = 4usize;
    let single_node_qps = closed_loop(
        addr_p,
        "POST",
        "/v1/answer",
        Arc::clone(&bodies),
        read_clients,
        150,
    )
    .qps;
    let two_replica_qps = closed_loop_multi(
        &[addr_p, addr_f],
        "POST",
        "/v1/answer",
        Arc::clone(&bodies),
        read_clients,
        150,
    )
    .qps;
    println!(
        "  read scaling ({read_clients} clients): single {single_node_qps:.0} q/s -> \
         2 replicas {two_replica_qps:.0} q/s ({:.2}x)",
        two_replica_qps / single_node_qps.max(1e-9)
    );

    // Lag under churn: commit times recorded at mutate-ack, follower
    // applies observed by polling its committed watermark.
    let churn_batches = 600usize;
    let sampler = {
        let live_f = Arc::clone(&live_f);
        std::thread::spawn(move || {
            let mut seen = 0u64;
            let mut transitions: Vec<(u64, Instant)> = Vec::new();
            let deadline = Instant::now() + std::time::Duration::from_secs(120);
            while seen < churn_batches as u64 && Instant::now() < deadline {
                let f = live_f.committed_seq();
                if f > seen {
                    transitions.push((f, Instant::now()));
                    seen = f;
                }
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            transitions
        })
    };
    let mut commit_times = Vec::with_capacity(churn_batches);
    let repl_churn_started = Instant::now();
    for i in 0..churn_batches {
        let (key, op) = if i % 2 == 0 {
            (i, "insert")
        } else {
            (i - 1, "delete")
        };
        let (s, r, o) = churn_triple(key);
        let body = format!(r#"{{"{op}": [{{"s": "e{s}", "r": "r{r}", "o": "e{o}"}}]}}"#);
        let (status, resp) = request(addr_p, "POST", "/v1/admin/mutate", &body).expect("mutate");
        assert_eq!(status, 200, "{resp}");
        commit_times.push(Instant::now());
    }
    let repl_churn_elapsed = repl_churn_started.elapsed().as_secs_f64();
    assert_eq!(live_p.committed_seq(), churn_batches as u64);
    let transitions = sampler.join().expect("lag sampler");
    let mut lag_ms = Vec::with_capacity(churn_batches);
    let mut prev = 0u64;
    for (f, observed) in transitions {
        for s in prev..f {
            if let Some(committed) = commit_times.get(s as usize) {
                lag_ms.push(observed.saturating_duration_since(*committed).as_secs_f64() * 1e3);
            }
        }
        prev = f;
    }
    let replication = ReplicationBench {
        dataset: "tiny".into(),
        machine: String::new(), // stamped below
        commit: String::new(),
        churn_batches,
        churn_batches_per_s: churn_batches as f64 / repl_churn_elapsed,
        lag_p50_ms: percentile(&mut lag_ms, 0.50),
        lag_p99_ms: percentile(&mut lag_ms, 0.99),
        lag_max_ms: lag_ms.iter().copied().fold(0.0, f64::max),
        frames_shipped: rep_p.metrics().frames_shipped,
        reconnects: rep_f.metrics().reconnects,
        read_clients,
        single_node_qps,
        two_replica_qps,
        read_speedup: two_replica_qps / single_node_qps.max(1e-9),
    };
    println!(
        "  replication: {:.0} batches/s churn, follower lag p50 {:.2}ms p99 {:.2}ms \
         (max {:.2}ms), {} frames shipped",
        replication.churn_batches_per_s,
        replication.lag_p50_ms,
        replication.lag_p99_ms,
        replication.lag_max_ms,
        replication.frames_shipped,
    );
    rep_f.promote(); // unblocks the tailer loop so the process can exit
    primary.shutdown();
    follower.shutdown();
    std::fs::remove_file(&wal_p).ok();
    std::fs::remove_file(&wal_f).ok();

    let stamp = mmkgr_bench::RunStamp::capture();
    let http = HttpBench {
        dataset: "tiny".into(),
        machine: stamp.machine,
        commit: stamp.commit,
        conn_threads: 4,
        pool_workers: 2,
        beam: 8,
        steps: 3,
        healthz_rps,
        answer,
        answer_cached_qps,
        answer_batch_qps,
        requests_total,
        errors_total,
        shed_total,
        error_rate: errors_total as f64 / requests_total.max(1) as f64,
        shed_rate: shed_total as f64 / requests_total.max(1) as f64,
    };
    println!("  response mix: {requests_total} requests, {errors_total} errors, {shed_total} shed");

    let retrieve_section = RetrieveBench {
        dataset: "tiny".into(),
        machine: http.machine.clone(),
        commit: http.commit.clone(),
        hops,
        max_entities,
        max_paths,
        diversity,
        retrieve,
        requests_total: r_requests,
        errors_total: r_errors,
        shed_total: r_shed,
    };

    let mutation = MutationBench {
        machine: http.machine.clone(),
        commit: http.commit.clone(),
        ..mutation
    };

    let replication = ReplicationBench {
        machine: http.machine.clone(),
        commit: http.commit.clone(),
        ..replication
    };

    mmkgr_bench::merge_bench_section("BENCH_serve.json", "http", http.serialize_value());
    mmkgr_bench::merge_bench_section(
        "BENCH_serve.json",
        "retrieve",
        retrieve_section.serialize_value(),
    );
    mmkgr_bench::merge_bench_section("BENCH_serve.json", "mutation", mutation.serialize_value());
    mmkgr_bench::merge_bench_section(
        "BENCH_serve.json",
        "replication",
        replication.serialize_value(),
    );
}
