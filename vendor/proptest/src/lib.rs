//! Offline stand-in for `proptest`.
//!
//! Runs each property against `ProptestConfig::cases` random inputs drawn
//! from the strategy expressions. No shrinking: a failing case panics with
//! the normal assert message (the inputs are deterministic per test name +
//! case index, so failures reproduce exactly). Covers the strategy surface
//! this workspace uses: numeric ranges, tuples, `prop_map`,
//! `prop_flat_map`, `collection::vec`, `any::<usize>()`, `any::<bool>()`,
//! and `Just`.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod strategy;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic RNG for one property case, derived from the test name and
/// case index so failures reproduce without a persistence file.
pub fn case_rng(test_name: &str, case: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    rand::rngs::StdRng::seed_from_u64(h.finish())
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::config::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )*
                $body
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_strategy_respects_len(xs in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn flat_map_dependent_sizes(m in (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| {
            crate::collection::vec(0i32..10, r * c).prop_map(move |v| (r, c, v))
        })) {
            let (r, c, v) = m;
            prop_assert_eq!(v.len(), r * c);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_controls_cases(x in 0usize..1000) {
            let _ = x;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = 0usize..1_000_000;
        let a = Strategy::generate(&s, &mut crate::case_rng("t", 3));
        let b = Strategy::generate(&s, &mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }
}
