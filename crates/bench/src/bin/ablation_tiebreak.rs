//! Deviation ablation 4 — tie-break policy in filtered ranking.
//!
//! The crate ranks tied candidates at their expected position; optimistic
//! tie-ranking (gold wins every tie) is a known KGE evaluation bug that
//! hands degenerate scorers inflated metrics. This binary quantifies the
//! gap on two tie-heavy scorers: a constant scorer (the worst case — every
//! candidate ties) and NeuralLP (whose noisy-or confidences give all
//! rule-unreachable candidates an identical zero score).
//!
//! Usage: `cargo run --release -p mmkgr-bench --bin ablation_tiebreak [-- --scale quick|standard|full]`

use mmkgr_embed::TripleScorer;
use mmkgr_eval::{
    filtered_rank_with, pct, save_json, Dataset, Harness, HarnessConfig, RankAccum, ScaleChoice,
    Table, TieBreak,
};
use mmkgr_kg::{EntityId, RelationId};

/// The degenerate scorer: everything is equally plausible.
struct Constant;
impl TripleScorer for Constant {
    fn score(&self, _: EntityId, _: RelationId, _: EntityId) -> f32 {
        0.5
    }
}

fn eval_with_ties(scorer: &impl TripleScorer, h: &Harness, tie: TieBreak) -> (f64, f64) {
    let n = h.kg.num_entities();
    let mut scores = Vec::new();
    let mut accum = RankAccum::default();
    for t in &h.eval_triples {
        scorer.score_all_objects(t.s, t.r, n, &mut scores);
        let filtered: Vec<bool> = (0..n)
            .map(|o| {
                let o = EntityId(o as u32);
                o != t.o && h.known.contains(t.s, t.r, o)
            })
            .collect();
        accum.push(filtered_rank_with(&scores, t.o.index(), &filtered, tie));
    }
    (accum.mrr(), accum.hits(1))
}

fn main() {
    let scale = ScaleChoice::from_args();
    let h = Harness::new(HarnessConfig::new(Dataset::Wn9ImgTxt, scale));
    println!("{} ({} eval triples)", h.kg.stats(), h.eval_triples.len());
    let neurallp = h.train_neurallp();

    let mut table = Table::new(
        "Tie-break policy vs measured quality (tail queries)",
        &["Scorer", "Policy", "MRR", "Hits@1"],
    );
    let mut dump = Vec::new();
    for (name, scorer) in [
        ("Constant", &Constant as &dyn TripleScorer),
        ("NeuralLP", &neurallp as &dyn TripleScorer),
    ] {
        for tie in [
            TieBreak::Optimistic,
            TieBreak::Expected,
            TieBreak::Pessimistic,
        ] {
            let (mrr, hits1) = eval_with_ties(&scorer, &h, tie);
            table.push_row(vec![
                name.to_string(),
                format!("{tie:?}"),
                pct(mrr),
                pct(hits1),
            ]);
            dump.push((name.to_string(), format!("{tie:?}"), mrr, hits1));
        }
    }
    table.print();
    let const_opt = dump
        .iter()
        .find(|d| d.0 == "Constant" && d.1 == "Optimistic")
        .unwrap();
    println!(
        "inflation check: a constant scorer gets Hits@1 {} under optimistic ties — \
         the expected-rank protocol (DESIGN.md deviation 4) reports {} instead",
        pct(const_opt.3),
        pct(dump
            .iter()
            .find(|d| d.0 == "Constant" && d.1 == "Expected")
            .unwrap()
            .3),
    );
    save_json("ablation_tiebreak", &dump);
}
