//! End-to-end tests for the KG-RAG retrieval subsystem:
//!
//! - **Parity**: `POST /v1/retrieve` over real HTTP returns bytes
//!   identical to the in-process registry pipeline, for both model
//!   families (policy AND KGE), with a non-empty subgraph and at least
//!   one ranked reasoning-path context each.
//! - **Determinism**: repeating the same request yields the same bytes.
//! - **Ingestion**: `mmkgr snapshot --from-tsv` writes a snapshot whose
//!   booted registry serves retrieval by the TSV's real entity names.

use std::sync::Arc;

use mmkgr::core::serve::http::request;
use mmkgr::core::serve::protocol::{ApiResponse, RetrieveResponse};
use mmkgr::core::serve::{HttpServer, HttpServerConfig, RetrieveRequest, ServeConfig};
use mmkgr::eval::load_registry_snapshot;
use mmkgr::prelude::*;

fn quick_harness() -> Harness {
    Harness::new({
        let mut c = HarnessConfig::new(Dataset::Tiny, ScaleChoice::Quick);
        c.rl_epochs = 2;
        c.kge_epochs = 2;
        c.max_eval = 10;
        c
    })
}

#[test]
fn http_retrieve_is_byte_identical_to_in_process_for_both_families() {
    let h = quick_harness();
    let registry = Arc::new(build_registry(
        &h,
        &[ModelChoice::Mmkgr(Variant::Full), ModelChoice::ConvE],
        ServeConfig {
            beam_width: 8,
            max_steps: 3,
            ..ServeConfig::default()
        },
    ));
    let server = HttpServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&registry),
        HttpServerConfig::default(),
    )
    .expect("bind")
    .spawn();
    let addr = server.addr();

    let t = h.eval_triples[0];
    let mut subgraph_bodies = Vec::new();
    for model in ["MMKGR", "ConvE"] {
        let req = RetrieveRequest::new([format!("e{}", t.s.0)])
            .with_model(model)
            .with_relation(format!("r{}", t.r.0))
            .with_hops(2)
            .with_max_paths(6)
            .with_diversity(0.3);
        let body = serde_json::to_string(&req).unwrap();

        let (status, resp) = request(addr, "POST", "/v1/retrieve", &body).unwrap();
        assert_eq!(status, 200, "{model}: {resp}");

        // Byte-for-byte parity with the in-process pipeline.
        let direct = registry.retrieve(&req).unwrap();
        let direct_body = ApiResponse::Retrieve(direct).body();
        assert_eq!(resp, direct_body, "{model}: HTTP body == in-process body");

        // Determinism: same request, same bytes.
        let (_, again) = request(addr, "POST", "/v1/retrieve", &body).unwrap();
        assert_eq!(resp, again, "{model}: retrieval is deterministic");

        let wire: RetrieveResponse = serde_json::from_str(&resp).unwrap();
        assert_eq!(wire.model, model);
        assert!(
            !wire.subgraph.entities.is_empty(),
            "{model}: non-empty subgraph"
        );
        assert!(
            !wire.subgraph.triples.is_empty(),
            "{model}: subgraph carries induced triples"
        );
        assert!(
            !wire.paths.is_empty(),
            "{model}: at least one ranked path context"
        );
        assert!(wire.few_shot.is_some(), "{model}: few-shot tag present");
        if model == "ConvE" {
            // Scorers have no beam evidence; contexts come from the
            // topology fallback, scored by negated hop count.
            for p in &wire.paths {
                assert!(
                    (p.score + p.hops as f32).abs() < 1e-6,
                    "{model}: fallback path score is -hops: {p:?}"
                );
            }
        }
        subgraph_bodies.push(serde_json::to_string(&wire.subgraph).unwrap());
    }
    // The subgraph is a property of the graph, not of the model family.
    assert_eq!(
        subgraph_bodies[0], subgraph_bodies[1],
        "both families extract the same subgraph"
    );

    // Validation errors arrive typed over the wire.
    let (status, resp) = request(
        addr,
        "POST",
        "/v1/retrieve",
        r#"{"seeds": ["e0"], "diversity": 7.5}"#,
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(resp.contains("invalid_retrieve_params"), "{resp}");

    server.shutdown();
}

#[test]
fn snapshot_from_tsv_serves_retrieval_by_real_names() {
    use std::process::Command;

    let dir = std::env::temp_dir().join(format!("mmkgr_tsv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tsv = dir.join("movies.tsv");
    // 10 people in a ring of `knows` plus `likes` edges into two hubs —
    // enough triples (30) that the deterministic split reserves test
    // rows, and every entity stays reachable from `p0`.
    let mut lines = String::new();
    for i in 0..10 {
        lines.push_str(&format!("p{i}\tknows\tp{}\n", (i + 1) % 10));
        lines.push_str(&format!("p{i}\tlikes\thub{}\n", i % 2));
        lines.push_str(&format!("hub{}\tfeatures\tp{i}\n", (i + 1) % 2));
    }
    std::fs::write(&tsv, lines).unwrap();

    let snap = dir.join("movies.mmkg");
    let out = Command::new(env!("CARGO_BIN_EXE_mmkgr"))
        .args([
            "snapshot",
            "--out",
            snap.to_str().unwrap(),
            "--from-tsv",
            tsv.to_str().unwrap(),
            "--models",
            "TransE",
            "--kge-epochs",
            "1",
        ])
        .output()
        .expect("mmkgr snapshot runs");
    assert!(
        out.status.success(),
        "snapshot --from-tsv failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let loaded = load_registry_snapshot(&snap, None, 1).expect("snapshot boots");
    let resp = loaded
        .registry
        .retrieve(
            &RetrieveRequest::new(["p0"])
                .with_relation("knows")
                .with_hops(2)
                .with_max_paths(4),
        )
        .expect("retrieve by TSV names");
    assert!(resp.subgraph.entities.iter().any(|e| e.entity == "p0"));
    assert!(
        resp.subgraph
            .entities
            .iter()
            .all(|e| e.entity.starts_with('p') || e.entity.starts_with("hub")),
        "entities come back under their TSV names: {:?}",
        resp.subgraph.entities
    );
    assert!(!resp.paths.is_empty());
    assert!(
        resp.paths.iter().all(|p| p.source == "p0"),
        "every context is anchored at the seed"
    );

    // Unknown names are typed errors, not synthetic fallbacks.
    let err = loaded
        .registry
        .retrieve(&RetrieveRequest::new(["e0"]))
        .unwrap_err();
    assert_eq!(err.code(), "unknown_entity");

    std::fs::remove_dir_all(&dir).ok();
}
