//! CSR-backed knowledge-graph adjacency.
//!
//! The graph stores each training triple twice: once as `(s, r, o)` and once
//! as `(o, inverse(r), s)`, so RL walkers can traverse edges both ways — the
//! standard MINERVA-style construction the paper builds on.

use serde::{Deserialize, Serialize};

use crate::ids::{EntityId, RelationId, RelationSpace};
use crate::store::CsrStore;
use crate::triple::{Triple, TripleSet};

/// One outgoing edge `(relation, target)`.
///
/// `repr(C)`: two `u32`s, no padding — edge arrays are stored as raw byte
/// sections in `.mmkg` snapshots and viewed back zero-copy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(C)]
pub struct Edge {
    pub relation: RelationId,
    pub target: EntityId,
}

/// Immutable CSR adjacency over a set of triples (plus inverses).
///
/// Backed by a [`CsrStore`] (see [`crate::store`]), whose flat arrays may
/// be heap-owned or zero-copy views into a memory-mapped snapshot; either
/// way the accessors below hand out the same `&[Edge]` slices.
#[derive(Clone, Debug)]
pub struct KnowledgeGraph {
    store: CsrStore,
}

// Serializes exactly as its backing store (same field set the pre-store
// struct had), so the wire format is unchanged by the storage refactor.
impl Serialize for KnowledgeGraph {
    fn serialize_value(&self) -> serde::Value {
        self.store.serialize_value()
    }
}

impl Deserialize for KnowledgeGraph {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        CsrStore::deserialize_value(v).map(KnowledgeGraph::from_store)
    }
}

impl KnowledgeGraph {
    /// Build from base triples. Inverse edges are added automatically.
    ///
    /// `max_out_degree` (if `Some`) truncates each entity's edge list to
    /// bound the RL action space, keeping the first edges in insertion
    /// order after sorting by `(relation, target)` — mirrors the action-
    /// space truncation used by MINERVA-family implementations.
    pub fn from_triples(
        num_entities: usize,
        num_base_relations: usize,
        triples: Vec<Triple>,
        max_out_degree: Option<usize>,
    ) -> Self {
        KnowledgeGraph {
            store: CsrStore::from_triples(
                num_entities,
                num_base_relations,
                triples,
                max_out_degree,
            ),
        }
    }

    /// Wrap an already-built (e.g. snapshot-loaded) CSR store.
    pub fn from_store(store: CsrStore) -> Self {
        KnowledgeGraph { store }
    }

    /// The backing CSR store (flat arrays; snapshot writer input).
    #[inline]
    pub fn store(&self) -> &CsrStore {
        &self.store
    }

    #[inline]
    pub fn num_entities(&self) -> usize {
        self.store.num_entities()
    }

    /// Relation id layout (base / inverse / NO_OP).
    #[inline]
    pub fn relations(&self) -> RelationSpace {
        self.store.relations()
    }

    /// All outgoing edges of `e` (inverse edges included), sorted.
    #[inline]
    pub fn neighbors(&self, e: EntityId) -> &[Edge] {
        self.store.neighbors(e)
    }

    /// Only the base-relation edges of `e` (a prefix of its bucket).
    #[inline]
    pub fn forward_neighbors(&self, e: EntityId) -> &[Edge] {
        self.store.forward_neighbors(e)
    }

    /// Only the synthetic inverse edges of `e` (the bucket's suffix).
    #[inline]
    pub fn inverse_neighbors(&self, e: EntityId) -> &[Edge] {
        self.store.inverse_neighbors(e)
    }

    #[inline]
    pub fn out_degree(&self, e: EntityId) -> usize {
        self.store.out_degree(e)
    }

    /// Total directed edges (2× the base triples, before truncation).
    pub fn num_edges(&self) -> usize {
        self.store.num_edges()
    }

    /// The base triples the graph was built from.
    pub fn triples(&self) -> &[Triple] {
        self.store.triples()
    }

    /// Membership set over the base triples.
    pub fn triple_set(&self) -> TripleSet {
        TripleSet::from_triples(self.store.triples())
    }

    /// Does the edge `(s, r, o)` exist (r may be base or inverse)?
    pub fn has_edge(&self, s: EntityId, r: RelationId, o: EntityId) -> bool {
        self.store.has_edge(s, r, o)
    }

    /// Targets reachable from `s` via relation `r` (base or inverse).
    pub fn targets(&self, s: EntityId, r: RelationId) -> impl Iterator<Item = EntityId> + '_ {
        self.store.targets(s, r)
    }

    /// Mean out-degree — a sparsity diagnostic used by the harness.
    pub fn mean_out_degree(&self) -> f64 {
        if self.num_entities() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_entities() as f64
        }
    }

    /// Largest action space any walker will see.
    pub fn max_out_degree(&self) -> usize {
        self.store
            .offsets_slice()
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        // 0 -r0-> 1, 1 -r1-> 2, 0 -r1-> 2
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 1, 2),
            Triple::new(0, 1, 2),
        ];
        KnowledgeGraph::from_triples(3, 2, triples, None)
    }

    #[test]
    fn edge_counts_include_inverses() {
        let g = toy();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(EntityId(0)), 2);
        assert_eq!(g.out_degree(EntityId(1)), 2); // inverse of r0 + forward r1
        assert_eq!(g.out_degree(EntityId(2)), 2); // two inverse edges
    }

    #[test]
    fn neighbors_sorted_and_correct() {
        let g = toy();
        let n0 = g.neighbors(EntityId(0));
        assert_eq!(
            n0[0],
            Edge {
                relation: RelationId(0),
                target: EntityId(1)
            }
        );
        assert_eq!(
            n0[1],
            Edge {
                relation: RelationId(1),
                target: EntityId(2)
            }
        );
    }

    #[test]
    fn inverse_edges_use_inverse_relation_ids() {
        let g = toy();
        let rs = g.relations();
        // entity 1 has inverse edge back to 0 via inverse(r0) = r0 + 2 = r2
        assert!(g.has_edge(EntityId(1), rs.inverse(RelationId(0)), EntityId(0)));
    }

    #[test]
    fn targets_iterator_filters_by_relation() {
        let g = toy();
        let t: Vec<_> = g.targets(EntityId(0), RelationId(1)).collect();
        assert_eq!(t, vec![EntityId(2)]);
        let none: Vec<_> = g.targets(EntityId(2), RelationId(0)).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn truncation_caps_action_space() {
        let triples: Vec<Triple> = (1..=10).map(|o| Triple::new(0, 0, o)).collect();
        let g = KnowledgeGraph::from_triples(11, 1, triples, Some(4));
        assert_eq!(g.out_degree(EntityId(0)), 4);
        assert_eq!(g.max_out_degree(), 4);
    }

    #[test]
    fn has_edge_negative() {
        let g = toy();
        assert!(!g.has_edge(EntityId(0), RelationId(0), EntityId(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_entities() {
        let _ = KnowledgeGraph::from_triples(2, 1, vec![Triple::new(0, 0, 5)], None);
    }

    #[test]
    #[should_panic(expected = "base relation")]
    fn rejects_inverse_relation_in_input() {
        let _ = KnowledgeGraph::from_triples(3, 1, vec![Triple::new(0, 1, 2)], None);
    }

    #[test]
    fn empty_entity_has_no_neighbors() {
        let g = KnowledgeGraph::from_triples(4, 1, vec![Triple::new(0, 0, 1)], None);
        assert_eq!(g.out_degree(EntityId(3)), 0);
        assert!(g.neighbors(EntityId(3)).is_empty());
    }

    #[test]
    fn mean_degree() {
        let g = toy();
        assert!((g.mean_out_degree() - 2.0).abs() < 1e-9);
    }
}
