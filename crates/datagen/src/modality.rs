//! Synthetic modality features.
//!
//! Stands in for the paper's VGG image features and word2vec text features
//! (unobtainable here — no crawled images/descriptions). Each modality is a
//! different random linear view of the entity's latent semantics plus:
//!
//! - per-image Gaussian noise (sensor/crawl noise),
//! - a *background* sub-vector of pure noise on images (the "black
//!   background" irrelevant features the irrelevance-filtration module is
//!   designed to suppress),
//! - near-duplicate images with probability `image_dup_prob` (the
//!   redundancy the attention-fusion gate must down-weight).
//!
//! This preserves exactly the signal/noise/redundancy structure the MMKGR
//! fusion network is built to handle, per the DESIGN.md substitution table.

use mmkgr_kg::ModalBank;
use mmkgr_tensor::init::normal;
use mmkgr_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::GenConfig;
use crate::schema::LatentWorld;

pub fn generate_modalities(cfg: &GenConfig, world: &LatentWorld, rng: &mut StdRng) -> ModalBank {
    let sig_dim = cfg.image_dim.saturating_sub(cfg.image_bg_dim);
    let scale = 1.0 / (cfg.latent_dim as f32).sqrt();
    // Modality-specific projections of the latent space.
    let a_img = normal(rng, cfg.latent_dim, sig_dim, scale);
    let a_txt = normal(rng, cfg.latent_dim, cfg.text_dim, scale);

    let mut texts = Matrix::zeros(cfg.entities, cfg.text_dim);
    let mut stacks: Vec<Matrix> = Vec::with_capacity(cfg.entities);

    for e in 0..cfg.entities {
        let z = world.latents.row(e);

        // Text: projection + noise.
        for (c, out) in texts.row_mut(e).iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (i, &zi) in z.iter().enumerate() {
                acc += zi * a_txt.get(i, c);
            }
            *out = acc + gauss(rng, cfg.modality_noise);
        }

        // Images: signal block + background block, with duplicates.
        let mut stack = Matrix::zeros(cfg.images_per_entity, cfg.image_dim);
        for k in 0..cfg.images_per_entity {
            if k > 0 && rng.gen_bool(cfg.image_dup_prob) {
                // near-duplicate of a random earlier image
                let src = rng.gen_range(0..k);
                let prev: Vec<f32> = stack.row(src).to_vec();
                for (v, p) in stack.row_mut(k).iter_mut().zip(prev) {
                    *v = p + gauss(rng, 0.05);
                }
                continue;
            }
            for c in 0..sig_dim {
                let mut acc = 0.0f32;
                for (i, &zi) in z.iter().enumerate() {
                    acc += zi * a_img.get(i, c);
                }
                stack.set(k, c, acc + gauss(rng, cfg.modality_noise));
            }
            for c in sig_dim..cfg.image_dim {
                // pure-noise background dims, shared scale across entities
                stack.set(k, c, gauss(rng, 1.0));
            }
        }
        stacks.push(stack);
    }
    ModalBank::new(stacks, texts)
}

/// Cheap Gaussian sample (Irwin–Hall approximation, matches `init::normal`).
fn gauss(rng: &mut StdRng, std: f32) -> f32 {
    let s: f32 = (0..12).map(|_| rng.gen_range(0.0..1.0f32)).sum::<f32>() - 6.0;
    s * std
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::sample_latents;
    use mmkgr_kg::EntityId;
    use mmkgr_tensor::init::seeded_rng;

    fn world_and_bank() -> (GenConfig, LatentWorld, ModalBank) {
        let cfg = GenConfig::tiny();
        let mut rng = seeded_rng(cfg.seed);
        let world = sample_latents(&cfg, &mut rng);
        let bank = generate_modalities(&cfg, &world, &mut rng);
        (cfg, world, bank)
    }

    #[test]
    fn bank_shapes_match_config() {
        let (cfg, _, bank) = world_and_bank();
        assert_eq!(bank.num_entities(), cfg.entities);
        assert_eq!(bank.image_dim(), cfg.image_dim);
        assert_eq!(bank.text_dim(), cfg.text_dim);
        assert_eq!(bank.image_count(EntityId(0)), cfg.images_per_entity);
        assert_eq!(bank.total_images(), cfg.entities * cfg.images_per_entity);
    }

    #[test]
    fn same_cluster_entities_have_similar_signal() {
        // modality signal is a projection of latents, so same-cluster
        // entities should be closer in *signal* dims than cross-cluster.
        let (cfg, world, bank) = world_and_bank();
        let sig = cfg.image_dim - cfg.image_bg_dim;
        let dist = |a: usize, b: usize| -> f32 {
            bank.mean_image(EntityId(a as u32))[..sig]
                .iter()
                .zip(&bank.mean_image(EntityId(b as u32))[..sig])
                .map(|(x, y)| (x - y).powi(2))
                .sum()
        };
        // average same-cluster vs cross-cluster distance over many pairs
        let mut same = (0.0f32, 0usize);
        let mut cross = (0.0f32, 0usize);
        for a in 0..cfg.entities {
            for b in (a + 1)..cfg.entities {
                let d = dist(a, b);
                if world.cluster_of[a] == world.cluster_of[b] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    cross = (cross.0 + d, cross.1 + 1);
                }
            }
        }
        let same_avg = same.0 / same.1 as f32;
        let cross_avg = cross.0 / cross.1 as f32;
        assert!(
            same_avg < cross_avg,
            "signal dims must reflect cluster structure: same {same_avg} !< cross {cross_avg}"
        );
    }

    #[test]
    fn text_and_image_are_different_views() {
        let (_, _, bank) = world_and_bank();
        // Not literally equal projections: text ≠ image signal for entity 0.
        let t = bank.text(EntityId(0));
        let i = bank.mean_image(EntityId(0));
        assert_ne!(&t[..4], &i[..4]);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = GenConfig::tiny();
        let run = || {
            let mut rng = seeded_rng(cfg.seed);
            let world = sample_latents(&cfg, &mut rng);
            generate_modalities(&cfg, &world, &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.mean_image(EntityId(5)), b.mean_image(EntityId(5)));
        assert_eq!(a.text(EntityId(5)), b.text(EntityId(5)));
    }
}
