//! Recursive-descent JSON parser producing a [`Value`] tree.

use serde::{DeError, Value};

/// Parse a complete JSON document (rejects trailing garbage).
pub fn from_str_value(s: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DeError {
        DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}
