//! HolE (Nickel et al., AAAI 2016): holographic embeddings scoring triples
//! with the circular correlation of subject and object,
//! `score = r · (s ⋆ o)` where `(s ⋆ o)_k = Σ_j s_j o_{(j+k) mod d}`.
//!
//! Circular correlation compresses the full `d×d` interaction of RESCAL
//! into `d` dimensions while staying non-commutative, so HolE can model
//! asymmetric relations at TransE-like parameter cost. Listed in the
//! paper's Table I among the traditional single-hop baselines.

use mmkgr_kg::{EntityId, RelationId, Triple, TripleSet};
use mmkgr_nn::{Adam, Ctx, Embedding, Params};
use mmkgr_tensor::init::seeded_rng;
use mmkgr_tensor::{Tape, Var};

use crate::negative::NegativeSampler;
use crate::scorer::TripleScorer;
use crate::trainer::{batch_indices, KgeTrainConfig};

pub struct Hole {
    pub params: Params,
    pub entities: Embedding,
    pub relations: Embedding,
    pub dim: usize,
}

/// Reference circular correlation `(s ⋆ o)_k = Σ_j s_j o_{(j+k) mod d}`.
/// O(d²); public so tests and the bench suite can cross-check the tape
/// formulation against the textbook definition.
pub fn circular_correlation(s: &[f32], o: &[f32]) -> Vec<f32> {
    let d = s.len();
    assert_eq!(d, o.len());
    let mut c = vec![0.0f32; d];
    for (k, ck) in c.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for j in 0..d {
            acc += s[j] * o[(j + k) % d];
        }
        *ck = acc;
    }
    c
}

impl Hole {
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut params = Params::new();
        let mut rng = seeded_rng(seed);
        let entities = Embedding::new(&mut params, &mut rng, "hole.ent", num_entities, dim);
        let relations = Embedding::new(&mut params, &mut rng, "hole.rel", num_relations, dim);
        Hole {
            params,
            entities,
            relations,
            dim,
        }
    }

    /// Batch scores `B×1`. The correlation is unrolled over the shift `k`:
    /// `score = Σ_k r_k · Σ_j s_j o_{(j+k) mod d}`, with the inner rotation
    /// expressed as a column-slice + concat (a differentiable "roll").
    fn batch_score(&self, ctx: &Ctx<'_>, triples: &[&Triple]) -> Var {
        let t = ctx.tape;
        let d = self.dim;
        let s_idx: Vec<usize> = triples.iter().map(|x| x.s.index()).collect();
        let r_idx: Vec<usize> = triples.iter().map(|x| x.r.index()).collect();
        let o_idx: Vec<usize> = triples.iter().map(|x| x.o.index()).collect();
        let s = self.entities.forward(ctx, &s_idx);
        let r = self.relations.forward(ctx, &r_idx);
        let o = self.entities.forward(ctx, &o_idx);
        let mut acc: Option<Var> = None;
        for k in 0..d {
            let rolled = if k == 0 {
                o
            } else {
                t.concat_cols(t.slice_cols(o, k, d), t.slice_cols(o, 0, k))
            };
            let inner = t.sum_rows(t.mul(s, rolled)); // B×1 = (s ⋆ o)_k
            let r_k = t.slice_cols(r, k, k + 1);
            let term = t.mul(r_k, inner);
            acc = Some(match acc {
                None => term,
                Some(p) => t.add(p, term),
            });
        }
        acc.expect("dim must be > 0")
    }

    /// Margin-ranking training on score gaps (higher = more plausible).
    pub fn train(
        &mut self,
        triples: &[Triple],
        known: &TripleSet,
        cfg: &KgeTrainConfig,
    ) -> Vec<f32> {
        let mut rng = seeded_rng(cfg.seed);
        let sampler = NegativeSampler::new(known, self.entities.count);
        let mut opt = Adam::new(cfg.lr);
        let mut trace = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in batch_indices(triples.len(), cfg.batch_size, &mut rng) {
                let pos: Vec<&Triple> = batch.iter().map(|&i| &triples[i]).collect();
                let negs: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
                let neg_refs: Vec<&Triple> = negs.iter().collect();

                let tape = Tape::new();
                let ctx = Ctx::new(&tape, &self.params);
                let pos_s = self.batch_score(&ctx, &pos);
                let neg_s = self.batch_score(&ctx, &neg_refs);
                let gap = tape.sub(neg_s, pos_s);
                let hinge = tape.relu(tape.add_scalar(gap, cfg.margin));
                let loss = tape.mean(hinge);
                epoch_loss += tape.scalar(loss);
                batches += 1;
                let grads = tape.backward(loss);
                ctx.into_leases().accumulate(&mut self.params, &grads);
                opt.step(&mut self.params);
                self.params.zero_grads();
            }
            trace.push(epoch_loss / batches.max(1) as f32);
        }
        trace
    }

    /// `q_m = Σ_k r_k s_{(m−k) mod d}` (circular convolution of `r` and
    /// `s`), so that `score(s,r,o) = q · o` — one O(d²) precompute shared
    /// by every candidate object.
    fn query_vector(&self, s: EntityId, r: RelationId) -> Vec<f32> {
        let es = self.entities.row(&self.params, s.index());
        let er = self.relations.row(&self.params, r.index());
        let d = self.dim;
        let mut q = vec![0.0f32; d];
        for k in 0..d {
            let rk = er[k];
            for j in 0..d {
                q[(j + k) % d] += rk * es[j];
            }
        }
        q
    }
}

impl TripleScorer for Hole {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let q = self.query_vector(s, r);
        let eo = self.entities.row(&self.params, o.index());
        q.iter().zip(eo).map(|(a, b)| a * b).sum()
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        let q = self.query_vector(s, r);
        let table = self.params.value(self.entities.table);
        crate::scorer::prepare_score_buffer(out, n);
        for o in 0..n {
            let row = table.row(o);
            out.push(q.iter().zip(row).map(|(a, b)| a * b).sum());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_matches_textbook_correlation() {
        let model = Hole::new(4, 2, 8, 9);
        let s = model.entities.row(&model.params, 1).to_vec();
        let o = model.entities.row(&model.params, 2).to_vec();
        let r = model.relations.row(&model.params, 0).to_vec();
        let corr = circular_correlation(&s, &o);
        let want: f32 = r.iter().zip(&corr).map(|(a, b)| a * b).sum();
        let got = model.score(EntityId(1), RelationId(0), EntityId(2));
        assert!((got - want).abs() < 1e-4, "got {got}, want {want}");
    }

    #[test]
    fn correlation_is_non_commutative() {
        // Avoid reversed/palindromic pairs: for those, correlation *is*
        // symmetric, which is exactly why the values matter here.
        let s = vec![1.0, 2.0, 3.0, 4.0];
        let o = vec![1.0, 3.0, 2.0, 5.0];
        assert_ne!(circular_correlation(&s, &o), circular_correlation(&o, &s));
    }

    #[test]
    fn training_separates_pos_from_neg() {
        let triples = vec![Triple::new(0, 0, 1), Triple::new(2, 0, 3)];
        let known = TripleSet::from_triples(&triples);
        let mut model = Hole::new(4, 1, 8, 0);
        model.train(&triples, &known, &KgeTrainConfig::quick().with_epochs(80));
        let pos = model.score(EntityId(0), RelationId(0), EntityId(1));
        let neg = model.score(EntityId(0), RelationId(0), EntityId(2));
        assert!(pos > neg, "pos {pos} !> neg {neg}");
    }

    #[test]
    fn vectorized_matches_pointwise() {
        let model = Hole::new(6, 2, 8, 5);
        let mut out = Vec::new();
        model.score_all_objects(EntityId(2), RelationId(1), 6, &mut out);
        for (o, &v) in out.iter().enumerate() {
            assert!((v - model.score(EntityId(2), RelationId(1), EntityId(o as u32))).abs() < 1e-4);
        }
    }

    #[test]
    fn asymmetric_scores_at_init() {
        let model = Hole::new(4, 1, 8, 3);
        let a = model.score(EntityId(0), RelationId(0), EntityId(1));
        let b = model.score(EntityId(1), RelationId(0), EntityId(0));
        assert!((a - b).abs() > 1e-9);
    }
}
