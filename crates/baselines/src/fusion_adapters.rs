//! Naive multi-modal fusion adapters (paper Table VII).
//!
//! The paper's Table VII bolts the two fusion strategies of prior
//! *single-hop* MKG methods — feature **Concatenation** (MTRL-style) and
//! conventional **Attention** — onto existing multi-hop reasoners, and
//! shows that both *hurt*: the un-gated modal features inject noise that
//! the sparse-reward RL signal cannot learn around.
//!
//! [`FusedWalker`] is a MINERVA-style walker whose entity representations
//! are augmented with projected modal features:
//!
//! - `Concat`: `e' = [e_emb ; P_t·f_t ; P_i·f_i]`
//! - `Attention`: `e' = [e_emb ; α_t·(P_t·f_t) + α_i·(P_i·f_i)]` with a
//!   learned global mixture `α = softmax(w)` (the "conventional attention"
//!   of the single-hop literature, which cannot gate per-feature noise).
//!
//! The projections `P` are fixed random maps of the raw features, exactly
//! like the frozen VGG/word2vec features prior work concatenates.

use mmkgr_core::infer::RolloutPolicy;
use mmkgr_core::mdp::{Env, RolloutQuery, RolloutState};
use mmkgr_kg::{Edge, EntityId, MultiModalKG, RelationId};
use mmkgr_nn::{clip_grad_norm, Adam, Ctx, Embedding, Linear, LstmCell, ParamId, Params};
use mmkgr_tensor::init::{normal, seeded_rng};
use mmkgr_tensor::{softmax_slice, Matrix, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::walker::WalkerConfig;

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NaiveFusion {
    Concatenation,
    Attention,
}

impl NaiveFusion {
    pub fn name(&self) -> &'static str {
        match self {
            NaiveFusion::Concatenation => "Concatenation",
            NaiveFusion::Attention => "Attention",
        }
    }
}

pub struct FusedWalker {
    pub fusion: NaiveFusion,
    pub cfg: WalkerConfig,
    pub params: Params,
    ent: Embedding,
    rel: Embedding,
    lstm: LstmCell,
    l1: Linear,
    l2: Linear,
    /// Attention variant: 1×2 mixture logits.
    mix: Option<ParamId>,
    /// Precomputed fixed modal projections, `N×proj` each.
    txt_proj: Matrix,
    img_proj: Matrix,
    proj: usize,
    baseline: f32,
}

impl FusedWalker {
    pub fn new(kg: &MultiModalKG, fusion: NaiveFusion, proj: usize, cfg: WalkerConfig) -> Self {
        let mut params = Params::new();
        let mut rng = seeded_rng(cfg.seed);
        let ds = cfg.struct_dim;
        let n = kg.num_entities();
        let r_total = kg.graph.relations().total();
        let ent = Embedding::new(&mut params, &mut rng, "fused.ent", n, ds);
        let rel = Embedding::new(&mut params, &mut rng, "fused.rel", r_total, ds);
        let lstm = LstmCell::new(&mut params, &mut rng, "fused.lstm", 2 * ds, ds);

        // Fixed random projections of the raw modal features.
        let dt = kg.modal.text_dim().max(1);
        let di = kg.modal.image_dim().max(1);
        let pt = normal(&mut rng, dt, proj, 1.0 / (dt as f32).sqrt());
        let pi = normal(&mut rng, di, proj, 1.0 / (di as f32).sqrt());
        let txt_proj = kg.modal.texts().matmul(&pt);
        let img_proj = kg.modal.mean_images().matmul(&pi);

        let modal_w = match fusion {
            NaiveFusion::Concatenation => 2 * proj,
            NaiveFusion::Attention => proj,
        };
        let l1 = Linear::new(
            &mut params,
            &mut rng,
            "fused.l1",
            3 * ds + modal_w,
            cfg.hidden,
            true,
        );
        let l2 = Linear::new(
            &mut params,
            &mut rng,
            "fused.l2",
            cfg.hidden,
            2 * ds + modal_w,
            true,
        );
        let mix = matches!(fusion, NaiveFusion::Attention)
            .then(|| params.add("fused.mix", Matrix::zeros(1, 2)));
        FusedWalker {
            fusion,
            cfg,
            params,
            ent,
            rel,
            lstm,
            l1,
            l2,
            mix,
            txt_proj,
            img_proj,
            proj,
            baseline: 0.0,
        }
    }

    fn modal_width(&self) -> usize {
        match self.fusion {
            NaiveFusion::Concatenation => 2 * self.proj,
            NaiveFusion::Attention => self.proj,
        }
    }

    /// Current attention mixture (raw path).
    fn mixture(&self) -> (f32, f32) {
        match self.mix {
            Some(id) => {
                let m = self.params.value(id);
                let mut a = [m.get(0, 0), m.get(0, 1)];
                softmax_slice(&mut a);
                (a[0], a[1])
            }
            None => (1.0, 1.0),
        }
    }

    /// Raw fused modal vector for one entity.
    fn modal_vec(&self, e: usize, out: &mut Vec<f32>) {
        match self.fusion {
            NaiveFusion::Concatenation => {
                out.extend_from_slice(self.txt_proj.row(e));
                out.extend_from_slice(self.img_proj.row(e));
            }
            NaiveFusion::Attention => {
                let (at, ai) = self.mixture();
                for (t, i) in self.txt_proj.row(e).iter().zip(self.img_proj.row(e)) {
                    out.push(at * t + ai * i);
                }
            }
        }
    }

    /// Tape: fused modal rows for a set of entities (`m×modal_width`).
    fn modal_rows(&self, ctx: &Ctx<'_>, entities: &[usize]) -> Var {
        let t = ctx.tape;
        let txt = ctx.input(self.txt_proj.gather_rows(entities));
        let img = ctx.input(self.img_proj.gather_rows(entities));
        match (self.fusion, self.mix) {
            (NaiveFusion::Concatenation, _) => t.concat_cols(txt, img),
            (NaiveFusion::Attention, Some(mix)) => {
                let alpha = t.softmax_rows(ctx.p(mix)); // 1×2
                let a0 = t.slice_cols(alpha, 0, 1); // 1×1
                let a1 = t.slice_cols(alpha, 1, 2);
                let reps = vec![0usize; entities.len()];
                let a0m = t.gather_rows(a0, &reps); // m×1
                let a1m = t.gather_rows(a1, &reps);
                let tw = t.mul_col_broadcast(txt, a0m);
                let iw = t.mul_col_broadcast(img, a1m);
                t.add(tw, iw)
            }
            (NaiveFusion::Attention, None) => unreachable!("attention requires mix"),
        }
    }

    fn state_logp(&self, ctx: &Ctx<'_>, q: &RolloutQuery, h_i: Var, actions: &[Edge]) -> Var {
        let t = ctx.tape;
        let ds = self.cfg.struct_dim;
        let e_cur = t.gather_rows(ctx.p(self.ent.table), &[q.source.index()]);
        let rq = t.gather_rows(ctx.p(self.rel.table), &[q.relation.index()]);
        let m_src = self.modal_rows(ctx, &[q.source.index()]);
        let state = t.concat_cols(t.concat_cols(t.concat_cols(e_cur, m_src), h_i), rq);
        let hid = t.relu(self.l1.forward(ctx, state));
        let w = self.l2.forward(ctx, hid); // 1×(2ds+mw)

        let r_idx: Vec<usize> = actions.iter().map(|e| e.relation.index()).collect();
        let e_idx: Vec<usize> = actions.iter().map(|e| e.target.index()).collect();
        let r = t.gather_rows(ctx.p(self.rel.table), &r_idx);
        let e = t.gather_rows(ctx.p(self.ent.table), &e_idx);
        let m_tgt = self.modal_rows(ctx, &e_idx);
        let at = t.concat_cols(t.concat_cols(r, e), m_tgt); // m×(2ds+mw)
        let scores = t.transpose(t.matmul(at, t.transpose(w)));
        let _ = ds;
        t.log_softmax_rows(scores)
    }

    /// 0/1-reward REINFORCE, mirroring the plain walker. Returns the
    /// per-epoch mean-reward trace (Table VII's "Rewards" column).
    pub fn train(&mut self, kg: &MultiModalKG) -> Vec<f32> {
        let mut queries =
            mmkgr_core::rollout::queries_from_triples(&kg.split.train, kg.graph.relations(), true);
        let mult = self.cfg.rollouts_per_query.max(1);
        if mult > 1 {
            let base = queries.clone();
            for _ in 1..mult {
                queries.extend_from_slice(&base);
            }
        }
        let mut rng = seeded_rng(self.cfg.seed ^ 0xF0F0);
        let mut opt = Adam::new(self.cfg.lr);
        if self.cfg.warmstart_epochs > 0 {
            self.warm_start(kg, self.cfg.warmstart_epochs, &mut opt);
        }
        let mut trace = Vec::with_capacity(self.cfg.epochs);
        let mut order: Vec<usize> = (0..queries.len()).collect();
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_reward = 0.0f32;
            let mut count = 0usize;
            let chunks: Vec<Vec<usize>> = order
                .chunks(self.cfg.batch_size)
                .map(|c| c.to_vec())
                .collect();
            for chunk in chunks {
                let batch: Vec<RolloutQuery> = chunk.iter().map(|&i| queries[i]).collect();
                let r = self.train_batch(kg, &batch, &mut opt, &mut rng);
                epoch_reward += r * batch.len() as f32;
                count += batch.len();
            }
            trace.push(epoch_reward / count.max(1) as f32);
        }
        trace
    }

    /// Shared behaviour-cloning warm start (same protocol as the plain
    /// walker and `mmkgr-core`'s Trainer — Table VII's deltas require a
    /// uniform training protocol across the fused/unfused pairs).
    pub fn warm_start(&mut self, kg: &MultiModalKG, epochs: usize, opt: &mut Adam) -> usize {
        let queries =
            mmkgr_core::rollout::queries_from_triples(&kg.split.train, kg.graph.relations(), true);
        let demos: Vec<(RolloutQuery, Vec<Edge>)> = queries
            .into_iter()
            .filter_map(|q| {
                mmkgr_core::rollout::demonstration_path(&kg.graph, &q, self.cfg.max_steps)
                    .map(|p| (q, p))
            })
            .collect();
        if demos.is_empty() {
            return 0;
        }
        let mut rng = seeded_rng(self.cfg.seed ^ 0xDE41);
        let mut order: Vec<usize> = (0..demos.len()).collect();
        for _epoch in 0..epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.cfg.batch_size) {
                let batch: Vec<&(RolloutQuery, Vec<Edge>)> =
                    chunk.iter().map(|&i| &demos[i]).collect();
                self.clone_batch(kg, &batch, opt);
            }
        }
        demos.len()
    }

    fn clone_batch(
        &mut self,
        kg: &MultiModalKG,
        batch: &[&(RolloutQuery, Vec<Edge>)],
        opt: &mut Adam,
    ) {
        let env = Env::new(&kg.graph, true);
        let no_op = env.no_op();
        let b = batch.len();
        let tape = Tape::new();
        let mut picked: Vec<Var> = Vec::new();
        let mut states: Vec<RolloutState> = batch
            .iter()
            .map(|(q, _)| RolloutState::new(*q, no_op))
            .collect();
        {
            let ctx = Ctx::new(&tape, &self.params);
            let (mut h, mut c) = self.lstm.zero_state(&ctx, b);
            let mut action_buf: Vec<Edge> = Vec::new();
            for step in 0..self.cfg.max_steps {
                let last_rels: Vec<usize> =
                    states.iter().map(|s| s.last_relation.index()).collect();
                let currents: Vec<usize> = states.iter().map(|s| s.current.index()).collect();
                let r_in = tape.gather_rows(ctx.p(self.rel.table), &last_rels);
                let e_in = tape.gather_rows(ctx.p(self.ent.table), &currents);
                let x = tape.concat_cols(r_in, e_in);
                let (h2, c2) = self.lstm.forward(&ctx, x, h, c);
                h = h2;
                c = c2;
                for (i, state) in states.iter_mut().enumerate() {
                    let demo = &batch[i].1;
                    let target_edge = demo.get(step).copied().unwrap_or(Edge {
                        relation: no_op,
                        target: state.current,
                    });
                    env.fill_actions(state, &mut action_buf);
                    let chosen = action_buf
                        .iter()
                        .position(|e| *e == target_edge)
                        .expect("demonstration edges exist in the masked action space");
                    let h_i = tape.gather_rows(h, &[i]);
                    let logp = self.state_logp(&ctx, &state.query, h_i, &action_buf);
                    picked.push(tape.pick_per_row(logp, &[chosen]));
                    state.step(target_edge, no_op);
                }
            }
            let mut loss: Option<Var> = None;
            for &p in &picked {
                let term = tape.neg(p);
                loss = Some(match loss {
                    Some(l) => tape.add(l, term),
                    None => term,
                });
            }
            let loss = tape.scale(loss.expect("non-empty batch"), 1.0 / b as f32);
            let grads = tape.backward(loss);
            ctx.into_leases().accumulate(&mut self.params, &grads);
        }
        clip_grad_norm(&mut self.params, 5.0);
        opt.step(&mut self.params);
        self.params.zero_grads();
    }

    fn train_batch(
        &mut self,
        kg: &MultiModalKG,
        batch: &[RolloutQuery],
        opt: &mut Adam,
        rng: &mut StdRng,
    ) -> f32 {
        let env = Env::new(&kg.graph, true);
        let no_op = env.no_op();
        let b = batch.len();
        let tape = Tape::new();
        let mut states: Vec<RolloutState> =
            batch.iter().map(|&q| RolloutState::new(q, no_op)).collect();
        let mut picked = Vec::with_capacity(b * self.cfg.max_steps);

        let mean_reward = {
            let ctx = Ctx::new(&tape, &self.params);
            let (mut h, mut c) = self.lstm.zero_state(&ctx, b);
            let mut action_buf: Vec<Edge> = Vec::new();
            for _ in 0..self.cfg.max_steps {
                let last_rels: Vec<usize> =
                    states.iter().map(|s| s.last_relation.index()).collect();
                let currents: Vec<usize> = states.iter().map(|s| s.current.index()).collect();
                let r_in = tape.gather_rows(ctx.p(self.rel.table), &last_rels);
                let e_in = tape.gather_rows(ctx.p(self.ent.table), &currents);
                let x = tape.concat_cols(r_in, e_in);
                let (h2, c2) = self.lstm.forward(&ctx, x, h, c);
                h = h2;
                c = c2;
                for (i, state) in states.iter_mut().enumerate() {
                    env.fill_actions(state, &mut action_buf);
                    let h_i = tape.gather_rows(h, &[i]);
                    let logp = self.state_logp(&ctx, &state.query, h_i, &action_buf);
                    let chosen = {
                        let v = tape.value(logp);
                        sample_categorical(v.row(0), rng)
                    };
                    picked.push((tape.pick_per_row(logp, &[chosen]), i));
                    state.step(action_buf[chosen], no_op);
                }
            }
            let rewards: Vec<f32> = states
                .iter()
                .map(|s| if s.at_answer() { 1.0 } else { 0.0 })
                .collect();
            let mean_reward: f32 = rewards.iter().sum::<f32>() / b.max(1) as f32;
            let mut loss: Option<Var> = None;
            for &(pick, qi) in &picked {
                let term = tape.scale(pick, -(rewards[qi] - self.baseline));
                loss = Some(match loss {
                    Some(l) => tape.add(l, term),
                    None => term,
                });
            }
            let loss = tape.scale(loss.expect("non-empty batch"), 1.0 / b as f32);
            let grads = tape.backward(loss);
            ctx.into_leases().accumulate(&mut self.params, &grads);
            let d = self.cfg.baseline_decay;
            self.baseline = d * self.baseline + (1.0 - d) * mean_reward;
            mean_reward
        };
        clip_grad_norm(&mut self.params, 5.0);
        opt.step(&mut self.params);
        self.params.zero_grads();
        mean_reward
    }
}

impl RolloutPolicy for FusedWalker {
    fn hidden_dim(&self) -> usize {
        self.cfg.struct_dim
    }

    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32> {
        let mut x = Vec::with_capacity(2 * self.cfg.struct_dim);
        self.lstm_input_into(last_rel, current, &mut x);
        x
    }

    fn lstm_input_into(&self, last_rel: RelationId, current: EntityId, out: &mut Vec<f32>) {
        out.extend_from_slice(self.rel.row(&self.params, last_rel.index()));
        out.extend_from_slice(self.ent.row(&self.params, current.index()));
    }

    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]) {
        let ds = self.cfg.struct_dim;
        let wx = self.params.value(self.lstm.wx);
        let wh = self.params.value(self.lstm.wh);
        let bias = self.params.value(self.lstm.b);
        let mut gates = bias.row(0).to_vec();
        for (i, &xv) in x.iter().enumerate() {
            if xv != 0.0 {
                for (g, &w) in gates.iter_mut().zip(wx.row(i)) {
                    *g += xv * w;
                }
            }
        }
        for (i, &hv) in h.iter().enumerate() {
            if hv != 0.0 {
                for (g, &w) in gates.iter_mut().zip(wh.row(i)) {
                    *g += hv * w;
                }
            }
        }
        for k in 0..ds {
            let i_g = sigmoid(gates[k]);
            let f_g = sigmoid(gates[ds + k]);
            let g_g = gates[2 * ds + k].tanh();
            let o_g = sigmoid(gates[3 * ds + k]);
            c[k] = f_g * c[k] + i_g * g_g;
            h[k] = o_g * c[k].tanh();
        }
    }

    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        let ds = self.cfg.struct_dim;
        let mut state = Vec::with_capacity(3 * ds + self.modal_width());
        state.extend_from_slice(self.ent.row(&self.params, source.index()));
        self.modal_vec(source.index(), &mut state);
        state.extend_from_slice(h);
        state.extend_from_slice(self.rel.row(&self.params, rq.index()));
        let sm = Matrix::row_vector(&state);
        let mut hid = sm.matmul(self.params.value(self.l1.w));
        if let Some(b) = self.l1.b {
            for (v, &bv) in hid.row_mut(0).iter_mut().zip(self.params.value(b).row(0)) {
                *v += bv;
            }
        }
        hid.map_inplace(|v| v.max(0.0));
        let mut w = hid.matmul(self.params.value(self.l2.w));
        if let Some(b) = self.l2.b {
            for (v, &bv) in w.row_mut(0).iter_mut().zip(self.params.value(b).row(0)) {
                *v += bv;
            }
        }
        let w = w.row(0);
        let rel_t = self.params.value(self.rel.table);
        let ent_t = self.params.value(self.ent.table);
        out.clear();
        let mut modal = Vec::with_capacity(self.modal_width());
        for a in actions {
            let r_emb = rel_t.row(a.relation.index());
            let e_emb = ent_t.row(a.target.index());
            modal.clear();
            self.modal_vec(a.target.index(), &mut modal);
            let mut s = 0.0f32;
            for k in 0..ds {
                s += w[k] * r_emb[k] + w[ds + k] * e_emb[k];
            }
            for (k, &mv) in modal.iter().enumerate() {
                s += w[2 * ds + k] * mv;
            }
            out.push(s);
        }
        softmax_slice(out);
    }
}

fn sample_categorical(logp: &[f32], rng: &mut StdRng) -> usize {
    let u: f32 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0f32;
    for (i, &lp) in logp.iter().enumerate() {
        acc += lp.exp();
        if u < acc {
            return i;
        }
    }
    logp.len() - 1
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_core::infer::evaluate_ranking;
    use mmkgr_datagen::{generate, GenConfig};

    fn quick_cfg() -> WalkerConfig {
        WalkerConfig {
            epochs: 2,
            batch_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn concat_walker_trains() {
        let kg = generate(&GenConfig::tiny());
        let mut w = FusedWalker::new(&kg, NaiveFusion::Concatenation, 8, quick_cfg());
        let trace = w.train(&kg);
        assert_eq!(trace.len(), 2);
        assert!(trace.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn warm_start_raises_first_epoch_reward() {
        let kg = generate(&GenConfig::tiny());
        let run = |warm: usize| {
            let mut cfg = quick_cfg();
            cfg.warmstart_epochs = warm;
            let mut w = FusedWalker::new(&kg, NaiveFusion::Concatenation, 8, cfg);
            w.train(&kg)[0]
        };
        let cold = run(0);
        let warm = run(4);
        assert!(
            warm > cold,
            "cloning should raise first-epoch reward: cold {cold}, warm {warm}"
        );
    }

    #[test]
    fn attention_walker_trains_and_evaluates() {
        let kg = generate(&GenConfig::tiny());
        let mut w = FusedWalker::new(&kg, NaiveFusion::Attention, 8, quick_cfg());
        w.train(&kg);
        let queries =
            mmkgr_core::rollout::queries_from_triples(&kg.split.test, kg.graph.relations(), false);
        let known = kg.all_known();
        let s = evaluate_ranking(
            &w,
            &kg.graph,
            &queries[..6.min(queries.len())],
            &known,
            8,
            4,
        );
        assert!((0.0..=1.0).contains(&s.mrr));
    }

    #[test]
    fn attention_mixture_is_softmax() {
        let kg = generate(&GenConfig::tiny());
        let w = FusedWalker::new(&kg, NaiveFusion::Attention, 8, quick_cfg());
        let (a, b) = w.mixture();
        assert!((a + b - 1.0).abs() < 1e-5);
    }

    #[test]
    fn modal_vec_widths() {
        let kg = generate(&GenConfig::tiny());
        let wc = FusedWalker::new(&kg, NaiveFusion::Concatenation, 8, quick_cfg());
        let wa = FusedWalker::new(&kg, NaiveFusion::Attention, 8, quick_cfg());
        let mut v = Vec::new();
        wc.modal_vec(0, &mut v);
        assert_eq!(v.len(), 16);
        v.clear();
        wa.modal_vec(0, &mut v);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn probs_sum_to_one() {
        let kg = generate(&GenConfig::tiny());
        let w = FusedWalker::new(&kg, NaiveFusion::Concatenation, 8, quick_cfg());
        let mut actions = vec![Edge {
            relation: kg.graph.relations().no_op(),
            target: EntityId(0),
        }];
        actions.extend_from_slice(kg.graph.neighbors(EntityId(0)));
        let h = vec![0.0f32; w.hidden_dim()];
        let mut probs = Vec::new();
        w.action_probs(EntityId(0), &h, RelationId(0), &actions, &mut probs);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}

/// Naive *late* fusion for non-RL baselines (GAATs, NeuralLP in Table
/// VII): the structural score is perturbed by raw modal similarity
/// between source and candidate. `Concatenation` sums both modality
/// similarities; `Attention` takes the stronger one (a degenerate
/// conventional attention). Neither can gate noise — which is the point
/// of the paper's Table VII.
pub struct ModalLateFusion<S> {
    pub inner: S,
    texts: Matrix,
    images: Matrix,
    pub weight: f32,
    pub fusion: NaiveFusion,
}

impl<S> ModalLateFusion<S> {
    pub fn new(inner: S, kg: &MultiModalKG, fusion: NaiveFusion, weight: f32) -> Self {
        let mut texts = kg.modal.texts().clone();
        let mut images = kg.modal.mean_images().clone();
        texts.l2_normalize_rows();
        images.l2_normalize_rows();
        ModalLateFusion {
            inner,
            texts,
            images,
            weight,
            fusion,
        }
    }

    fn modal_similarity(&self, a: EntityId, b: EntityId) -> f32 {
        let cos = |m: &Matrix| -> f32 {
            m.row(a.index())
                .iter()
                .zip(m.row(b.index()))
                .map(|(x, y)| x * y)
                .sum()
        };
        let (st, si) = (cos(&self.texts), cos(&self.images));
        match self.fusion {
            NaiveFusion::Concatenation => st + si,
            NaiveFusion::Attention => st.max(si),
        }
    }
}

impl<S: mmkgr_embed::TripleScorer> mmkgr_embed::TripleScorer for ModalLateFusion<S> {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        self.inner.score(s, r, o) + self.weight * self.modal_similarity(s, o)
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        self.inner.score_all_objects(s, r, n, out);
        for (o, v) in out.iter_mut().enumerate() {
            *v += self.weight * self.modal_similarity(s, EntityId(o as u32));
        }
    }
}

#[cfg(test)]
mod late_fusion_tests {
    use super::*;
    use mmkgr_datagen::{generate, GenConfig};
    use mmkgr_embed::{KgeTrainConfig, TransE, TripleScorer};

    #[test]
    fn late_fusion_shifts_scores() {
        let kg = generate(&GenConfig::tiny());
        let known = kg.all_known();
        let mut base = TransE::new(kg.num_entities(), kg.graph.relations().total(), 16, 0);
        base.train(&kg.split.train, &known, &KgeTrainConfig::quick());
        let plain = base.score(EntityId(0), RelationId(0), EntityId(1));
        let fused = ModalLateFusion::new(base, &kg, NaiveFusion::Concatenation, 0.5);
        let shifted = fused.score(EntityId(0), RelationId(0), EntityId(1));
        assert_ne!(plain, shifted);
    }

    #[test]
    fn vectorized_matches_pointwise_after_fusion() {
        let kg = generate(&GenConfig::tiny());
        let base = TransE::new(kg.num_entities(), kg.graph.relations().total(), 16, 1);
        let fused = ModalLateFusion::new(base, &kg, NaiveFusion::Attention, 0.3);
        let mut out = Vec::new();
        fused.score_all_objects(EntityId(2), RelationId(0), 10, &mut out);
        for (o, &v) in out.iter().enumerate() {
            let p = fused.score(EntityId(2), RelationId(0), EntityId(o as u32));
            assert!((v - p).abs() < 1e-4);
        }
    }
}
