//! The serialization value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (JSON object).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(f) =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (None for non-objects and absent keys).
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

macro_rules! value_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::U64(v as u64)
            }
        }
    )*};
}
value_from_unsigned!(u8, u16, u32, u64, usize);

// Non-negative integers normalize to U64 so value trees compare equal
// regardless of whether they were built in Rust or parsed from JSON text
// (the parser reads any non-negative integer as U64).
macro_rules! value_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v as i64)
                }
            }
        }
    )*};
}
value_from_signed!(i8, i16, i32, i64, isize);

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}

/// Deserialization error (also serde_json's parse error).
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, got {}", got.kind()))
    }

    /// Prefix an error with the field/context it occurred in.
    pub fn in_context(self, ctx: &str) -> Self {
        DeError::new(format!("{ctx}: {}", self.msg))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}
