//! A dependency-free HTTP/1.1 front end over a [`ModelRegistry`].
//!
//! The workspace builds offline (no hyper/axum), so the server is a
//! small, explicitly blocking `std::net` stack:
//!
//! ```text
//! accept thread ──▶ mpsc channel ──▶ N connection threads ──▶ registry
//!                  (queue_depth)         │
//!                                        └─ /v1/answer_batch fans out on a
//!                                           per-model serve::WorkerPool
//! ```
//!
//! One thread accepts; a fixed pool of connection threads parses
//! requests, drives the [`ModelRegistry`] pipelines, and writes
//! responses. Single answers run on the connection thread itself (each
//! owns a warm thread-local beam engine); batches fan out on the
//! per-model [`WorkerPool`]s the server spawns at construction.
//!
//! # Routes (protocol `v1` — see [`super::protocol`])
//!
//! | route | body | response |
//! |---|---|---|
//! | `POST /v1/answer` | [`AnswerRequest`] | [`WireAnswer`](super::protocol::WireAnswer) |
//! | `POST /v1/answer_batch` | [`AnswerBatchRequest`] | [`AnswerBatchResponse`](super::protocol::AnswerBatchResponse) |
//! | `POST /v1/explain` | [`ExplainRequest`] | [`ExplainResponse`](super::protocol::ExplainResponse) |
//! | `POST /v1/retrieve` | [`RetrieveRequest`] | [`RetrieveResponse`](super::protocol::RetrieveResponse) |
//! | `POST /v1/admin/mutate` | [`MutateRequest`] | [`MutateResponse`](super::protocol::MutateResponse) |
//! | `POST /v1/admin/replicate` | [`ReplicateRequest`](super::protocol::ReplicateRequest) | snapshot bytes or a WAL frame stream (see [`super::replication`]) |
//! | `POST /v1/admin/promote` | [`PromoteRequest`](super::protocol::PromoteRequest) | [`PromoteResponse`](super::protocol::PromoteResponse) |
//! | `GET /v1/models` | — | [`ModelsResponse`](super::protocol::ModelsResponse) |
//! | `GET /healthz` | — | [`HealthResponse`](super::protocol::HealthResponse) |
//! | `GET /readyz` | — | [`ReadyResponse`](super::protocol::ReadyResponse) (503 until ready) |
//! | `GET /metrics` | — | [`MetricsResponse`](super::protocol::MetricsResponse) |
//!
//! Failures return `{"error": {"code": ..., ...}}` with the
//! [`ApiError`]'s status. Connections are `Connection: close`
//! (keep-alive and streaming are roadmap follow-ups); the protocol
//! lives entirely in the body, so clients are trivial — see
//! [`request`] and `examples/http_client.rs`.
//!
//! # Quickstart
//!
//! ```bash
//! mmkgr serve --dataset wn9 --models MMKGR,ConvE --port 8080 &
//! curl -s localhost:8080/healthz
//! curl -s localhost:8080/v1/models
//! curl -s localhost:8080/v1/answer -d '{"query": {"source": "e17", "relation": "r3"}}'
//! curl -s localhost:8080/v1/answer -d '{"model": "ConvE", "query": {"source": "e17", "relation": "~r3", "top_k": 3}}'
//! curl -s localhost:8080/metrics
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use super::protocol::{
    AnswerBatchRequest, AnswerRequest, ApiError, ApiResponse, ExplainRequest, MetricsResponse,
    MutateRequest, ReadyResponse, RetrieveMetrics, RetrieveRequest, RobustnessMetrics,
    RouteMetrics, PROTOCOL_VERSION,
};
use super::registry::{budget_for_timeouts, ModelRegistry};
use super::{faults, Answer, WorkerPool};

/// Server knobs. The defaults suit tests and small deployments; a real
/// box mostly wants more `conn_threads`.
#[derive(Copy, Clone, Debug)]
pub struct HttpServerConfig {
    /// Connection-handler threads (each also runs single answers on its
    /// own warm beam engine).
    pub conn_threads: usize,
    /// Worker threads per model for `/v1/answer_batch` fan-out.
    pub pool_workers: usize,
    /// Reject request bodies beyond this size (413 `payload_too_large`).
    pub max_body_bytes: usize,
    /// Total budget for reading one request (also the per-`read` socket
    /// timeout and the response write timeout). A client that stalls
    /// past it gets a 408 `request_timeout`.
    pub read_timeout: Duration,
    /// Default execution deadline for answer/explain requests that carry
    /// no explicit `timeout_ms` (0 = no default deadline). Exceeding it
    /// is a 504 `deadline_exceeded`.
    pub default_timeout_ms: u64,
    /// Load shedding: accepted connections beyond this many queued and
    /// unclaimed are answered `503 overloaded` + `Retry-After` without
    /// dispatching (0 = never shed).
    pub max_queue_depth: usize,
    /// Per-model in-flight cap for answer/batch/explain work (0 = no
    /// cap). Requests beyond it shed with `503 overloaded`, isolating a
    /// slow model from the rest of the registry.
    pub model_inflight_limit: usize,
    /// `Retry-After` hint (in ms, rounded up to seconds on the wire)
    /// attached to shed responses.
    pub retry_after_ms: u64,
    /// Whether the server is born ready (`GET /readyz` → 200). A live
    /// boot that still has warm-up to do after binding passes `false`
    /// and flips readiness with [`RunningServer::mark_ready`]; until
    /// then `/readyz` answers 503 + `Retry-After` (while `/healthz`
    /// liveness stays 200).
    pub start_ready: bool,
}

impl Default for HttpServerConfig {
    fn default() -> Self {
        HttpServerConfig {
            conn_threads: 4,
            pool_workers: 2,
            max_body_bytes: 4 << 20,
            read_timeout: Duration::from_secs(10),
            default_timeout_ms: 30_000,
            max_queue_depth: 1024,
            model_inflight_limit: 0,
            retry_after_ms: 1000,
            start_ready: true,
        }
    }
}

/// Route slots for the per-route counters (fixed set; `Other` absorbs
/// 404/405 traffic).
#[derive(Copy, Clone)]
enum Route {
    Answer,
    AnswerBatch,
    Explain,
    Retrieve,
    AdminMutate,
    AdminReplicate,
    AdminPromote,
    Models,
    Healthz,
    Readyz,
    Metrics,
    Other,
}

const ROUTE_NAMES: [&str; 12] = [
    "/v1/answer",
    "/v1/answer_batch",
    "/v1/explain",
    "/v1/retrieve",
    "/v1/admin/mutate",
    "/v1/admin/replicate",
    "/v1/admin/promote",
    "/v1/models",
    "/healthz",
    "/readyz",
    "/metrics",
    "(other)",
];

#[derive(Default)]
struct RouteCounter {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_ns: AtomicU64,
}

/// Per-server robustness counters (the process-global shard/worker
/// supervision counters live in [`faults`]).
#[derive(Default)]
struct RobustCounters {
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    degraded_answers: AtomicU64,
    request_timeouts: AtomicU64,
}

/// State shared by the accept thread, connection threads, and handles.
struct Shared {
    registry: Arc<ModelRegistry>,
    /// Batch fan-out pools, one per registered model.
    pools: HashMap<String, WorkerPool>,
    counters: [RouteCounter; 12],
    queue_depth: AtomicUsize,
    /// Per-model in-flight answer/batch/explain requests, for the
    /// `model_inflight_limit` bulkhead. Admin mutations are exempt — a
    /// saturated model must not be able to starve out the write path.
    inflight: HashMap<String, AtomicUsize>,
    /// Readiness for `GET /readyz` (false until snapshot load + WAL
    /// replay + warm-up finish; liveness `/healthz` is independent).
    ready: AtomicBool,
    robust: RobustCounters,
    /// Reranker activity for `/v1/retrieve`: path candidates examined and
    /// path contexts actually returned.
    retrieve_paths_considered: AtomicU64,
    retrieve_paths_selected: AtomicU64,
    stop: AtomicBool,
    cfg: HttpServerConfig,
}

/// RAII release of one per-model in-flight slot.
struct InflightSlot<'a>(&'a AtomicUsize);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Shared {
    fn observe(&self, route: Route, err: bool, elapsed: Duration) {
        let c = &self.counters[route as usize];
        c.requests.fetch_add(1, Ordering::Relaxed);
        if err {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        c.latency_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Bump the robustness counter matching a typed failure (called once
    /// per response on each error path — never double-counted).
    fn note_error(&self, e: &ApiError) {
        match e {
            ApiError::Overloaded { .. } => &self.robust.shed,
            ApiError::DeadlineExceeded { .. } => &self.robust.deadline_exceeded,
            ApiError::RequestTimeout { .. } => &self.robust.request_timeouts,
            _ => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Claim one in-flight slot for `model`, or shed with a typed 503
    /// when the bulkhead is full. `None` means no cap is configured.
    fn acquire_inflight(&self, model: &str) -> Result<Option<InflightSlot<'_>>, ApiError> {
        let limit = self.cfg.model_inflight_limit;
        let Some(counter) = (limit > 0).then(|| self.inflight.get(model)).flatten() else {
            return Ok(None);
        };
        if counter.fetch_add(1, Ordering::SeqCst) >= limit {
            counter.fetch_sub(1, Ordering::SeqCst);
            return Err(ApiError::Overloaded {
                retry_after_ms: self.cfg.retry_after_ms,
            });
        }
        Ok(Some(InflightSlot(counter)))
    }

    fn count_degraded(&self, answers: &[&super::protocol::WireAnswer]) {
        let n = answers.iter().filter(|a| a.degraded).count() as u64;
        if n > 0 {
            self.robust.degraded_answers.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn metrics(&self) -> MetricsResponse {
        MetricsResponse {
            protocol: PROTOCOL_VERSION.to_string(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            routes: ROUTE_NAMES
                .iter()
                .zip(&self.counters)
                .map(|(route, c)| RouteMetrics {
                    route: route.to_string(),
                    requests: c.requests.load(Ordering::Relaxed),
                    errors: c.errors.load(Ordering::Relaxed),
                    latency_ns_total: c.latency_ns.load(Ordering::Relaxed),
                })
                .collect(),
            models: self.registry.model_metrics(),
            robustness: RobustnessMetrics {
                shed: self.robust.shed.load(Ordering::Relaxed),
                deadline_exceeded: self.robust.deadline_exceeded.load(Ordering::Relaxed),
                degraded_answers: self.robust.degraded_answers.load(Ordering::Relaxed),
                shard_retries: faults::SHARD_RETRIES.load(Ordering::Relaxed),
                worker_respawns: faults::WORKER_RESPAWNS.load(Ordering::Relaxed),
                request_timeouts: self.robust.request_timeouts.load(Ordering::Relaxed),
            },
            retrieve: RetrieveMetrics {
                paths_considered: self.retrieve_paths_considered.load(Ordering::Relaxed),
                paths_selected: self.retrieve_paths_selected.load(Ordering::Relaxed),
            },
            mutation: self.registry.mutation_metrics(),
            replication: self.registry.replication_metrics(),
        }
    }

    fn readiness(&self) -> ReadyResponse {
        let ready = self.ready.load(Ordering::Relaxed);
        ReadyResponse {
            protocol: PROTOCOL_VERSION.to_string(),
            ready,
            status: if ready { "ready" } else { "starting" }.to_string(),
            models: self.registry.len(),
        }
    }
}

/// A bound-but-not-yet-serving server. [`Self::spawn`] starts the
/// threads and returns the running handle; [`Self::serve`] is the
/// foreground convenience the CLI uses.
pub struct HttpServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) over `registry`.
    /// Spawns one [`WorkerPool`] per registered model for batch fan-out.
    /// Also installs any `MMKGR_FAULTS` chaos plan (a malformed spec is
    /// a bind error — better to refuse than to serve without the faults
    /// the operator asked for).
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        cfg: HttpServerConfig,
    ) -> std::io::Result<HttpServer> {
        faults::init_from_env().map_err(std::io::Error::other)?;
        let listener = TcpListener::bind(addr)?;
        let pools = registry
            .model_names()
            .iter()
            .map(|name| {
                let (_, reasoner) = registry.get(Some(name)).expect("registered model resolves");
                (
                    name.clone(),
                    WorkerPool::new(Arc::clone(reasoner), cfg.pool_workers),
                )
            })
            .collect();
        let inflight = registry
            .model_names()
            .iter()
            .map(|name| (name.clone(), AtomicUsize::new(0)))
            .collect();
        Ok(HttpServer {
            listener,
            shared: Arc::new(Shared {
                registry,
                pools,
                counters: Default::default(),
                queue_depth: AtomicUsize::new(0),
                inflight,
                ready: AtomicBool::new(cfg.start_ready),
                robust: RobustCounters::default(),
                retrieve_paths_considered: AtomicU64::new(0),
                retrieve_paths_selected: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                cfg,
            }),
        })
    }

    /// The bound address (read the real port after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// Flip `/readyz` to 200. For servers bound with
    /// [`HttpServerConfig::start_ready`] false, call once boot work
    /// (snapshot load, WAL replay, warm-up) is done.
    pub fn mark_ready(&self) {
        self.shared.ready.store(true, Ordering::Release);
    }

    /// Start the accept thread and connection pool; returns immediately.
    pub fn spawn(self) -> RunningServer {
        let addr = self.local_addr();
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.shared.cfg.conn_threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || loop {
                    let stream = match rx.lock().unwrap().recv() {
                        Ok(s) => s,
                        Err(_) => return, // accept loop gone, queue drained
                    };
                    shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    handle_connection(stream, &shared);
                })
            })
            .collect();
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                match stream {
                    Ok(mut s) => {
                        // Admission control: past the queue bound, shed
                        // right here on the accept thread — a cheap 503
                        // + Retry-After instead of joining a queue the
                        // connection threads are not draining.
                        let depth = shared.queue_depth.load(Ordering::Relaxed);
                        if shared.cfg.max_queue_depth > 0 && depth >= shared.cfg.max_queue_depth {
                            let err = ApiError::Overloaded {
                                retry_after_ms: shared.cfg.retry_after_ms,
                            };
                            shared.note_error(&err);
                            shared.observe(Route::Other, true, Duration::ZERO);
                            let extra = err.extra_headers();
                            let response = ApiResponse::Error(err);
                            let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
                            let _ = write_response(
                                &mut s,
                                response.http_status(),
                                &response.body(),
                                &extra,
                            );
                            // Drain whatever request bytes are in
                            // flight before closing: dropping a socket
                            // with unread data turns the close into an
                            // RST, which can destroy the 503 sitting in
                            // the client's receive buffer.
                            let _ = s.shutdown(std::net::Shutdown::Write);
                            let _ = s.set_read_timeout(Some(Duration::from_millis(250)));
                            let mut sink = [0u8; 4096];
                            while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
                            continue;
                        }
                        shared.queue_depth.fetch_add(1, Ordering::Relaxed);
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // tx drops here: connection threads drain the queue and exit.
        });
        RunningServer {
            addr,
            shared: self.shared,
            accept: Some(accept),
            workers,
        }
    }

    /// Serve on the current thread until the process dies (the CLI's
    /// foreground mode).
    pub fn serve(self) {
        let running = self.spawn();
        running.join();
    }
}

/// Handle to a live server: address, metrics, graceful shutdown.
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl RunningServer {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters (same payload as `GET /metrics`).
    pub fn metrics(&self) -> MetricsResponse {
        self.shared.metrics()
    }

    /// Flip `GET /readyz` to 200. Call once warm-up after a
    /// `start_ready: false` bind is done (snapshot loaded, WAL
    /// replayed, caches primed).
    pub fn mark_ready(&self) {
        self.shared.ready.store(true, Ordering::Relaxed);
    }

    pub fn is_ready(&self) -> bool {
        self.shared.ready.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain queued connections, and join every thread.
    /// In-flight requests finish; the per-model worker pools join on
    /// drop.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept() with a throwaway connection. A
        // wildcard bind (0.0.0.0 / ::) is not connectable everywhere, so
        // aim the wake-up at loopback on the bound port.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(2));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Block until the server exits (it only does on [`Self::shutdown`]
    /// from another handle-holder, so this is effectively forever for
    /// the CLI).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ------------------------------------------------------------ connection

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    // A client that never reads its response must not pin this thread.
    let _ = stream.set_write_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let (status, body, extra) = match read_request(&mut stream, &shared.cfg) {
        Ok(req) => {
            // `/v1/admin/replicate` takes over the raw stream (snapshot
            // bytes, or a long-lived WAL frame tail) and writes its own
            // response; it cannot flow through the one-shot
            // request→response pipe below.
            if req.path.split('?').next().unwrap_or_default() == "/v1/admin/replicate"
                && req.method == "POST"
            {
                let started = Instant::now();
                let erred = super::replication::serve_replicate(
                    &mut stream,
                    &req.body,
                    &shared.registry,
                    &shared.stop,
                )
                .is_err();
                shared.observe(Route::AdminReplicate, erred, started.elapsed());
                return;
            }
            let started = Instant::now();
            let (route, response) = dispatch(&req, shared);
            let status = response.http_status();
            shared.observe(route, status >= 400, started.elapsed());
            (status, response.body(), response_extra_headers(&response))
        }
        Err(e) => {
            shared.note_error(&e);
            let extra = e.extra_headers();
            let response = ApiResponse::Error(e);
            shared.observe(Route::Other, true, Duration::ZERO);
            (response.http_status(), response.body(), extra)
        }
    };
    let _ = write_response(&mut stream, status, &body, &extra);
}

fn response_extra_headers(response: &ApiResponse) -> Vec<(&'static str, String)> {
    match response {
        ApiResponse::Error(e) => e.extra_headers(),
        // A not-yet-ready probe is a transient 503 like shedding: tell
        // the poller when to come back.
        ApiResponse::Ready(r) if !r.ready => vec![("Retry-After", "1".to_string())],
        _ => Vec::new(),
    }
}

struct HttpRequest {
    method: String,
    path: String,
    body: String,
}

/// Read one HTTP/1.1 request (request line, headers, `Content-Length`
/// body). Anything the parser can't stomach becomes a 400
/// [`ApiError::MalformedRequest`]; bodies beyond
/// [`HttpServerConfig::max_body_bytes`] a 413
/// [`ApiError::PayloadTooLarge`]; a client that stalls mid-headers or
/// mid-body a 408 [`ApiError::RequestTimeout`]. The whole request must
/// arrive within `read_timeout` *total* — the per-`read` socket timeout
/// alone would let a slow-loris client trickle one byte per timeout
/// window and pin a connection thread indefinitely.
fn read_request(stream: &mut TcpStream, cfg: &HttpServerConfig) -> Result<HttpRequest, ApiError> {
    let malformed = |detail: &str| ApiError::MalformedRequest {
        detail: detail.to_string(),
    };
    let stalled = |detail: &str| ApiError::RequestTimeout {
        detail: detail.to_string(),
    };
    let started = Instant::now();
    let max_body = cfg.max_body_bytes;
    // Read until the end of the header block.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 << 10 {
            return Err(malformed("header block exceeds 64 KiB"));
        }
        if started.elapsed() > cfg.read_timeout {
            return Err(stalled("headers stalled past the read deadline"));
        }
        let n = stream.read(&mut chunk).map_err(|e| {
            if is_timeout(&e) {
                stalled("socket read timed out reading headers")
            } else {
                malformed(&format!("read: {e}"))
            }
        })?;
        if n == 0 {
            return Err(malformed("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| malformed("headers are not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(malformed("bad request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(malformed("expected HTTP/1.x"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| malformed("bad Content-Length"))?;
            }
        }
    }
    if content_length > max_body {
        // Drain a bounded slice of the refused body so the client can
        // finish writing and actually read the 413 — closing with
        // unread data in the socket buffer turns the response into an
        // RST. Truly huge bodies still get cut off.
        let mut drained = buf.len().saturating_sub(header_end + 4);
        while drained < content_length.min(256 << 10) {
            if started.elapsed() > cfg.read_timeout {
                break;
            }
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
        return Err(ApiError::PayloadTooLarge {
            limit_bytes: max_body,
            got_bytes: content_length,
        });
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        if started.elapsed() > cfg.read_timeout {
            return Err(stalled("body stalled past the read deadline"));
        }
        let n = stream.read(&mut chunk).map_err(|e| {
            if is_timeout(&e) {
                stalled("socket read timed out reading the body")
            } else {
                malformed(&format!("read body: {e}"))
            }
        })?;
        if n == 0 {
            return Err(malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| malformed("body is not UTF-8"))?;
    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Was this I/O failure a socket-timeout expiry (vs a real transport
/// error)? Both kinds appear depending on platform.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[(&'static str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// -------------------------------------------------------------- dispatch

fn parse_body<T: serde::Deserialize>(body: &str) -> Result<T, ApiError> {
    serde_json::from_str(body).map_err(|e| ApiError::MalformedRequest {
        detail: e.to_string(),
    })
}

/// Route and execute one request. Handler panics (a reasoner bug, a
/// poisoned pool) become 500s instead of killing the connection thread.
fn dispatch(req: &HttpRequest, shared: &Shared) -> (Route, ApiResponse) {
    // Health checks and probes often append cache-busting query params;
    // routing only looks at the path component.
    let path = req.path.split('?').next().unwrap_or_default();
    let (route, expect_post) = match path {
        "/v1/answer" => (Route::Answer, true),
        "/v1/answer_batch" => (Route::AnswerBatch, true),
        "/v1/explain" => (Route::Explain, true),
        "/v1/retrieve" => (Route::Retrieve, true),
        "/v1/admin/mutate" => (Route::AdminMutate, true),
        // POST /v1/admin/replicate is intercepted in `handle_connection`
        // (stream takeover); only wrong-method requests reach this arm.
        "/v1/admin/replicate" => (Route::AdminReplicate, true),
        "/v1/admin/promote" => (Route::AdminPromote, true),
        "/v1/models" => (Route::Models, false),
        "/healthz" => (Route::Healthz, false),
        "/readyz" => (Route::Readyz, false),
        "/metrics" => (Route::Metrics, false),
        _ => {
            return (
                Route::Other,
                ApiResponse::Error(ApiError::UnknownRoute {
                    path: req.path.clone(),
                }),
            )
        }
    };
    let method_ok = if expect_post {
        req.method == "POST"
    } else {
        req.method == "GET"
    };
    if !method_ok {
        return (
            route,
            ApiResponse::Error(ApiError::MethodNotAllowed {
                path: req.path.clone(),
                allowed: if expect_post { "POST" } else { "GET" }.to_string(),
            }),
        );
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute(route, &req.body, shared)
    }));
    let response = match outcome {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) => ApiResponse::Error(e),
        Err(_) => ApiResponse::Error(ApiError::Internal {
            detail: "handler panicked".to_string(),
        }),
    };
    if let ApiResponse::Error(e) = &response {
        shared.note_error(e);
    }
    (route, response)
}

fn execute(route: Route, body: &str, shared: &Shared) -> Result<ApiResponse, ApiError> {
    let registry = &shared.registry;
    let default_ms = shared.cfg.default_timeout_ms;
    Ok(match route {
        Route::Answer => {
            let req: AnswerRequest = parse_body(body)?;
            let (name, _) = registry.get(req.model.as_deref())?;
            let _slot = shared.acquire_inflight(name)?;
            let wire = registry.answer_budgeted(&req, default_ms)?;
            shared.count_degraded(&[&wire]);
            ApiResponse::Answer(wire)
        }
        Route::AnswerBatch => {
            let req: AnswerBatchRequest = parse_body(body)?;
            let budget = budget_for_timeouts(req.queries.iter().map(|q| q.timeout_ms), default_ms)?;
            let (name, reasoner, queries) = registry.resolve_batch(&req)?;
            let _slot = shared.acquire_inflight(name)?;
            let answers: Vec<Answer> = match shared.pools.get(name) {
                Some(pool) => pool.answer_batch_within(&queries, budget)?,
                None => queries
                    .iter()
                    .map(|q| reasoner.answer_within(q, budget))
                    .collect::<Result<_, _>>()?,
            };
            let rendered = registry.render_batch(name, &answers);
            shared.count_degraded(&rendered.answers.iter().collect::<Vec<_>>());
            ApiResponse::AnswerBatch(rendered)
        }
        Route::Explain => {
            let req: ExplainRequest = parse_body(body)?;
            let (name, _) = registry.get(req.model.as_deref())?;
            let _slot = shared.acquire_inflight(name)?;
            ApiResponse::Explain(registry.explain_budgeted(&req, default_ms)?)
        }
        Route::Retrieve => {
            let req: RetrieveRequest = parse_body(body)?;
            let (name, _) = registry.get(req.model.as_deref())?;
            let _slot = shared.acquire_inflight(name)?;
            let resp = registry.retrieve_budgeted(&req, default_ms)?;
            shared
                .retrieve_paths_considered
                .fetch_add(resp.paths_considered, Ordering::Relaxed);
            shared
                .retrieve_paths_selected
                .fetch_add(resp.paths.len() as u64, Ordering::Relaxed);
            ApiResponse::Retrieve(resp)
        }
        // Admin mutations bypass the per-model bulkhead (they touch the
        // store, not a reasoner) but still run under the request budget
        // inside the registry pipeline.
        Route::AdminMutate => {
            let req: MutateRequest = parse_body(body)?;
            ApiResponse::Mutate(registry.mutate(&req, default_ms)?)
        }
        Route::AdminReplicate => {
            return Err(ApiError::Internal {
                detail: "replicate is handled at the connection layer".to_string(),
            })
        }
        // Promotion is a plain request/response admin call. `curl -X
        // POST` with no body is the common way to drive it, so an empty
        // body parses as the default request.
        Route::AdminPromote => {
            let _req: super::protocol::PromoteRequest = if body.trim().is_empty() {
                Default::default()
            } else {
                parse_body(body)?
            };
            ApiResponse::Promote(registry.promote()?)
        }
        Route::Models => ApiResponse::Models(registry.models()),
        Route::Healthz => ApiResponse::Health(registry.health()),
        Route::Readyz => ApiResponse::Ready(shared.readiness()),
        Route::Metrics => ApiResponse::Metrics(shared.metrics()),
        Route::Other => unreachable!("dispatch handles unknown routes"),
    })
}

// ----------------------------------------------------------- test client

/// Minimal blocking HTTP/1.1 client for tests, benches, and examples:
/// one request per connection (matching the server's `Connection:
/// close`), returns `(status, body)`.
///
/// A 503 carrying a `Retry-After` header (load shedding, a not-ready
/// `/readyz`) is retried **once** after the hinted backoff plus a small
/// jitter — enough for polite clients to ride out a transient
/// overload without synchronizing their retries into a thundering
/// herd. A second 503 is returned as-is. Callers riding out a longer
/// warm-up (a follower bootstrap holds `/readyz` at 503 until it
/// catches up to the primary) use [`request_with_retries`] with a
/// higher budget; callers that must observe the raw first response
/// (chaos tests asserting on shed counts) should speak to the socket
/// directly.
///
/// This is deliberately not a production client — it exists so the
/// workspace can drive the server without a crates.io HTTP stack.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    request_with_retries(addr, method, path, body, 1)
}

/// [`request`] with a configurable `Retry-After` budget: up to
/// `max_retries` re-sends, each only when the previous response was a
/// 503 that carried a `Retry-After` hint. A 503 without the header, any
/// other status, or an exhausted budget returns the last response
/// as-is. Each honored hint is capped at 5 s (a test client sleeping
/// minutes because a server asked is worse than returning the 503) and
/// gets a small decorrelating jitter.
pub fn request_with_retries(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    max_retries: u32,
) -> std::io::Result<(u16, String)> {
    let (mut status, mut head, mut resp_body) = request_once(addr, method, path, body)?;
    for _ in 0..max_retries {
        if status != 503 {
            break;
        }
        let Some(secs) = retry_after_secs(&head) else {
            break;
        };
        let jitter_ms = u64::from(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0),
        ) % 250;
        std::thread::sleep(Duration::from_secs(secs.min(5)) + Duration::from_millis(jitter_ms));
        (status, head, resp_body) = request_once(addr, method, path, body)?;
    }
    Ok((status, resp_body))
}

/// Parse the whole-seconds `Retry-After` value out of a response head.
pub(crate) fn retry_after_secs(head: &str) -> Option<u64> {
    head.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        if k.trim().eq_ignore_ascii_case("retry-after") {
            v.trim().parse().ok()
        } else {
            None
        }
    })
}

fn request_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    // A server may respond-and-close before consuming the whole body
    // (e.g. a 413); keep going and read whatever response made it out.
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut parts = text.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or_default().to_string();
    let body = parts.next().unwrap_or_default().to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, head, body))
}

#[cfg(test)]
mod tests {
    use super::super::protocol::{NameIndex, NamedQuery, WireAnswer};
    use super::super::{PolicyReasoner, Query, ServeConfig};
    use super::*;
    use crate::config::MmkgrConfig;
    use crate::model::MmkgrModel;
    use mmkgr_datagen::{generate, GenConfig};

    fn tiny_server() -> (mmkgr_kg::MultiModalKG, RunningServer) {
        let kg = generate(&GenConfig::tiny());
        let model = MmkgrModel::new(&kg, MmkgrConfig::quick(), None);
        let mut reg = ModelRegistry::new(NameIndex::synthetic(
            kg.num_entities(),
            kg.num_base_relations(),
        ));
        reg.register(Arc::new(PolicyReasoner::new(
            "MMKGR",
            model,
            Arc::new(kg.graph.clone()),
            ServeConfig::default().with_cache(64),
        )));
        reg.set_retriever(Arc::new(super::super::retrieve::Retriever::new(Arc::new(
            kg.graph.clone(),
        ))));
        let server = HttpServer::bind(
            ("127.0.0.1", 0),
            Arc::new(reg),
            HttpServerConfig {
                conn_threads: 2,
                pool_workers: 2,
                max_body_bytes: 8 << 10,
                ..HttpServerConfig::default()
            },
        )
        .expect("bind ephemeral port");
        (kg, server.spawn())
    }

    #[test]
    fn healthz_models_and_metrics_respond() {
        let (_, server) = tiny_server();
        let addr = server.addr();
        let (status, body) = request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");

        // Probes often cache-bust with query params; routing ignores them.
        let (status, _) = request(addr, "GET", "/healthz?ts=123", "").unwrap();
        assert_eq!(status, 200);

        let (status, body) = request(addr, "GET", "/v1/models", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"MMKGR\""), "{body}");
        assert!(body.contains("\"path\""), "{body}");

        let (status, body) = request(addr, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"queue_depth\""), "{body}");
        assert!(body.contains("/v1/answer"), "{body}");
        server.shutdown();
    }

    #[test]
    fn answer_over_http_matches_in_process() {
        let (kg, server) = tiny_server();
        let t = kg.split.test[0];
        let body = serde_json::to_string(&AnswerRequest {
            model: None,
            query: NamedQuery::new(format!("e{}", t.s.0), format!("r{}", t.r.0))
                .with_top_k(5)
                .with_beam(8)
                .with_steps(3),
        })
        .unwrap();
        let (status, resp) = request(server.addr(), "POST", "/v1/answer", &body).unwrap();
        assert_eq!(status, 200, "{resp}");
        let wire: WireAnswer = serde_json::from_str(&resp).unwrap();

        // In-process ground truth on an identical model.
        let model = MmkgrModel::new(&kg, MmkgrConfig::quick(), None);
        let reasoner = PolicyReasoner::new(
            "MMKGR",
            model,
            Arc::new(kg.graph.clone()),
            ServeConfig::default(),
        );
        use super::super::KgReasoner;
        let direct = reasoner.answer(
            &Query::new(t.s, t.r)
                .with_top_k(5)
                .with_beam(8)
                .with_steps(3),
        );
        assert_eq!(wire.ranked.len(), direct.ranked.len());
        for (w, d) in wire.ranked.iter().zip(&direct.ranked) {
            assert_eq!(w.entity, format!("e{}", d.entity.0));
            assert!((w.score - d.score).abs() < 1e-6);
        }
        server.shutdown();
    }

    #[test]
    fn malformed_and_unroutable_requests_get_typed_errors() {
        let (_, server) = tiny_server();
        let addr = server.addr();

        let (status, body) = request(addr, "POST", "/v1/answer", "{ not json").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("malformed_request"), "{body}");

        let (status, body) =
            request(addr, "POST", "/v1/answer", r#"{"query": {"source": "e0"}}"#).unwrap();
        assert_eq!(status, 400, "missing relation field is malformed: {body}");

        let (status, body) = request(addr, "GET", "/v2/answer", "").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("unknown_route"), "{body}");

        let (status, body) = request(addr, "GET", "/v1/answer", "").unwrap();
        assert_eq!(status, 405);
        assert!(body.contains("method_not_allowed"), "{body}");
        assert!(body.contains("POST"), "{body}");

        let (status, body) = request(
            addr,
            "POST",
            "/v1/answer",
            r#"{"query": {"source": "e999999", "relation": "r0"}}"#,
        )
        .unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("unknown_entity"), "{body}");

        let (status, body) = request(
            addr,
            "POST",
            "/v1/answer",
            r#"{"model": "GPT", "query": {"source": "e0", "relation": "r0"}}"#,
        )
        .unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("unknown_model"), "{body}");
        assert!(
            body.contains("MMKGR"),
            "available list names models: {body}"
        );

        let oversized = "x".repeat(16 << 10);
        let (status, body) = request(addr, "POST", "/v1/answer", &oversized).unwrap();
        assert_eq!(status, 413);
        assert!(body.contains("payload_too_large"), "{body}");

        // Errors are counted.
        let metrics = server.metrics();
        let answer_row = metrics
            .routes
            .iter()
            .find(|r| r.route == "/v1/answer")
            .unwrap();
        assert!(answer_row.errors >= 4, "{answer_row:?}");
        server.shutdown();
    }

    #[test]
    fn batch_route_runs_on_the_pool_and_matches_single_answers() {
        let (kg, server) = tiny_server();
        let queries: Vec<NamedQuery> = kg
            .split
            .test
            .iter()
            .take(5)
            .map(|t| {
                NamedQuery::new(format!("e{}", t.s.0), format!("r{}", t.r.0))
                    .with_top_k(4)
                    .with_beam(4)
                    .with_steps(2)
            })
            .collect();
        let body = serde_json::to_string(&AnswerBatchRequest {
            model: None,
            queries: queries.clone(),
        })
        .unwrap();
        let (status, resp) = request(server.addr(), "POST", "/v1/answer_batch", &body).unwrap();
        assert_eq!(status, 200, "{resp}");
        let batch: super::super::protocol::AnswerBatchResponse =
            serde_json::from_str(&resp).unwrap();
        assert_eq!(batch.answers.len(), queries.len());
        for (q, got) in queries.iter().zip(&batch.answers) {
            let body = serde_json::to_string(&AnswerRequest {
                model: None,
                query: q.clone(),
            })
            .unwrap();
            let (_, one) = request(server.addr(), "POST", "/v1/answer", &body).unwrap();
            let one: WireAnswer = serde_json::from_str(&one).unwrap();
            assert_eq!(*got, one, "batch answer equals single answer");
        }
        server.shutdown();
    }

    #[test]
    fn retrieve_over_http_returns_subgraph_and_counts_paths() {
        let (kg, server) = tiny_server();
        let t = kg.split.test[0];
        let body = format!(
            r#"{{"seeds": ["e{}"], "relation": "r{}", "hops": 2, "max_paths": 4}}"#,
            t.s.0, t.r.0
        );
        let (status, resp) = request(server.addr(), "POST", "/v1/retrieve", &body).unwrap();
        assert_eq!(status, 200, "{resp}");
        let wire: super::super::protocol::RetrieveResponse = serde_json::from_str(&resp).unwrap();
        assert!(!wire.subgraph.entities.is_empty(), "{resp}");
        assert!(!wire.paths.is_empty(), "{resp}");

        let (status, body) =
            request(server.addr(), "POST", "/v1/retrieve", r#"{"seeds": []}"#).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("invalid_retrieve_params"), "{body}");

        let metrics = server.metrics();
        assert!(metrics.retrieve.paths_selected >= wire.paths.len() as u64);
        assert!(metrics.retrieve.paths_considered >= metrics.retrieve.paths_selected);
        let row = metrics
            .routes
            .iter()
            .find(|r| r.route == "/v1/retrieve")
            .unwrap();
        assert_eq!(row.requests, 2, "{row:?}");
        assert_eq!(row.errors, 1, "{row:?}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let (_, server) = tiny_server();
        let addr = server.addr();
        let (status, _) = request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
        // The port stops answering once the server is down.
        assert!(request(addr, "GET", "/healthz", "").is_err());
    }
}
