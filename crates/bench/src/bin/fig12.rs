//! Figure 12 — discount-factor (λ1, λ2, λ3) combinations for the 3D
//! reward. The paper reports the best Hits@1 at (0.1, 0.8, 0.1) with
//! performance decaying as λ1 grows (large destination rewards trap the
//! agent in locally-optimal paths unless diversity compensates).

use mmkgr_bench::Stopwatch;
use mmkgr_eval::{pct, save_json, Dataset, Harness, HarnessConfig, ScaleChoice, Table};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    // λ1 increasing across combos, λs sum to 1 (the paper's bar groups).
    let combos: Vec<(f32, f32, f32)> = vec![
        (0.1, 0.8, 0.1),
        (0.2, 0.6, 0.2),
        (0.3, 0.5, 0.2),
        (0.4, 0.3, 0.3),
    ];
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{}", h.kg.stats());
        let mut table = Table::new(
            format!("Fig. 12 — λ combinations on {}", dataset.name()),
            &["(λ1, λ2, λ3)", "Hits@1", "MRR"],
        );
        for &(l1, l2, l3) in &combos {
            let (trainer, _) = h.train_mmkgr_with(|c| c.lambda = (l1, l2, l3), 0);
            let r = h.eval_policy(&trainer.model);
            sw.lap(&format!("λ=({l1},{l2},{l3})"));
            table.push_row(vec![
                format!("({l1}, {l2}, {l3})"),
                pct(r.hits1),
                pct(r.mrr),
            ]);
            dump.push((dataset.name().to_string(), (l1, l2, l3), r.hits1, r.mrr));
        }
        table.print();
    }
    save_json("fig12", &dump);
}
