//! WAL-shipping replication: primary/follower read scaling over the
//! serving stack's existing durability machinery.
//!
//! The design adds no second log and no second wire format. The
//! primary's crash-safe WAL (see [`mmkgr_kg::store::wal`]) *is* the
//! replication stream: committed frames are shipped verbatim — length,
//! CRC32, payload — over a long-lived HTTP connection, and the follower
//! appends them to its own WAL through the same
//! [`LiveGraphStore`](super::mutation::LiveGraphStore) pipeline a local
//! mutation takes. Epoch-versioned reads, frontier-cache invalidation,
//! and compaction therefore work unchanged on both roles, and a
//! follower's WAL replay after a restart is indistinguishable from a
//! primary's.
//!
//! ```text
//!            POST /v1/admin/replicate {"mode":"snapshot"}
//!   follower ───────────────────────────────────────────▶ primary
//!            ◀───── raw .mmkg bytes (CRC-verified at open) ─────
//!            POST /v1/admin/replicate {"mode":"tail","from_seq":N}
//!            ◀───── MWAL preamble + committed frames, live ─────
//! ```
//!
//! **Bootstrap** (`mmkgr serve --replicate-from <addr>`): fetch the
//! primary's current `.mmkg` snapshot, boot from it exactly like a
//! local snapshot boot (WAL replay included), then tail frames from the
//! local WAL's `next_seq` and flip `/readyz` once caught up to the
//! primary's head at connect time (`X-Mmkgr-Head-Seq`).
//!
//! **Committed-only shipping**: the tail never emits a frame with
//! `seq >=` the primary's fsync watermark
//! ([`LiveGraphStore::committed_seq`](super::mutation::LiveGraphStore::committed_seq)),
//! so a follower can never observe a mutation the primary could still
//! lose in a crash — zero committed-frame loss and no phantom frames,
//! by construction.
//!
//! **Promotion** (`POST /v1/admin/promote`): flips the role flag, which
//! simultaneously stops the tailer, fences late frames from the old
//! primary (see [`super::registry::ModelRegistry::apply_replicated`]),
//! and opens `/v1/admin/mutate` for writes at the fenced `seq`
//! watermark.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::faults;
use super::http::{retry_after_secs, write_response};
use super::protocol::{ApiError, ApiResponse, ReplicateRequest, ReplicationMetrics};
use super::registry::ModelRegistry;
use mmkgr_kg::store::wal;
use mmkgr_kg::WalRecord;

/// How long the shipper sleeps when the WAL has no new committed frames
/// (and how often it re-checks the server stop flag).
const SHIP_POLL: Duration = Duration::from_millis(10);

/// The error detail prefix a tail request gets when `from_seq` predates
/// the oldest retained WAL frame (compaction folded it into the
/// snapshot). The bundled follower matches on it to fall back to a full
/// snapshot re-bootstrap; see [`is_snapshot_required`].
const SNAPSHOT_REQUIRED: &str = "snapshot required";

/// Response header carrying the primary's committed head `seq` on both
/// replicate modes — the follower's "caught up" target.
const HEAD_SEQ_HEADER: &str = "X-Mmkgr-Head-Seq";

/// Where a replication-capable node's shippable artifacts live. Both
/// roles have one (a follower keeps its own snapshot + WAL, so a
/// promoted follower can immediately serve the next bootstrap).
#[derive(Clone, Debug)]
pub struct ReplicaSource {
    /// The `.mmkg` registry snapshot served to bootstrapping followers.
    pub snapshot: PathBuf,
    /// The WAL file whose committed frames are tailed.
    pub wal: PathBuf,
}

/// Shared replication role + counters, attached to the
/// [`ModelRegistry`] of every node that participates in a topology.
pub struct ReplicationState {
    /// `true` while this node is a read-only follower; flipped (once,
    /// irreversibly) by [`Self::promote`].
    follower: AtomicBool,
    /// The primary this node bootstrapped from (`""` on a born-primary;
    /// kept after promotion for the metrics history).
    primary: String,
    source: Option<ReplicaSource>,
    frames_shipped: AtomicU64,
    reconnects: AtomicU64,
    /// Follower watermarks, both in "next seq" convention: `received` is
    /// the highest target the primary has advertised or shipped;
    /// `applied` is the follower's committed seq. Lag is the gap.
    received: AtomicU64,
    applied: AtomicU64,
    /// Set once the tailer first reaches its session's head target; the
    /// boot path gates `mark_ready()` on this.
    caught_up: AtomicBool,
}

impl ReplicationState {
    /// A writable primary shipping `source` to followers.
    pub fn primary(source: ReplicaSource) -> Self {
        ReplicationState {
            follower: AtomicBool::new(false),
            primary: String::new(),
            source: Some(source),
            frames_shipped: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            received: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            caught_up: AtomicBool::new(true),
        }
    }

    /// A read-only follower tailing `primary_addr`, keeping its own
    /// shippable `source`.
    pub fn follower(primary_addr: impl Into<String>, source: ReplicaSource) -> Self {
        ReplicationState {
            follower: AtomicBool::new(true),
            primary: primary_addr.into(),
            source: Some(source),
            frames_shipped: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            received: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            caught_up: AtomicBool::new(false),
        }
    }

    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::Acquire)
    }

    /// The primary's address for [`ApiError::NotPrimary`] redirects.
    pub fn primary_addr(&self) -> String {
        if self.is_follower() {
            self.primary.clone()
        } else {
            String::new()
        }
    }

    /// Flip follower → primary. Returns `true` if this call did the
    /// flip (`false` = already primary, the idempotent retry case). The
    /// single store is the whole fence: the tailer observes it and
    /// stops, and [`ModelRegistry::apply_replicated`] refuses frames
    /// from then on.
    pub fn promote(&self) -> bool {
        self.caught_up.store(true, Ordering::Release);
        self.follower.swap(false, Ordering::AcqRel)
    }

    /// Has the tailer reached the head target of its current session at
    /// least once? (Born-primaries are trivially caught up.)
    pub fn is_caught_up(&self) -> bool {
        self.caught_up.load(Ordering::Acquire)
    }

    pub fn metrics(&self) -> ReplicationMetrics {
        let received = self.received.load(Ordering::Relaxed);
        let applied = self.applied.load(Ordering::Relaxed);
        ReplicationMetrics {
            role: if self.is_follower() {
                "follower"
            } else {
                "primary"
            }
            .to_string(),
            follower_lag_seq: received.saturating_sub(applied),
            frames_shipped: self.frames_shipped.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }

    fn source(&self) -> Option<&ReplicaSource> {
        self.source.as_ref()
    }

    fn note_shipped(&self) {
        self.frames_shipped.fetch_add(1, Ordering::Relaxed);
    }

    fn note_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Raise the `received` watermark (never lowers it).
    fn note_received(&self, next_seq: u64) {
        self.received.fetch_max(next_seq, Ordering::Relaxed);
    }

    fn note_applied(&self, next_seq: u64) {
        self.applied.fetch_max(next_seq, Ordering::Relaxed);
        if next_seq >= self.received.load(Ordering::Relaxed) {
            self.caught_up.store(true, Ordering::Release);
        }
    }
}

// ------------------------------------------------------- primary (ship)

/// Serve one `POST /v1/admin/replicate` connection. Called from the
/// HTTP connection handler with the raw stream (this endpoint writes
/// its own response: a JSON error, a `Content-Length`-framed snapshot
/// body, or an unbounded frame stream). The returned `Result` only
/// feeds the route's error counter.
pub(crate) fn serve_replicate(
    stream: &mut TcpStream,
    body: &str,
    registry: &ModelRegistry,
    stop: &AtomicBool,
) -> Result<(), ApiError> {
    match replicate_inner(stream, body, registry, stop) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Best-effort: the stream may already be half-written or
            // gone; the error still counts against the route either way.
            let response = ApiResponse::Error(e.clone());
            let _ = write_response(stream, response.http_status(), &response.body(), &[]);
            Err(e)
        }
    }
}

fn replicate_inner(
    stream: &mut TcpStream,
    body: &str,
    registry: &ModelRegistry,
    stop: &AtomicBool,
) -> Result<(), ApiError> {
    let req: ReplicateRequest =
        serde_json::from_str(body).map_err(|e| ApiError::MalformedRequest {
            detail: e.to_string(),
        })?;
    let source = registry
        .replication()
        .and_then(|r| r.source())
        .cloned()
        .ok_or_else(|| ApiError::Internal {
            detail: "this server is not a replication source (serve from --snapshot with --wal)"
                .to_string(),
        })?;
    let live = registry.live().ok_or_else(|| ApiError::Internal {
        detail: "this server has no live store to replicate from".to_string(),
    })?;
    let rep = registry.replication().expect("source implies state");
    match req.mode.as_str() {
        "snapshot" => ship_snapshot(stream, &source.snapshot, live.committed_seq()),
        "tail" => ship_tail(stream, &source.wal, req.from_seq, registry, rep, stop),
        other => Err(ApiError::MalformedRequest {
            detail: format!("replicate mode must be \"snapshot\" or \"tail\", got {other:?}"),
        }),
    }
}

/// Stream the current `.mmkg` snapshot file verbatim. The fd is opened
/// before stat-ing so a concurrent compaction rewrite (tmp + rename)
/// cannot tear the body: the follower reads the generation this fd
/// pins, and every section's CRC32 is re-verified when it opens the
/// file.
fn ship_snapshot(stream: &mut TcpStream, path: &Path, head_seq: u64) -> Result<(), ApiError> {
    let mut file = File::open(path).map_err(|e| ApiError::Internal {
        detail: format!("open snapshot {}: {e}", path.display()),
    })?;
    let len = file
        .metadata()
        .map_err(|e| ApiError::Internal {
            detail: format!("stat snapshot: {e}"),
        })?
        .len();
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: {len}\r\n{HEAD_SEQ_HEADER}: {head_seq}\r\nConnection: close\r\n\r\n",
    );
    let io_err = |e: io::Error| ApiError::Internal {
        detail: format!("ship snapshot: {e}"),
    };
    stream.write_all(head.as_bytes()).map_err(io_err)?;
    io::copy(&mut file, stream).map_err(io_err)?;
    stream.flush().map_err(io_err)
}

/// Stream committed WAL frames from `from_seq`, live, until the client
/// hangs up or the server stops. Wire format after the response head:
/// the 8-byte `MWAL` preamble, then raw frames — exactly the bytes a
/// local WAL holds, so the follower side is the same incremental
/// decoder the recovery path uses.
fn ship_tail(
    stream: &mut TcpStream,
    wal_path: &Path,
    from_seq: u64,
    registry: &ModelRegistry,
    rep: &ReplicationState,
    stop: &AtomicBool,
) -> Result<(), ApiError> {
    let live = registry.live().expect("caller checked");
    let committed = live.committed_seq();
    if from_seq > committed {
        return Err(ApiError::MalformedRequest {
            detail: format!("from_seq {from_seq} is ahead of the primary head {committed}"),
        });
    }
    let mut file = open_wal_checked(wal_path)?;
    if from_seq < committed && !frame_available(&mut file, from_seq)? {
        // The requested frames were folded into the snapshot by a
        // compaction; the follower must re-bootstrap.
        return Err(ApiError::Internal {
            detail: format!(
                "{SNAPSHOT_REQUIRED}: from_seq {from_seq} predates the oldest retained WAL frame"
            ),
        });
    }
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n{HEAD_SEQ_HEADER}: {committed}\r\nConnection: close\r\n\r\n",
    );
    let done = |_e: io::Error| ApiError::Internal {
        // A follower hanging up mid-tail is the normal end of a
        // session, but it still closes this connection with an error
        // status internally; the caller only counts it.
        detail: "tail connection closed".to_string(),
    };
    stream.write_all(head.as_bytes()).map_err(done)?;
    stream.write_all(&wal::header_bytes()).map_err(done)?;
    stream.flush().map_err(done)?;

    let mut pos = wal::HEADER_LEN;
    file.seek(SeekFrom::Start(pos)).map_err(done)?;
    let mut buf: Vec<u8> = Vec::new();
    let mut cursor = from_seq; // next seq to ship
    let mut chunk = [0u8; 64 << 10];
    while !stop.load(Ordering::Relaxed) {
        let len = file.metadata().map_err(done)?.len();
        if len < pos {
            // Compaction truncated the WAL under us. Frames resume at
            // `next_seq` with no gap, so rewind and keep decoding; the
            // seq cursor drops anything we already shipped.
            file.seek(SeekFrom::Start(wal::HEADER_LEN)).map_err(done)?;
            pos = wal::HEADER_LEN;
            buf.clear();
            continue;
        }
        let mut progressed = false;
        if len > pos {
            let n = file.read(&mut chunk).map_err(done)?;
            if n > 0 {
                buf.extend_from_slice(&chunk[..n]);
                pos += n as u64;
                progressed = true;
            }
        }
        // Ship every complete, fsync-durable frame in the buffer.
        loop {
            let (rec, used) = match wal::decode_frame(&buf) {
                Ok(Some(hit)) => hit,
                Ok(None) => break, // incomplete tail — wait for more bytes
                Err(e) => {
                    // Interior corruption: stop shipping rather than
                    // relay bad frames (the primary's own recovery owns
                    // this file's fate).
                    return Err(ApiError::Internal {
                        detail: format!("wal corrupt under tail: {e}"),
                    });
                }
            };
            if rec.seq >= live.committed_seq() {
                break; // written but not yet fsynced — never ship early
            }
            if rec.seq >= cursor {
                if rec.seq > cursor {
                    return Err(ApiError::Internal {
                        detail: format!("wal gap under tail: jumped to seq {}", rec.seq),
                    });
                }
                stream.write_all(&buf[..used]).map_err(done)?;
                stream.flush().map_err(done)?;
                rep.note_shipped();
                cursor = rec.seq + 1;
            }
            buf.drain(..used);
            progressed = true;
        }
        if !progressed {
            std::thread::sleep(SHIP_POLL);
        }
    }
    Ok(())
}

fn open_wal_checked(path: &Path) -> Result<File, ApiError> {
    let io_err = |detail: String| ApiError::Internal { detail };
    let mut file =
        File::open(path).map_err(|e| io_err(format!("open wal {}: {e}", path.display())))?;
    let mut head = [0u8; wal::HEADER_LEN as usize];
    file.read_exact(&mut head)
        .map_err(|e| io_err(format!("read wal header: {e}")))?;
    wal::check_header(&head).map_err(|e| io_err(format!("bad wal header: {e}")))?;
    Ok(file)
}

/// Is a frame with exactly `from_seq` still present in the WAL file?
/// (Frames are contiguous, so it is enough to check the first one.)
/// Leaves the file positioned after the header.
fn frame_available(file: &mut File, from_seq: u64) -> Result<bool, ApiError> {
    file.seek(SeekFrom::Start(wal::HEADER_LEN))
        .map_err(|e| ApiError::Internal {
            detail: format!("seek wal: {e}"),
        })?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let first = loop {
        match wal::decode_frame(&buf) {
            Ok(Some((rec, _))) => break Some(rec.seq),
            Ok(None) => {}
            // A torn tail at the very first frame: treat as no frames.
            Err(_) => break None,
        }
        match file.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => {
                return Err(ApiError::Internal {
                    detail: format!("read wal: {e}"),
                })
            }
        }
    };
    file.seek(SeekFrom::Start(wal::HEADER_LEN))
        .map_err(|e| ApiError::Internal {
            detail: format!("seek wal: {e}"),
        })?;
    Ok(first.is_some_and(|s| s <= from_seq))
}

// ------------------------------------------------------ follower (tail)

/// Does this error text carry the primary's "re-bootstrap" signal?
pub fn is_snapshot_required(detail: &str) -> bool {
    detail.contains(SNAPSHOT_REQUIRED)
}

/// Fetch the primary's current `.mmkg` snapshot into `dest`. Binary
/// bytes, so this cannot go through the text-only
/// [`super::http::request`] client. 503 + `Retry-After` (the primary
/// still warming up, or shedding) is honored for up to `max_retries`
/// rounds — the long-bootstrap loop the bundled client's single retry
/// was too impatient for. Returns the primary's committed head seq.
pub fn fetch_snapshot(primary: &str, dest: &Path, max_retries: u32) -> io::Result<u64> {
    let body = r#"{"mode": "snapshot"}"#;
    let mut attempt = 0u32;
    loop {
        let (status, head, mut stream, prefix) = replicate_head(primary, body)?;
        if status == 503 && attempt < max_retries {
            if let Some(secs) = retry_after_secs(&head) {
                attempt += 1;
                drop(stream);
                std::thread::sleep(Duration::from_secs(secs.min(5)) + faults::jitter(250));
                continue;
            }
        }
        if status != 200 {
            let mut rest = prefix;
            let _ = stream.read_to_end(&mut rest);
            return Err(io::Error::other(format!(
                "snapshot fetch: HTTP {status}: {}",
                String::from_utf8_lossy(&rest)
            )));
        }
        let content_length: u64 = header_value(&head, "content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| io::Error::other("snapshot fetch: missing Content-Length"))?;
        let head_seq: u64 = header_value(&head, &HEAD_SEQ_HEADER.to_ascii_lowercase())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        // Write via a sibling tmp so a failed fetch never leaves a
        // half-snapshot where the boot path would find it.
        let tmp = dest.with_extension("mmkg.fetch");
        let mut out = File::create(&tmp)?;
        out.write_all(&prefix)?;
        // Connection: close — the body runs to EOF and is exactly
        // Content-Length bytes; anything else is a torn transfer.
        let got = prefix.len() as u64 + io::copy(&mut stream, &mut out)?;
        if got != content_length {
            let _ = std::fs::remove_file(&tmp);
            return Err(io::Error::other(format!(
                "snapshot fetch: truncated body ({got} of {content_length} bytes)"
            )));
        }
        out.sync_data()?;
        drop(out);
        std::fs::rename(&tmp, dest)?;
        return Ok(head_seq);
    }
}

/// A live tail session: frames decoded off the socket one at a time.
pub struct TailSession {
    stream: TcpStream,
    buf: Vec<u8>,
    /// The primary's committed head at connect — applying up to here
    /// means "caught up" for readiness purposes.
    pub head_seq: u64,
}

/// Open a tail of `primary` starting at `from_seq` (the follower's own
/// WAL `next_seq`). Fails with an [`is_snapshot_required`] error text
/// when the primary has compacted past `from_seq`.
pub fn connect_tail(primary: &str, from_seq: u64) -> io::Result<TailSession> {
    let body = format!(r#"{{"mode": "tail", "from_seq": {from_seq}}}"#);
    let (status, head, mut stream, mut prefix) = replicate_head(primary, &body)?;
    if status != 200 {
        let _ = stream.read_to_end(&mut prefix);
        return Err(io::Error::other(format!(
            "tail connect: HTTP {status}: {}",
            String::from_utf8_lossy(&prefix)
        )));
    }
    let head_seq: u64 = header_value(&head, &HEAD_SEQ_HEADER.to_ascii_lowercase())
        .and_then(|v| v.parse().ok())
        .unwrap_or(from_seq);
    // The stream opens with the standard WAL preamble.
    let mut buf = prefix;
    let mut chunk = [0u8; 4096];
    while buf.len() < wal::HEADER_LEN as usize {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::other("tail connect: stream closed in preamble"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    wal::check_header(&buf[..wal::HEADER_LEN as usize])
        .map_err(|e| io::Error::other(format!("tail connect: bad preamble: {e}")))?;
    buf.drain(..wal::HEADER_LEN as usize);
    // A short read timeout keeps the tailer responsive to promotion and
    // shutdown even when the primary is idle.
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    Ok(TailSession {
        stream,
        buf,
        head_seq,
    })
}

impl TailSession {
    /// The next shipped frame. `Ok(None)` = no complete frame within
    /// the read-timeout window (poll again after checking flags);
    /// `Err` = the connection is gone (reconnect).
    pub fn next_record(&mut self) -> io::Result<Option<WalRecord>> {
        loop {
            match wal::decode_frame(&self.buf) {
                Ok(Some((rec, used))) => {
                    self.buf.drain(..used);
                    return Ok(Some(rec));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::other(format!("tail stream corrupt: {e}"))),
            }
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "primary closed the tail",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Run the follower tail loop until promotion (or a fence error): apply
/// every shipped frame through the registry (same WAL-then-publish path
/// and cache invalidation as a local mutation), reconnect with jittered
/// backoff on primary loss. Returns when the node stops being a
/// follower; spawn it on a dedicated thread.
pub fn run_tailer(registry: Arc<ModelRegistry>, rep: Arc<ReplicationState>) {
    let mut backoff_ms = 100u64;
    while rep.is_follower() {
        let Some(live) = registry.live() else { return };
        let from_seq = live.committed_seq();
        match connect_tail(&rep.primary, from_seq) {
            Ok(mut session) => {
                backoff_ms = 100;
                rep.note_received(session.head_seq);
                rep.note_applied(from_seq);
                loop {
                    if !rep.is_follower() {
                        return;
                    }
                    match session.next_record() {
                        Ok(Some(rec)) => {
                            rep.note_received(rec.seq + 1);
                            match registry.apply_replicated(&rec) {
                                Ok(_) => {
                                    let live = registry.live().expect("checked above");
                                    rep.note_applied(live.committed_seq());
                                }
                                // Fenced (promotion won the race) or a
                                // gap the primary should never produce:
                                // stop applying either way.
                                Err(e) => {
                                    eprintln!("replication tail stopped: {e}");
                                    if rep.is_follower() {
                                        break; // gap: reconnect and re-request
                                    }
                                    return;
                                }
                            }
                        }
                        Ok(None) => continue, // idle window — re-check flags
                        Err(_) => break,      // primary gone — reconnect
                    }
                }
            }
            Err(e) => {
                if is_snapshot_required(&e.to_string()) {
                    // The primary compacted past our position while we
                    // were away; a restart re-bootstraps from its
                    // current snapshot. Keep serving (stale) reads.
                    eprintln!("replication tail: {e}; restart this follower to re-bootstrap");
                    std::thread::sleep(Duration::from_secs(5));
                }
            }
        }
        if !rep.is_follower() {
            return;
        }
        rep.note_reconnect();
        std::thread::sleep(Duration::from_millis(backoff_ms) + faults::jitter(backoff_ms));
        backoff_ms = (backoff_ms * 2).min(5_000);
    }
}

// --------------------------------------------------------- raw client IO

/// POST `/v1/admin/replicate` and read just the response head. Returns
/// `(status, head, stream, body_prefix)` — the prefix is whatever body
/// bytes arrived in the same reads as the head.
#[allow(clippy::type_complexity)]
fn replicate_head(primary: &str, body: &str) -> io::Result<(u16, String, TcpStream, Vec<u8>)> {
    let mut stream = TcpStream::connect(primary)?;
    stream.set_nodelay(true)?;
    let head = format!(
        "POST /v1/admin/replicate HTTP/1.1\r\nHost: {primary}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > 64 << 10 {
            return Err(io::Error::other("replicate: response head exceeds 64 KiB"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::other("replicate: connection closed in head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let prefix = buf[header_end + 4..].to_vec();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, head, stream, prefix))
}

/// Case-insensitive single-header lookup in a raw response head.
fn header_value<'a>(head: &'a str, name_lower: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        (k.trim().to_ascii_lowercase() == name_lower).then(|| v.trim())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_state_tracks_roles_and_lag() {
        let src = ReplicaSource {
            snapshot: PathBuf::from("/tmp/x.mmkg"),
            wal: PathBuf::from("/tmp/x.wal"),
        };
        let p = ReplicationState::primary(src.clone());
        assert!(!p.is_follower());
        assert!(p.is_caught_up());
        assert_eq!(p.metrics().role, "primary");
        assert_eq!(p.primary_addr(), "");

        let f = ReplicationState::follower("127.0.0.1:9000", src);
        assert!(f.is_follower());
        assert!(!f.is_caught_up());
        assert_eq!(f.primary_addr(), "127.0.0.1:9000");
        f.note_received(10);
        f.note_applied(4);
        let m = f.metrics();
        assert_eq!(m.role, "follower");
        assert_eq!(m.follower_lag_seq, 6);
        assert!(!f.is_caught_up());
        f.note_applied(10);
        assert!(f.is_caught_up());
        assert_eq!(f.metrics().follower_lag_seq, 0);

        // Promotion flips exactly once and never rewinds.
        assert!(f.promote());
        assert!(!f.is_follower());
        assert!(!f.promote());
        assert_eq!(f.metrics().role, "primary");
        assert_eq!(f.primary_addr(), "", "a promoted node is its own primary");
    }

    #[test]
    fn snapshot_required_detail_roundtrips() {
        let detail =
            format!("{SNAPSHOT_REQUIRED}: from_seq 3 predates the oldest retained WAL frame");
        assert!(is_snapshot_required(&detail));
        assert!(!is_snapshot_required("replication gap: got seq 9"));
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let head = "HTTP/1.1 200 OK\r\nContent-Length: 42\r\nX-Mmkgr-Head-Seq: 7";
        assert_eq!(header_value(head, "content-length"), Some("42"));
        assert_eq!(header_value(head, "x-mmkgr-head-seq"), Some("7"));
        assert_eq!(header_value(head, "retry-after"), None);
    }
}
