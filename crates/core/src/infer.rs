//! Beam-search inference and ranking evaluation.
//!
//! RL reasoners rank candidates by the best path log-probability that
//! reaches them within `T` steps (the MINERVA evaluation protocol the
//! paper follows). Entities no beam reaches rank pessimistically last.

use std::collections::HashMap;

use mmkgr_kg::{Edge, EntityId, KnowledgeGraph, RelationId, TripleSet};

use crate::mdp::{Env, RolloutQuery, RolloutState};
use crate::model::MmkgrModel;

/// The raw (tape-free) interface beam search drives. [`MmkgrModel`]
/// implements it; the `mmkgr-baselines` RL walkers (MINERVA, RLH, FIRE)
/// implement it too, so every multi-hop model shares one evaluation
/// protocol.
pub trait RolloutPolicy {
    /// Width of the recurrent history state.
    fn hidden_dim(&self) -> usize;

    /// Build the recurrent input for a step.
    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32>;

    /// Advance the recurrent state in place.
    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]);

    /// Action distribution for one state (must sum to 1).
    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    );
}

impl<P: RolloutPolicy + ?Sized> RolloutPolicy for &P {
    fn hidden_dim(&self) -> usize {
        (**self).hidden_dim()
    }

    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32> {
        (**self).lstm_input(last_rel, current)
    }

    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]) {
        (**self).lstm_step(x, h, c)
    }

    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        (**self).action_probs(source, h, rq, actions, out)
    }
}

impl<P: RolloutPolicy + ?Sized> RolloutPolicy for Box<P> {
    fn hidden_dim(&self) -> usize {
        (**self).hidden_dim()
    }

    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32> {
        (**self).lstm_input(last_rel, current)
    }

    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]) {
        (**self).lstm_step(x, h, c)
    }

    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        (**self).action_probs(source, h, rq, actions, out)
    }
}

impl RolloutPolicy for MmkgrModel {
    fn hidden_dim(&self) -> usize {
        self.cfg.struct_dim
    }

    fn lstm_input(&self, last_rel: RelationId, current: EntityId) -> Vec<f32> {
        self.raw_lstm_input(last_rel, current)
    }

    fn lstm_step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]) {
        self.raw_lstm_step(x, h, c)
    }

    fn action_probs(
        &self,
        source: EntityId,
        h: &[f32],
        rq: RelationId,
        actions: &[Edge],
        out: &mut Vec<f32>,
    ) {
        self.raw_state_probs(source, h, rq, actions, out)
    }
}

/// A completed beam: where it ended and how it got there.
#[derive(Clone, Debug)]
pub struct BeamPath {
    pub entity: EntityId,
    pub logp: f32,
    /// Non-NO_OP hops.
    pub hops: usize,
    pub relations: Vec<RelationId>,
}

#[derive(Clone)]
struct Beam {
    current: EntityId,
    last_rel: RelationId,
    hops: usize,
    h: Vec<f32>,
    c: Vec<f32>,
    logp: f32,
    rels: Vec<RelationId>,
}

/// Beam search from `(source, relation)` for `steps` steps.
pub fn beam_search<P: RolloutPolicy>(
    model: &P,
    graph: &KnowledgeGraph,
    source: EntityId,
    relation: RelationId,
    width: usize,
    steps: usize,
) -> Vec<BeamPath> {
    let env = Env::new(graph, false);
    let no_op = env.no_op();
    let ds = model.hidden_dim();
    let mut beams = vec![Beam {
        current: source,
        last_rel: no_op,
        hops: 0,
        h: vec![0.0; ds],
        c: vec![0.0; ds],
        logp: 0.0,
        rels: Vec::new(),
    }];
    let mut action_buf: Vec<Edge> = Vec::new();
    let mut prob_buf: Vec<f32> = Vec::new();
    // A scratch state for Env::fill_actions (no masking at eval time).
    let query = RolloutQuery {
        source,
        relation,
        answer: source,
    };

    for _ in 0..steps {
        let mut candidates: Vec<Beam> = Vec::with_capacity(beams.len() * 8);
        for beam in &beams {
            // History update for this beam.
            let x = model.lstm_input(beam.last_rel, beam.current);
            let mut h = beam.h.clone();
            let mut c = beam.c.clone();
            model.lstm_step(&x, &mut h, &mut c);

            let mut state = RolloutState::new(query, no_op);
            state.current = beam.current;
            env.fill_actions(&state, &mut action_buf);
            model.action_probs(source, &h, relation, &action_buf, &mut prob_buf);

            for (a, &p) in action_buf.iter().zip(&prob_buf) {
                let lp = p.max(1e-12).ln();
                let mut rels = beam.rels.clone();
                let hops = if a.relation == no_op {
                    beam.hops
                } else {
                    rels.push(a.relation);
                    beam.hops + 1
                };
                candidates.push(Beam {
                    current: a.target,
                    last_rel: a.relation,
                    hops,
                    h: h.clone(),
                    c: c.clone(),
                    logp: beam.logp + lp,
                    rels,
                });
            }
        }
        candidates.sort_by(|a, b| b.logp.total_cmp(&a.logp));
        candidates.truncate(width);
        beams = candidates;
        if beams.is_empty() {
            break;
        }
    }

    beams
        .into_iter()
        .map(|b| BeamPath {
            entity: b.current,
            logp: b.logp,
            hops: b.hops,
            relations: b.rels,
        })
        .collect()
}

/// Outcome of ranking one query.
#[derive(Copy, Clone, Debug)]
pub struct RankOutcome {
    /// 1-based filtered rank of the gold answer.
    pub rank: usize,
    /// Did any beam reach the gold answer?
    pub reached: bool,
    /// Hops of the best-scoring path to the gold answer (0 if unreached).
    pub hops: usize,
}

/// Rank the gold answer of `q` against all entities using beam scores.
/// `known` enables filtered ranking (other true answers are skipped).
pub fn rank_query<P: RolloutPolicy>(
    model: &P,
    graph: &KnowledgeGraph,
    q: &RolloutQuery,
    known: Option<&TripleSet>,
    width: usize,
    steps: usize,
) -> RankOutcome {
    let paths = beam_search(model, graph, q.source, q.relation, width, steps);
    let mut best: HashMap<EntityId, (f32, usize)> = HashMap::with_capacity(paths.len());
    for p in &paths {
        let entry = best.entry(p.entity).or_insert((f32::NEG_INFINITY, 0));
        if p.logp > entry.0 {
            *entry = (p.logp, p.hops);
        }
    }
    let Some(&(gold_score, gold_hops)) = best.get(&q.answer) else {
        return RankOutcome {
            rank: graph.num_entities().max(1),
            reached: false,
            hops: 0,
        };
    };
    let rs = graph.relations();
    let mut rank = 1usize;
    for (&e, &(score, _)) in &best {
        if e == q.answer || score <= gold_score {
            continue;
        }
        // Filtered protocol: skip candidates that are themselves true.
        if let Some(known) = known {
            let is_known = if rs.is_base(q.relation) {
                known.contains(q.source, q.relation, e)
            } else if rs.is_inverse(q.relation) {
                known.contains(e, rs.inverse(q.relation), q.source)
            } else {
                false
            };
            if is_known {
                continue;
            }
        }
        rank += 1;
    }
    RankOutcome {
        rank,
        reached: true,
        hops: gold_hops,
    }
}

/// Aggregate link-prediction metrics (the columns of Tables III/V/VIII).
#[derive(Clone, Debug, Default)]
pub struct RankingSummary {
    pub mrr: f64,
    pub hits1: f64,
    pub hits5: f64,
    pub hits10: f64,
    /// Successful inferences by hop count: index = hops (0..=4, last
    /// bucket collects ≥4) — the Fig. 6/7 histogram.
    pub hop_counts: [usize; 5],
    pub total: usize,
}

impl RankingSummary {
    /// Proportion of successes at exactly `hops` (Fig. 6/7 pie slices).
    pub fn hop_fraction(&self, hops: usize) -> f64 {
        let total: usize = self.hop_counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.hop_counts[hops.min(4)] as f64 / total as f64
        }
    }
}

/// Evaluate a query set with filtered ranking.
pub fn evaluate_ranking<P: RolloutPolicy>(
    model: &P,
    graph: &KnowledgeGraph,
    queries: &[RolloutQuery],
    known: &TripleSet,
    width: usize,
    steps: usize,
) -> RankingSummary {
    let mut s = RankingSummary {
        total: queries.len(),
        ..Default::default()
    };
    if queries.is_empty() {
        return s;
    }
    for q in queries {
        let o = rank_query(model, graph, q, Some(known), width, steps);
        s.mrr += 1.0 / o.rank as f64;
        if o.rank <= 1 {
            s.hits1 += 1.0;
        }
        if o.rank <= 5 {
            s.hits5 += 1.0;
        }
        if o.rank <= 10 {
            s.hits10 += 1.0;
        }
        if o.reached && o.rank <= 1 {
            s.hop_counts[o.hops.min(4)] += 1;
        }
    }
    let n = queries.len() as f64;
    s.mrr /= n;
    s.hits1 /= n;
    s.hits5 /= n;
    s.hits10 /= n;
    s
}

/// Score each candidate relation for a `(e_s, ?, e_d)` query: the best
/// beam log-probability that reaches `e_d` under that relation (−∞ if
/// unreached). Used by the Table IV relation-link-prediction MAP.
pub fn relation_scores<P: RolloutPolicy>(
    model: &P,
    graph: &KnowledgeGraph,
    source: EntityId,
    destination: EntityId,
    candidates: &[RelationId],
    width: usize,
    steps: usize,
) -> Vec<f32> {
    candidates
        .iter()
        .map(|&r| {
            beam_search(model, graph, source, r, width, steps)
                .iter()
                .filter(|p| p.entity == destination)
                .map(|p| p.logp)
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MmkgrConfig;
    use crate::model::MmkgrModel;
    use mmkgr_datagen::{generate, GenConfig};
    use mmkgr_kg::Triple;

    fn tiny() -> (mmkgr_kg::MultiModalKG, MmkgrModel) {
        let kg = generate(&GenConfig::tiny());
        let model = MmkgrModel::new(&kg, MmkgrConfig::quick(), None);
        (kg, model)
    }

    #[test]
    fn beam_search_returns_at_most_width() {
        let (kg, model) = tiny();
        let paths = beam_search(&model, &kg.graph, EntityId(0), RelationId(0), 4, 3);
        assert!(!paths.is_empty());
        assert!(paths.len() <= 4);
        for p in &paths {
            assert!(p.logp <= 0.0, "log-probabilities are non-positive");
            assert_eq!(p.relations.len(), p.hops);
        }
    }

    #[test]
    fn beams_end_at_reachable_entities() {
        let (kg, model) = tiny();
        let paths = beam_search(&model, &kg.graph, EntityId(1), RelationId(0), 8, 4);
        for p in &paths {
            assert!(p.hops <= 4, "a 4-step beam cannot take more than 4 hops");
            // end entity must be within `hops` of the start
            if p.hops > 0 {
                let d = mmkgr_kg::hop_distance(&kg.graph, EntityId(1), p.entity, 4);
                assert!(d.is_some(), "beam ended at unreachable entity");
            }
        }
    }

    #[test]
    fn rank_query_finds_trivial_self_answer() {
        // Query whose answer is the source: beams that never move (all
        // NO_OP) stay there, so it must be reached.
        let (kg, model) = tiny();
        let q = RolloutQuery {
            source: EntityId(0),
            relation: RelationId(0),
            answer: EntityId(0),
        };
        // Width must exceed the source's action count so the NO_OP edge
        // cannot be pruned; an untrained policy gives it no score edge.
        let o = rank_query(&model, &kg.graph, &q, None, 512, 1);
        assert!(o.reached, "staying put must keep the source reachable");
        assert_eq!(o.hops, 0);
    }

    #[test]
    fn unreachable_answer_ranks_last() {
        let (kg, model) = tiny();
        // An isolated fake answer: entity far outside beam reach is very
        // unlikely to be hit with width 1 and 1 step unless adjacent.
        let q = RolloutQuery {
            source: EntityId(0),
            relation: RelationId(0),
            answer: EntityId((kg.num_entities() - 1) as u32),
        };
        let o = rank_query(&model, &kg.graph, &q, None, 1, 1);
        if !o.reached {
            assert_eq!(o.rank, kg.num_entities());
        }
    }

    #[test]
    fn evaluate_ranking_bounds() {
        let (kg, model) = tiny();
        let queries: Vec<RolloutQuery> = kg.split.test[..8.min(kg.split.test.len())]
            .iter()
            .map(|t| RolloutQuery {
                source: t.s,
                relation: t.r,
                answer: t.o,
            })
            .collect();
        let known = kg.all_known();
        let s = evaluate_ranking(&model, &kg.graph, &queries, &known, 8, 4);
        assert!((0.0..=1.0).contains(&s.mrr));
        assert!(s.hits1 <= s.hits5 && s.hits5 <= s.hits10);
        assert_eq!(s.total, queries.len());
    }

    #[test]
    fn filtered_rank_never_worse_than_raw() {
        let (kg, model) = tiny();
        let known = kg.all_known();
        let t: &Triple = &kg.split.test[0];
        let q = RolloutQuery {
            source: t.s,
            relation: t.r,
            answer: t.o,
        };
        let raw = rank_query(&model, &kg.graph, &q, None, 8, 4);
        let filt = rank_query(&model, &kg.graph, &q, Some(&known), 8, 4);
        assert!(filt.rank <= raw.rank);
    }

    #[test]
    fn relation_scores_prefer_connecting_relation() {
        let (kg, model) = tiny();
        // take a train triple; its relation should score better than a
        // random one *sometimes* — we only check the shape contract here.
        let t = &kg.split.train[0];
        let rels: Vec<RelationId> = (0..kg.num_base_relations() as u32)
            .map(RelationId)
            .collect();
        let scores = relation_scores(&model, &kg.graph, t.s, t.o, &rels, 8, 3);
        assert_eq!(scores.len(), rels.len());
        assert!(
            scores.iter().any(|s| s.is_finite()),
            "some relation must reach"
        );
    }

    #[test]
    fn hop_fraction_sums_to_one_when_successes_exist() {
        let s = RankingSummary {
            hop_counts: [0, 2, 5, 3, 0],
            ..RankingSummary::default()
        };
        let total: f64 = (0..5).map(|h| s.hop_fraction(h)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
