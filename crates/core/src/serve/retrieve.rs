//! KG-RAG retrieval: k-hop multimodal subgraphs plus diversity-ranked
//! reasoning-path contexts (`POST /v1/retrieve`).
//!
//! A retrieval-augmented generator grounds its output in two artifacts
//! this engine can produce cheaply: the bounded k-hop neighborhood of
//! the query's seed entities (see [`mmkgr_kg::subgraph`]) and a handful
//! of multi-hop reasoning paths connecting that neighborhood. The
//! [`Retriever`] assembles both:
//!
//! - **Subgraph** — deterministic bounded expansion over the shared CSR
//!   store, with modality-presence flags per entity.
//! - **Path contexts** — when the request names a relation and the model
//!   is a path reasoner, the beam frontier paths of
//!   [`KgReasoner::explain`] (one query per seed, unioned). Otherwise —
//!   KGE scorers have no beam, and seed-only requests have no query
//!   relation — a topology fallback derives BFS-tree paths from the
//!   nearest seed to each retrieved entity, scored by `-hops`. Either
//!   way every retrieval carries ≥1 path context when the subgraph has
//!   any non-seed entity.
//! - **Diversity rerank** — greedy MMR: each round selects the candidate
//!   maximizing `score − diversity · max_overlap(selected)`, where
//!   overlap is the Jaccard similarity of the paths' entity+relation
//!   item sets. At `diversity = 0` this is plain score order; higher
//!   weights push the selection toward distinct graph regions
//!   (TMR-style topology-aware reranking).
//!
//! Few-shot awareness: when relation training frequencies are injected
//! (the eval layer computes them via its `fewshot` machinery), responses
//! annotate the queried relation's frequency and whether it falls under
//! the few-shot threshold, so RAG callers can weigh sparse-relation
//! contexts accordingly.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use mmkgr_kg::subgraph::{extract, ModalPresence, Subgraph, SubgraphConfig};
use mmkgr_kg::{EntityId, GraphHandle, KnowledgeGraph, RelationId};

use super::{KgReasoner, Query};

/// Relations with at most this many training triples count as few-shot
/// (the same `≤10` cutoff `mmkgr stats` reports).
pub const FEW_SHOT_THRESHOLD: usize = 10;

/// A resolved retrieval request (dense ids; the wire layer resolves
/// names and validates parameters before building one).
#[derive(Clone, Debug)]
pub struct RetrieveSpec {
    pub seeds: Vec<EntityId>,
    /// Query relation for beam-path contexts (None = subgraph-only
    /// request; paths fall back to topology).
    pub relation: Option<RelationId>,
    pub hops: usize,
    /// Cap on subgraph entities (0 = unlimited).
    pub max_entities: usize,
    /// Cap on selected path contexts (0 = unlimited).
    pub max_paths: usize,
    /// MMR diversity weight in `[0, 1]`.
    pub diversity: f32,
}

/// One reasoning-path context: a walk from `source` to `entity`.
///
/// `entities` lists the known node sequence (always `source` first and
/// `entity` last; topology paths include intermediates, beam paths only
/// the endpoints — the beam arena stores relation links, not node
/// sequences) — it feeds the overlap measure of the MMR reranker.
#[derive(Clone, Debug, PartialEq)]
pub struct ContextPath {
    pub source: EntityId,
    pub entity: EntityId,
    pub score: f32,
    pub hops: usize,
    pub relations: Vec<RelationId>,
    pub entities: Vec<EntityId>,
}

/// Few-shot annotation for the queried relation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FewShotInfo {
    pub relation: RelationId,
    /// Training triples of the relation's base orientation.
    pub train_frequency: usize,
    /// `train_frequency <= FEW_SHOT_THRESHOLD`.
    pub few_shot: bool,
}

/// The typed retrieval result (the wire twin is `RetrieveResponse`).
#[derive(Clone, Debug)]
pub struct Retrieval {
    pub subgraph: Subgraph,
    /// Selected path contexts, in MMR selection order.
    pub paths: Vec<ContextPath>,
    /// Candidate paths before the diversity rerank (observability).
    pub paths_considered: usize,
    pub few_shot: Option<FewShotInfo>,
}

/// Shared retrieval state for one served dataset: the graph, optional
/// modality presence (absent on snapshot boots, which carry no
/// [`mmkgr_kg::ModalBank`]), and optional relation training frequencies
/// for few-shot annotation.
pub struct Retriever {
    graph: GraphHandle,
    modal: Option<ModalPresence>,
    relation_freqs: Option<HashMap<RelationId, usize>>,
}

impl Retriever {
    pub fn new(graph: Arc<KnowledgeGraph>) -> Self {
        Self::new_live(GraphHandle::new(graph))
    }

    /// Build over a live [`GraphHandle`]: each retrieval pins the epoch
    /// current at its start, so a published mutation is visible to the
    /// next retrieval but never to one already in flight.
    pub fn new_live(graph: GraphHandle) -> Self {
        Retriever {
            graph,
            modal: None,
            relation_freqs: None,
        }
    }

    /// Attach per-entity modality presence flags.
    pub fn with_modal_presence(mut self, presence: ModalPresence) -> Self {
        self.modal = Some(presence);
        self
    }

    /// Attach relation training frequencies (the eval layer's
    /// `fewshot::relation_frequencies` output) for few-shot annotation.
    pub fn with_relation_frequencies(mut self, freqs: HashMap<RelationId, usize>) -> Self {
        self.relation_freqs = Some(freqs);
        self
    }

    /// Pin and return the currently published graph epoch.
    pub fn graph(&self) -> Arc<KnowledgeGraph> {
        self.graph.pin()
    }

    /// Run one retrieval. `reasoner` supplies beam paths when it has
    /// path evidence and the spec names a relation; pass `None` to force
    /// the topology fallback.
    pub fn retrieve(&self, reasoner: Option<&dyn KgReasoner>, spec: &RetrieveSpec) -> Retrieval {
        // Pin once: subgraph, fallback paths and annotations all read
        // the same epoch.
        let graph = self.graph.pin();
        let subgraph = extract(
            &graph,
            &spec.seeds,
            &SubgraphConfig {
                hops: spec.hops,
                max_entities: spec.max_entities,
                ..SubgraphConfig::default()
            },
            self.modal.as_ref(),
        );

        let mut candidates = Vec::new();
        if let (Some(relation), Some(r)) = (spec.relation, reasoner) {
            if r.has_path_evidence() {
                candidates = self.beam_paths(r, &spec.seeds, relation, spec.max_paths);
            }
        }
        if candidates.is_empty() {
            candidates = topology_paths(&graph, &spec.seeds, &subgraph);
        }
        let paths_considered = candidates.len();
        let paths = mmr_rerank(candidates, spec.diversity, spec.max_paths);

        let few_shot = spec.relation.map(|r| {
            let rs = graph.relations();
            let base = if rs.is_inverse(r) { rs.inverse(r) } else { r };
            let train_frequency = self
                .relation_freqs
                .as_ref()
                .and_then(|f| f.get(&base).copied())
                .unwrap_or(0);
            FewShotInfo {
                relation: r,
                train_frequency,
                few_shot: train_frequency <= FEW_SHOT_THRESHOLD,
            }
        });

        Retrieval {
            subgraph,
            paths,
            paths_considered,
            few_shot,
        }
    }

    /// Beam frontier paths: one explain query per distinct seed, unioned
    /// and deduped. Each seed asks for a pool larger than the final
    /// selection so the reranker has genuine alternatives to diversify
    /// over.
    fn beam_paths(
        &self,
        reasoner: &dyn KgReasoner,
        seeds: &[EntityId],
        relation: RelationId,
        max_paths: usize,
    ) -> Vec<ContextPath> {
        let pool = if max_paths == 0 { 0 } else { max_paths * 4 };
        let mut out = Vec::new();
        let mut seen_seeds = HashSet::new();
        for &seed in seeds {
            if !seen_seeds.insert(seed) {
                continue;
            }
            let query = Query::new(seed, relation).with_top_k(pool);
            for p in reasoner.explain(&query).unwrap_or_default() {
                out.push(ContextPath {
                    source: seed,
                    entity: p.entity,
                    score: p.logp,
                    hops: p.hops,
                    entities: vec![seed, p.entity],
                    relations: p.relations,
                });
            }
        }
        out.sort_by(context_path_cmp);
        out.dedup_by(|a, b| {
            a.source == b.source && a.entity == b.entity && a.relations == b.relations
        });
        out
    }
}

/// Candidate rank order: descending score, then ascending terminal
/// entity, then ascending source — the serving layer's shared tie-break
/// extended to the path's second identity axis.
fn context_path_cmp(a: &ContextPath, b: &ContextPath) -> std::cmp::Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.entity.0.cmp(&b.entity.0))
        .then_with(|| a.source.0.cmp(&b.source.0))
}

/// Topology fallback: a BFS spanning tree over the extracted subgraph
/// (parents resolved in ascending entity order, edges in CSR bucket
/// order — deterministic), yielding one shortest path from the nearest
/// seed to every reached non-seed entity, scored `-hops`.
fn topology_paths(
    graph: &KnowledgeGraph,
    seeds: &[EntityId],
    subgraph: &Subgraph,
) -> Vec<ContextPath> {
    let hop_of: BTreeMap<EntityId, usize> = subgraph
        .entities
        .iter()
        .map(|e| (e.entity, e.hops))
        .collect();
    let max_hop = hop_of.values().copied().max().unwrap_or(0);
    let rs = graph.relations();

    // parent[child] = (parent entity, relation walked parent → child)
    let mut parent: BTreeMap<EntityId, (EntityId, RelationId)> = BTreeMap::new();
    let mut frontier: Vec<EntityId> = {
        let mut roots: Vec<EntityId> = seeds
            .iter()
            .copied()
            .filter(|s| hop_of.get(s) == Some(&0))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots
    };
    for hop in 1..=max_hop {
        let mut next = Vec::new();
        for &e in &frontier {
            for edge in graph.neighbors(e) {
                if edge.relation == rs.no_op() {
                    continue;
                }
                let t = edge.target;
                if hop_of.get(&t) == Some(&hop) && !parent.contains_key(&t) {
                    parent.insert(t, (e, edge.relation));
                    next.push(t);
                }
            }
        }
        next.sort_unstable();
        frontier = next;
    }

    let mut out = Vec::new();
    for (&entity, &hops) in &hop_of {
        if hops == 0 {
            continue;
        }
        let mut relations = Vec::with_capacity(hops);
        let mut entities = vec![entity];
        let mut cur = entity;
        while let Some(&(p, r)) = parent.get(&cur) {
            relations.push(r);
            entities.push(p);
            cur = p;
        }
        relations.reverse();
        entities.reverse();
        out.push(ContextPath {
            source: cur,
            entity,
            score: -(hops as f32),
            hops,
            relations,
            entities,
        });
    }
    out.sort_by(context_path_cmp);
    out
}

/// Jaccard similarity of two paths' item sets (entities ∪ relations,
/// tagged so an entity id never collides with a relation id).
fn path_overlap(a: &HashSet<(u8, u32)>, b: &HashSet<(u8, u32)>) -> f32 {
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f32 / union as f32
    }
}

/// Greedy MMR selection over score-ranked candidates: each round picks
/// the candidate maximizing `score − diversity · max_overlap(selected)`,
/// ties broken by original rank. `max_paths = 0` keeps every candidate
/// (the rerank still reorders them). Deterministic for a fixed input.
pub fn mmr_rerank(
    mut candidates: Vec<ContextPath>,
    diversity: f32,
    max_paths: usize,
) -> Vec<ContextPath> {
    candidates.sort_by(context_path_cmp);
    let items: Vec<HashSet<(u8, u32)>> = candidates
        .iter()
        .map(|p| {
            p.entities
                .iter()
                .map(|e| (0u8, e.0))
                .chain(p.relations.iter().map(|r| (1u8, r.0)))
                .collect()
        })
        .collect();
    let limit = if max_paths == 0 {
        candidates.len()
    } else {
        max_paths.min(candidates.len())
    };
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    let mut selected: Vec<usize> = Vec::with_capacity(limit);
    while selected.len() < limit && !remaining.is_empty() {
        let mut best_pos = 0usize;
        let mut best_adj = f32::NEG_INFINITY;
        for (pos, &i) in remaining.iter().enumerate() {
            let penalty = selected
                .iter()
                .map(|&j| path_overlap(&items[i], &items[j]))
                .fold(0.0f32, f32::max);
            let adj = candidates[i].score - diversity * penalty;
            // Strictly-greater keeps the earliest (best-ranked) candidate
            // on ties.
            if adj.total_cmp(&best_adj) == std::cmp::Ordering::Greater {
                best_adj = adj;
                best_pos = pos;
            }
        }
        selected.push(remaining.remove(best_pos));
    }
    let mut keep: Vec<Option<ContextPath>> = candidates.into_iter().map(Some).collect();
    selected
        .into_iter()
        .map(|i| keep[i].take().expect("selected once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_kg::Triple;

    fn t(s: u32, r: u32, o: u32) -> Triple {
        Triple {
            s: EntityId(s),
            r: RelationId(r),
            o: EntityId(o),
        }
    }

    fn graph() -> Arc<KnowledgeGraph> {
        // 0-1-2-3 chain on r0, 1→{4,5} fan on r1.
        Arc::new(KnowledgeGraph::from_triples(
            6,
            2,
            vec![t(0, 0, 1), t(1, 0, 2), t(2, 0, 3), t(1, 1, 4), t(1, 1, 5)],
            None,
        ))
    }

    fn path(score: f32, entities: &[u32], relations: &[u32]) -> ContextPath {
        ContextPath {
            source: EntityId(entities[0]),
            entity: EntityId(*entities.last().unwrap()),
            score,
            hops: relations.len(),
            relations: relations.iter().map(|&r| RelationId(r)).collect(),
            entities: entities.iter().map(|&e| EntityId(e)).collect(),
        }
    }

    /// Mean pairwise Jaccard overlap of the selected paths' entity sets.
    fn mean_entity_overlap(paths: &[ContextPath]) -> f32 {
        let sets: Vec<HashSet<u32>> = paths
            .iter()
            .map(|p| p.entities.iter().map(|e| e.0).collect())
            .collect();
        let mut total = 0.0f32;
        let mut pairs = 0usize;
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let inter = sets[i].intersection(&sets[j]).count();
                let union = sets[i].len() + sets[j].len() - inter;
                total += inter as f32 / union.max(1) as f32;
                pairs += 1;
            }
        }
        total / pairs.max(1) as f32
    }

    #[test]
    fn diversity_reduces_pairwise_entity_overlap() {
        // Two near-duplicate high-scoring paths through {0,1,2} and two
        // lower-scoring paths through disjoint regions.
        let candidates = vec![
            path(1.0, &[0, 1, 2], &[0, 0]),
            path(0.9, &[0, 1, 2], &[0, 1]),
            path(0.5, &[3, 4], &[1]),
            path(0.4, &[5], &[]),
        ];
        let plain = mmr_rerank(candidates.clone(), 0.0, 3);
        let diverse = mmr_rerank(candidates, 0.8, 3);
        assert_eq!(plain.len(), 3);
        assert_eq!(diverse.len(), 3);
        // Score order keeps both near-duplicates; the diverse selection
        // trades the second duplicate for a distinct region.
        let plain_overlap = mean_entity_overlap(&plain);
        let diverse_overlap = mean_entity_overlap(&diverse);
        assert!(
            diverse_overlap < plain_overlap,
            "diversity must reduce overlap: {diverse_overlap} vs {plain_overlap}"
        );
        // The top-scored path always survives.
        assert_eq!(diverse[0].score, 1.0);
    }

    #[test]
    fn zero_diversity_is_score_order() {
        let candidates = vec![
            path(0.2, &[5], &[]),
            path(0.9, &[0, 1], &[0]),
            path(0.5, &[3, 4], &[1]),
        ];
        let out = mmr_rerank(candidates, 0.0, 0);
        let scores: Vec<f32> = out.iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.2]);
    }

    #[test]
    fn mmr_ties_break_by_rank() {
        // Equal scores and disjoint items: selection must follow the
        // deterministic rank order (ascending entity id).
        let candidates = vec![
            path(0.5, &[9], &[]),
            path(0.5, &[1], &[]),
            path(0.5, &[4], &[]),
        ];
        let out = mmr_rerank(candidates, 0.7, 2);
        let ids: Vec<u32> = out.iter().map(|p| p.entity.0).collect();
        assert_eq!(ids, vec![1, 4]);
    }

    #[test]
    fn topology_fallback_yields_shortest_paths() {
        let g = graph();
        let retriever = Retriever::new(Arc::clone(&g));
        let spec = RetrieveSpec {
            seeds: vec![EntityId(0)],
            relation: None,
            hops: 2,
            max_entities: 0,
            max_paths: 0,
            diversity: 0.0,
        };
        let r = retriever.retrieve(None, &spec);
        assert_eq!(r.subgraph.entities.len(), 5); // 0,1,2,4,5
        assert_eq!(r.paths_considered, 4);
        // Every non-seed entity gets exactly one path, rooted at the seed.
        for p in &r.paths {
            assert_eq!(p.source, EntityId(0));
            assert_eq!(p.hops, r.subgraph.hop_of(p.entity).unwrap());
            assert_eq!(p.relations.len(), p.hops);
            assert_eq!(p.entities.first(), Some(&EntityId(0)));
            assert_eq!(p.entities.last(), Some(&p.entity));
            assert_eq!(p.score, -(p.hops as f32));
        }
        // -1 before -2, ascending entity within a hop band.
        let ids: Vec<u32> = r.paths.iter().map(|p| p.entity.0).collect();
        assert_eq!(ids, vec![1, 2, 4, 5]);
    }

    #[test]
    fn retrieval_is_deterministic() {
        let g = graph();
        let retriever = Retriever::new(Arc::clone(&g));
        let spec = RetrieveSpec {
            seeds: vec![EntityId(1), EntityId(0)],
            relation: None,
            hops: 2,
            max_entities: 4,
            max_paths: 3,
            diversity: 0.5,
        };
        let a = retriever.retrieve(None, &spec);
        let b = retriever.retrieve(None, &spec);
        assert_eq!(a.subgraph.entities, b.subgraph.entities);
        assert_eq!(a.subgraph.triples, b.subgraph.triples);
        assert_eq!(a.paths, b.paths);
    }

    #[test]
    fn few_shot_annotation_uses_injected_frequencies() {
        let g = graph();
        let mut freqs = HashMap::new();
        freqs.insert(RelationId(0), 120usize);
        freqs.insert(RelationId(1), 3usize);
        let retriever = Retriever::new(Arc::clone(&g)).with_relation_frequencies(freqs);
        let spec = |r: u32| RetrieveSpec {
            seeds: vec![EntityId(1)],
            relation: Some(RelationId(r)),
            hops: 1,
            max_entities: 0,
            max_paths: 2,
            diversity: 0.0,
        };
        let common = retriever.retrieve(None, &spec(0)).few_shot.unwrap();
        assert_eq!(common.train_frequency, 120);
        assert!(!common.few_shot);
        let rare = retriever.retrieve(None, &spec(1)).few_shot.unwrap();
        assert_eq!(rare.train_frequency, 3);
        assert!(rare.few_shot);
        // Inverse orientation maps to the base relation's frequency.
        let rs = g.relations();
        let inv_spec = RetrieveSpec {
            relation: Some(rs.inverse(RelationId(0))),
            ..spec(0)
        };
        let inv = retriever.retrieve(None, &inv_spec).few_shot.unwrap();
        assert_eq!(inv.train_frequency, 120);
    }
}
