//! The CSR adjacency store.
//!
//! Flat, snapshot-friendly arrays: per-entity `offsets` into a single
//! relation-sorted `edges` array (forward and inverse edges interleaved in
//! each bucket, inverse ids sorting after base ids), plus the original base
//! `triples`. Every array is a [`Slab`], so a store can be built in memory
//! or viewed zero-copy out of a memory-mapped snapshot.

use serde::{Deserialize, Serialize};

use crate::graph::Edge;
use crate::ids::{EntityId, RelationId, RelationSpace};
use crate::triple::Triple;

use super::Slab;

/// Validation failure when assembling a store from untrusted parts
/// (e.g. a snapshot file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    OffsetsLength { expected: usize, got: usize },
    OffsetsNotMonotone { entity: usize },
    OffsetsMismatch { last: u32, edges: usize },
    EdgeTargetOutOfRange { index: usize, target: u32 },
    EdgeRelationOutOfRange { index: usize, relation: u32 },
    BucketNotSorted { entity: usize },
    TripleOutOfRange { index: usize },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::OffsetsLength { expected, got } => {
                write!(f, "offsets length {got}, expected {expected}")
            }
            CsrError::OffsetsNotMonotone { entity } => {
                write!(f, "offsets decrease at entity {entity}")
            }
            CsrError::OffsetsMismatch { last, edges } => {
                write!(f, "final offset {last} != edge count {edges}")
            }
            CsrError::EdgeTargetOutOfRange { index, target } => {
                write!(f, "edge {index} targets out-of-range entity {target}")
            }
            CsrError::EdgeRelationOutOfRange { index, relation } => {
                write!(f, "edge {index} uses out-of-range relation {relation}")
            }
            CsrError::BucketNotSorted { entity } => {
                write!(f, "edge bucket of entity {entity} is not relation-sorted")
            }
            CsrError::TripleOutOfRange { index } => {
                write!(f, "base triple {index} references out-of-range ids")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// Immutable CSR adjacency over a set of triples plus their inverses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CsrStore {
    num_entities: usize,
    relations: RelationSpace,
    /// CSR offsets: edges of entity `e` live at `edges[offsets[e]..offsets[e+1]]`.
    offsets: Slab<u32>,
    edges: Slab<Edge>,
    /// The original (non-inverse) triples this store was built from.
    triples: Slab<Triple>,
}

impl CsrStore {
    /// Build from base triples. Inverse edges are added automatically; each
    /// bucket is sorted by `(relation, target)`, so base relations form a
    /// prefix and inverse relations a suffix of every bucket.
    ///
    /// `max_out_degree` (if `Some`) truncates each entity's edge list to
    /// bound the RL action space, keeping the first edges after sorting —
    /// mirrors the action-space truncation used by MINERVA-family
    /// implementations.
    pub fn from_triples(
        num_entities: usize,
        num_base_relations: usize,
        triples: Vec<Triple>,
        max_out_degree: Option<usize>,
    ) -> Self {
        let relations = RelationSpace::new(num_base_relations);
        for t in &triples {
            assert!(
                t.s.index() < num_entities,
                "triple source {} out of range",
                t.s
            );
            assert!(
                t.o.index() < num_entities,
                "triple target {} out of range",
                t.o
            );
            assert!(
                relations.is_base(t.r),
                "triple relation {} must be a base relation (< {num_base_relations})",
                t.r
            );
        }
        // Count degrees (forward + inverse).
        let mut degree = vec![0u32; num_entities];
        for t in &triples {
            degree[t.s.index()] += 1;
            degree[t.o.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(num_entities + 1);
        offsets.push(0u32);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let total = *offsets.last().unwrap() as usize;
        let mut edges = vec![
            Edge {
                relation: RelationId(0),
                target: EntityId(0)
            };
            total
        ];
        let mut cursor: Vec<u32> = offsets[..num_entities].to_vec();
        for t in &triples {
            let slot = cursor[t.s.index()] as usize;
            edges[slot] = Edge {
                relation: t.r,
                target: t.o,
            };
            cursor[t.s.index()] += 1;
            let slot = cursor[t.o.index()] as usize;
            edges[slot] = Edge {
                relation: relations.inverse(t.r),
                target: t.s,
            };
            cursor[t.o.index()] += 1;
        }
        // Sort each bucket for determinism and binary-searchability.
        for e in 0..num_entities {
            let (a, b) = (offsets[e] as usize, offsets[e + 1] as usize);
            edges[a..b].sort_unstable_by_key(|e| (e.relation, e.target));
        }
        let mut store = CsrStore {
            num_entities,
            relations,
            offsets: offsets.into(),
            edges: edges.into(),
            triples: triples.into(),
        };
        if let Some(cap) = max_out_degree {
            store = store.truncated(cap);
        }
        store
    }

    /// Assemble from pre-built (possibly memory-mapped) parts, validating
    /// every structural invariant the accessors rely on. This is the
    /// untrusted-input path used by the snapshot loader.
    pub fn from_parts(
        num_entities: usize,
        relations: RelationSpace,
        offsets: Slab<u32>,
        edges: Slab<Edge>,
        triples: Slab<Triple>,
    ) -> Result<Self, CsrError> {
        if offsets.len() != num_entities + 1 {
            return Err(CsrError::OffsetsLength {
                expected: num_entities + 1,
                got: offsets.len(),
            });
        }
        for e in 0..num_entities {
            if offsets[e] > offsets[e + 1] {
                return Err(CsrError::OffsetsNotMonotone { entity: e });
            }
        }
        let last = *offsets.last().unwrap_or(&0);
        if last as usize != edges.len() {
            return Err(CsrError::OffsetsMismatch {
                last,
                edges: edges.len(),
            });
        }
        let total_rel = relations.total() as u32;
        for (i, edge) in edges.iter().enumerate() {
            if edge.target.index() >= num_entities {
                return Err(CsrError::EdgeTargetOutOfRange {
                    index: i,
                    target: edge.target.0,
                });
            }
            if edge.relation.0 >= total_rel {
                return Err(CsrError::EdgeRelationOutOfRange {
                    index: i,
                    relation: edge.relation.0,
                });
            }
        }
        for e in 0..num_entities {
            let bucket = &edges[offsets[e] as usize..offsets[e + 1] as usize];
            if bucket
                .windows(2)
                .any(|w| (w[0].relation, w[0].target) > (w[1].relation, w[1].target))
            {
                return Err(CsrError::BucketNotSorted { entity: e });
            }
        }
        for (i, t) in triples.iter().enumerate() {
            if t.s.index() >= num_entities || t.o.index() >= num_entities || !relations.is_base(t.r)
            {
                return Err(CsrError::TripleOutOfRange { index: i });
            }
        }
        Ok(CsrStore {
            num_entities,
            relations,
            offsets,
            edges,
            triples,
        })
    }

    /// Copy with each entity's out-edges truncated to `cap`.
    fn truncated(&self, cap: usize) -> Self {
        let mut offsets = Vec::with_capacity(self.num_entities + 1);
        let mut edges = Vec::with_capacity(self.edges.len());
        offsets.push(0u32);
        for e in 0..self.num_entities {
            let bucket = self.neighbors(EntityId(e as u32));
            let take = bucket.len().min(cap);
            edges.extend_from_slice(&bucket[..take]);
            offsets.push(edges.len() as u32);
        }
        CsrStore {
            num_entities: self.num_entities,
            relations: self.relations,
            offsets: offsets.into(),
            edges: edges.into(),
            triples: self.triples.clone(),
        }
    }

    #[inline]
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    #[inline]
    pub fn relations(&self) -> RelationSpace {
        self.relations
    }

    /// All outgoing edges of `e` (inverse edges included), sorted by
    /// `(relation, target)`.
    #[inline]
    pub fn neighbors(&self, e: EntityId) -> &[Edge] {
        let (a, b) = (
            self.offsets[e.index()] as usize,
            self.offsets[e.index() + 1] as usize,
        );
        &self.edges[a..b]
    }

    /// Forward view: only edges via base relations. Because buckets are
    /// relation-sorted and base ids precede inverse ids, this is a prefix
    /// slice — O(log d) to locate, zero-copy to use.
    pub fn forward_neighbors(&self, e: EntityId) -> &[Edge] {
        let bucket = self.neighbors(e);
        let split = bucket.partition_point(|edge| self.relations.is_base(edge.relation));
        &bucket[..split]
    }

    /// Inverse view: only edges via synthetic inverse relations (the
    /// suffix complement of [`CsrStore::forward_neighbors`]).
    pub fn inverse_neighbors(&self, e: EntityId) -> &[Edge] {
        let bucket = self.neighbors(e);
        let split = bucket.partition_point(|edge| self.relations.is_base(edge.relation));
        &bucket[split..]
    }

    #[inline]
    pub fn out_degree(&self, e: EntityId) -> usize {
        (self.offsets[e.index() + 1] - self.offsets[e.index()]) as usize
    }

    /// Total directed edges (2× the base triples, before truncation).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The base triples the store was built from.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Does the edge `(s, r, o)` exist (r may be base or inverse)?
    pub fn has_edge(&self, s: EntityId, r: RelationId, o: EntityId) -> bool {
        self.neighbors(s)
            .binary_search_by_key(&(r, o), |e| (e.relation, e.target))
            .is_ok()
    }

    /// Targets reachable from `s` via relation `r` (base or inverse).
    pub fn targets(&self, s: EntityId, r: RelationId) -> impl Iterator<Item = EntityId> + '_ {
        let bucket = self.neighbors(s);
        let start = bucket.partition_point(|e| e.relation < r);
        bucket[start..]
            .iter()
            .take_while(move |e| e.relation == r)
            .map(|e| e.target)
    }

    /// Raw CSR offsets array (`num_entities + 1` entries) — snapshot writer
    /// input; also the basis for streaming degree statistics.
    pub fn offsets_slice(&self) -> &[u32] {
        &self.offsets
    }

    /// Raw relation-sorted edge array — snapshot writer input.
    pub fn edges_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// True when every CSR array is a zero-copy view into a mapping.
    pub fn is_mapped(&self) -> bool {
        self.offsets.is_mapped() && self.edges.is_mapped() && self.triples.is_mapped()
    }

    /// Histogram of out-degrees in log2 buckets: `hist[k]` counts entities
    /// with total out-degree in `[2^k, 2^(k+1))` (`hist[0]` counts degrees
    /// 0 and 1). Computed by streaming the offsets array — no per-entity
    /// allocation, safe at 10^6+ entities.
    pub fn degree_histogram_log2(&self) -> Vec<usize> {
        let mut hist = vec![0usize; 1];
        for w in self.offsets.windows(2) {
            let d = (w[1] - w[0]) as usize;
            let bucket = (usize::BITS - d.leading_zeros()).saturating_sub(1) as usize;
            if bucket >= hist.len() {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        hist
    }

    /// Per-base-relation directed edge counts (forward direction only),
    /// streamed over the edge array.
    pub fn relation_histogram(&self) -> Vec<usize> {
        let base = self.relations.base();
        let mut counts = vec![0usize; base.max(1)];
        for edge in self.edges.iter() {
            let r = edge.relation.0 as usize;
            if r < base {
                counts[r] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CsrStore {
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 1, 2),
            Triple::new(0, 1, 2),
        ];
        CsrStore::from_triples(3, 2, triples, None)
    }

    #[test]
    fn forward_and_inverse_views_partition_the_bucket() {
        let s = toy();
        for e in 0..3u32 {
            let e = EntityId(e);
            let fwd = s.forward_neighbors(e);
            let inv = s.inverse_neighbors(e);
            assert_eq!(fwd.len() + inv.len(), s.out_degree(e));
            assert!(fwd.iter().all(|x| s.relations().is_base(x.relation)));
            assert!(inv.iter().all(|x| s.relations().is_inverse(x.relation)));
        }
        // entity 0 has two forward edges and no inverse edges
        assert_eq!(s.forward_neighbors(EntityId(0)).len(), 2);
        assert!(s.inverse_neighbors(EntityId(0)).is_empty());
        // entity 2 is only ever a target: all inverse
        assert!(s.forward_neighbors(EntityId(2)).is_empty());
        assert_eq!(s.inverse_neighbors(EntityId(2)).len(), 2);
    }

    #[test]
    fn from_parts_accepts_own_output() {
        let s = toy();
        let rebuilt = CsrStore::from_parts(
            s.num_entities(),
            s.relations(),
            s.offsets.clone(),
            s.edges.clone(),
            s.triples.clone(),
        )
        .unwrap();
        assert_eq!(rebuilt.edges_slice(), s.edges_slice());
    }

    #[test]
    fn from_parts_rejects_corruption() {
        let s = toy();
        // wrong offsets length
        let err = CsrStore::from_parts(
            s.num_entities(),
            s.relations(),
            Slab::Owned(vec![0u32]),
            s.edges.clone(),
            s.triples.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, CsrError::OffsetsLength { .. }));
        // edge target out of range
        let bad = vec![
            Edge {
                relation: RelationId(0),
                target: EntityId(99),
            };
            s.num_edges()
        ];
        let err = CsrStore::from_parts(
            s.num_entities(),
            s.relations(),
            s.offsets.clone(),
            Slab::Owned(bad),
            s.triples.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, CsrError::EdgeTargetOutOfRange { .. }));
        // non-monotone offsets
        let err = CsrStore::from_parts(
            s.num_entities(),
            s.relations(),
            Slab::Owned(vec![0, 4, 2, s.num_edges() as u32]),
            s.edges.clone(),
            s.triples.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, CsrError::OffsetsNotMonotone { .. }));
    }

    #[test]
    fn histograms_stream_without_per_entity_state() {
        let s = toy();
        let deg = s.degree_histogram_log2();
        // degrees are 2, 2, 2 → all in bucket 1 ([2,4))
        assert_eq!(deg[1], 3);
        assert_eq!(deg.iter().sum::<usize>(), 3);
        let rel = s.relation_histogram();
        // r0 appears once, r1 twice (forward only)
        assert_eq!(rel, vec![1, 2]);
    }
}
