//! The scoring interface all single-hop KGE models implement.

use mmkgr_kg::{EntityId, RelationId};

/// Scores a candidate triple; **higher is more plausible**.
///
/// Distance-based models (TransE, MTRL) return negated distances so the
/// convention is uniform across the crate.
pub trait TripleScorer {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32;

    /// Score `(s, r, o)` for every entity `o` in `0..n`. The default loops
    /// over [`TripleScorer::score`]; models override with a vectorized path.
    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(n);
        for o in 0..n {
            out.push(self.score(s, r, EntityId(o as u32)));
        }
    }

    /// Plausibility probability via a sigmoid squash — the `l(e_s, r_q, e_T)`
    /// shaping term of the paper's destination reward (Eq. 13).
    fn probability(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let x = self.score(s, r, o);
        1.0 / (1.0 + (-x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f32);
    impl TripleScorer for Fixed {
        fn score(&self, _: EntityId, _: RelationId, o: EntityId) -> f32 {
            self.0 + o.0 as f32
        }
    }

    #[test]
    fn default_score_all_objects() {
        let m = Fixed(1.0);
        let mut out = Vec::new();
        m.score_all_objects(EntityId(0), RelationId(0), 3, &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn probability_is_sigmoid_of_score() {
        let m = Fixed(0.0);
        let p = m.probability(EntityId(0), RelationId(0), EntityId(0));
        assert!((p - 0.5).abs() < 1e-6);
        let p_hi = m.probability(EntityId(0), RelationId(0), EntityId(10));
        assert!(p_hi > 0.99);
    }
}

impl<T: TripleScorer> TripleScorer for std::sync::Arc<T> {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        (**self).score(s, r, o)
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        (**self).score_all_objects(s, r, n, out)
    }

    fn probability(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        (**self).probability(s, r, o)
    }
}

impl<T: TripleScorer + ?Sized> TripleScorer for &T {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        (**self).score(s, r, o)
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        (**self).score_all_objects(s, r, n, out)
    }

    fn probability(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        (**self).probability(s, r, o)
    }
}
