//! Layers: linear, embedding, LSTM cell, MLP.

use mmkgr_tensor::init;
use mmkgr_tensor::{Matrix, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::param::{Ctx, ParamId, Params};

/// Fully-connected layer `y = x·W (+ b)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: Option<ParamId>,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = params.add(format!("{name}.w"), init::xavier(rng, in_dim, out_dim));
        let b = bias.then(|| params.add(format!("{name}.b"), Matrix::zeros(1, out_dim)));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// `x: batch×in_dim → batch×out_dim`.
    pub fn forward(&self, ctx: &Ctx<'_>, x: Var) -> Var {
        let y = ctx.tape.matmul(x, ctx.p(self.w));
        match self.b {
            Some(b) => ctx.tape.add(y, ctx.p(b)),
            None => y,
        }
    }
}

/// Embedding table with row-gather lookup.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Embedding {
    pub table: ParamId,
    pub count: usize,
    pub dim: usize,
}

impl Embedding {
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        count: usize,
        dim: usize,
    ) -> Self {
        let table = params.add(name, init::xavier(rng, count, dim));
        Embedding { table, count, dim }
    }

    /// Wrap an existing (e.g. pre-trained) table.
    pub fn from_matrix(params: &mut Params, name: &str, table: Matrix) -> Self {
        let (count, dim) = table.shape();
        let table = params.add(name, table);
        Embedding { table, count, dim }
    }

    /// `indices.len()×dim` gather.
    pub fn forward(&self, ctx: &Ctx<'_>, indices: &[usize]) -> Var {
        ctx.tape.gather_rows(ctx.p(self.table), indices)
    }

    /// Read one row without touching a tape (inference fast path).
    pub fn row<'p>(&self, params: &'p Params, index: usize) -> &'p [f32] {
        params.value(self.table).row(index)
    }
}

/// A single LSTM cell. Used by MMKGR as the path-history encoder of
/// Eq. (1): `h_t = LSTM(h_{t-1}, [r_{t-1}; e_t])`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmCell {
    pub wx: ParamId,
    pub wh: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl LstmCell {
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx = params.add(format!("{name}.wx"), init::xavier(rng, in_dim, 4 * hidden));
        let wh = params.add(format!("{name}.wh"), init::xavier(rng, hidden, 4 * hidden));
        // Forget-gate bias starts at 1.0 (standard trick for gradient flow).
        let mut bias = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0);
        }
        let b = params.add(format!("{name}.b"), bias);
        LstmCell {
            wx,
            wh,
            b,
            in_dim,
            hidden,
        }
    }

    /// One step. `x: batch×in_dim`, `h,c: batch×hidden` → `(h', c')`.
    pub fn forward(&self, ctx: &Ctx<'_>, x: Var, h: Var, c: Var) -> (Var, Var) {
        let t = ctx.tape;
        let gates_x = t.matmul(x, ctx.p(self.wx));
        let gates_h = t.matmul(h, ctx.p(self.wh));
        let gates = t.add(gates_x, gates_h);
        let gates = t.add(gates, ctx.p(self.b));
        let hsz = self.hidden;
        let i = t.sigmoid(t.slice_cols(gates, 0, hsz));
        let f = t.sigmoid(t.slice_cols(gates, hsz, 2 * hsz));
        let g = t.tanh(t.slice_cols(gates, 2 * hsz, 3 * hsz));
        let o = t.sigmoid(t.slice_cols(gates, 3 * hsz, 4 * hsz));
        let c_next = t.add(t.mul(f, c), t.mul(i, g));
        let h_next = t.mul(o, t.tanh(c_next));
        (h_next, c_next)
    }

    /// Zero state for a batch.
    pub fn zero_state(&self, ctx: &Ctx<'_>, batch: usize) -> (Var, Var) {
        (
            ctx.input(Matrix::zeros(batch, self.hidden)),
            ctx.input(Matrix::zeros(batch, self.hidden)),
        )
    }
}

/// A single GRU cell — the alternative path-history encoder for the
/// `ablation_history` bench (the paper fixes LSTM in Eq. (1); GRU tests
/// whether the choice matters at our scale).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruCell {
    pub wx: ParamId,
    pub wh: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl GruCell {
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        // Gate order in the 3h-wide blocks: reset (r), update (z), candidate (n).
        let wx = params.add(format!("{name}.wx"), init::xavier(rng, in_dim, 3 * hidden));
        let wh = params.add(format!("{name}.wh"), init::xavier(rng, hidden, 3 * hidden));
        let b = params.add(format!("{name}.b"), Matrix::zeros(1, 3 * hidden));
        GruCell {
            wx,
            wh,
            b,
            in_dim,
            hidden,
        }
    }

    /// One step. `x: batch×in_dim`, `h: batch×hidden` → `h'`.
    ///
    /// `h' = (1 − z) ⊙ n + z ⊙ h`, with
    /// `n = tanh(x·Wxn + (r ⊙ h)·Whn + bn)`.
    pub fn forward(&self, ctx: &Ctx<'_>, x: Var, h: Var) -> Var {
        let t = ctx.tape;
        let hsz = self.hidden;
        let gx = t.add(t.matmul(x, ctx.p(self.wx)), ctx.p(self.b));
        let gh = t.matmul(h, ctx.p(self.wh));
        let r = t.sigmoid(t.add(t.slice_cols(gx, 0, hsz), t.slice_cols(gh, 0, hsz)));
        let z = t.sigmoid(t.add(
            t.slice_cols(gx, hsz, 2 * hsz),
            t.slice_cols(gh, hsz, 2 * hsz),
        ));
        // candidate uses the reset-gated recurrent contribution
        let rh = t.mul(r, h);
        let nh = t.matmul(rh, {
            // Whn is the third hsz-wide block of wh; slicing a parameter
            // keeps the gradient routed into the right columns.

            t.slice_cols(ctx.p(self.wh), 2 * hsz, 3 * hsz)
        });
        // x·Wxn + bn is already inside gx's third block.
        let n = t.tanh(t.add(t.slice_cols(gx, 2 * hsz, 3 * hsz), nh));
        // h' = (1−z)⊙n + z⊙h  ⇔  n + z⊙(h − n)
        t.add(n, t.mul(z, t.sub(h, n)))
    }

    /// Zero state for a batch.
    pub fn zero_state(&self, ctx: &Ctx<'_>, batch: usize) -> Var {
        ctx.input(Matrix::zeros(batch, self.hidden))
    }
}

/// Two-layer MLP with ReLU: the policy-head shape used across the RL models.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp2 {
    pub l1: Linear,
    pub l2: Linear,
}

impl Mlp2 {
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
    ) -> Self {
        Mlp2 {
            l1: Linear::new(params, rng, &format!("{name}.l1"), in_dim, hidden, true),
            l2: Linear::new(params, rng, &format!("{name}.l2"), hidden, out_dim, true),
        }
    }

    pub fn forward(&self, ctx: &Ctx<'_>, x: Var) -> Var {
        let h = self.l1.forward(ctx, x);
        let h = ctx.tape.relu(h);
        self.l2.forward(ctx, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_tensor::init::seeded_rng;
    use mmkgr_tensor::Tape;

    #[test]
    fn linear_shapes() {
        let mut params = Params::new();
        let mut rng = seeded_rng(0);
        let lin = Linear::new(&mut params, &mut rng, "l", 4, 3, true);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let x = ctx.input(Matrix::ones(2, 4));
        let y = lin.forward(&ctx, x);
        assert_eq!(tape.shape(y), (2, 3));
    }

    #[test]
    fn linear_no_bias_is_pure_matmul() {
        let mut params = Params::new();
        let mut rng = seeded_rng(0);
        let lin = Linear::new(&mut params, &mut rng, "l", 2, 2, false);
        // overwrite with identity
        *params.value_mut(lin.w) = Matrix::eye(2);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let x = ctx.input(Matrix::from_vec(1, 2, vec![5.0, -3.0]));
        let y = lin.forward(&ctx, x);
        assert_eq!(tape.value_cloned(y).as_slice(), &[5.0, -3.0]);
    }

    #[test]
    fn embedding_lookup_rows() {
        let mut params = Params::new();
        let table = Matrix::from_fn(4, 2, |r, _| r as f32);
        let emb = Embedding::from_matrix(&mut params, "e", table);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let out = emb.forward(&ctx, &[3, 1]);
        let v = tape.value_cloned(out);
        assert_eq!(v.as_slice(), &[3.0, 3.0, 1.0, 1.0]);
        assert_eq!(emb.row(&params, 2), &[2.0, 2.0]);
    }

    #[test]
    fn lstm_step_shapes_and_bounds() {
        let mut params = Params::new();
        let mut rng = seeded_rng(1);
        let cell = LstmCell::new(&mut params, &mut rng, "lstm", 3, 5);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let (h0, c0) = cell.zero_state(&ctx, 2);
        let x = ctx.input(Matrix::ones(2, 3));
        let (h1, c1) = cell.forward(&ctx, x, h0, c0);
        assert_eq!(tape.shape(h1), (2, 5));
        assert_eq!(tape.shape(c1), (2, 5));
        // h is a tanh-sigmoid product: strictly inside (-1, 1)
        let hv = tape.value_cloned(h1);
        assert!(hv.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn lstm_state_evolves() {
        let mut params = Params::new();
        let mut rng = seeded_rng(2);
        let cell = LstmCell::new(&mut params, &mut rng, "lstm", 2, 4);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let (mut h, mut c) = cell.zero_state(&ctx, 1);
        let x = ctx.input(Matrix::from_vec(1, 2, vec![1.0, -1.0]));

        (h, c) = cell.forward(&ctx, x, h, c);
        let h_first = tape.value_cloned(h);
        (h, _) = cell.forward(&ctx, x, h, c);
        let h_second = tape.value_cloned(h);
        assert_ne!(
            h_first, h_second,
            "same input, different state → different h"
        );
    }

    #[test]
    fn gru_step_shapes_and_bounds() {
        let mut params = Params::new();
        let mut rng = seeded_rng(3);
        let cell = GruCell::new(&mut params, &mut rng, "gru", 3, 5);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let h0 = cell.zero_state(&ctx, 2);
        let x = ctx.input(Matrix::ones(2, 3));
        let h1 = cell.forward(&ctx, x, h0);
        assert_eq!(tape.shape(h1), (2, 5));
        // h' is a convex combination of tanh candidate and previous h=0:
        // strictly inside (-1, 1).
        let hv = tape.value_cloned(h1);
        assert!(hv.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn gru_state_evolves() {
        let mut params = Params::new();
        let mut rng = seeded_rng(4);
        let cell = GruCell::new(&mut params, &mut rng, "gru", 2, 4);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let mut h = cell.zero_state(&ctx, 1);
        let x = ctx.input(Matrix::from_vec(1, 2, vec![1.0, -1.0]));
        h = cell.forward(&ctx, x, h);
        let h_first = tape.value_cloned(h);
        h = cell.forward(&ctx, x, h);
        let h_second = tape.value_cloned(h);
        assert_ne!(h_first, h_second);
    }

    #[test]
    fn gru_update_gate_interpolates_toward_previous_state() {
        // With the update gate saturated at z≈1 (huge bias on the z
        // block), h' must stay ≈ h regardless of the input.
        let mut params = Params::new();
        let mut rng = seeded_rng(5);
        let cell = GruCell::new(&mut params, &mut rng, "gru", 2, 3);
        let bias = params.value_mut(cell.b);
        for c in 3..6 {
            bias.set(0, c, 50.0); // z-block
        }
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let h_prev = ctx.input(Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.9]));
        let x = ctx.input(Matrix::from_vec(1, 2, vec![5.0, -5.0]));
        let h_next = tape.value_cloned(cell.forward(&ctx, x, h_prev));
        for (a, b) in h_next.as_slice().iter().zip([0.3, -0.2, 0.9]) {
            assert!((a - b).abs() < 1e-3, "z≈1 should copy state: {a} vs {b}");
        }
    }

    #[test]
    fn gru_gradients_reach_all_parameter_blocks() {
        use crate::optim::Adam;
        // One optimization step on a squared-norm loss must move wx, wh
        // and b — i.e. gradient flows through reset, update and candidate.
        let mut params = Params::new();
        let mut rng = seeded_rng(6);
        let cell = GruCell::new(&mut params, &mut rng, "gru", 2, 3);
        let before: Vec<Matrix> = params.iter().map(|(_, _, m)| m.clone()).collect();
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let h0 = ctx.input(Matrix::from_vec(1, 3, vec![0.5, -0.5, 0.25]));
        let x = ctx.input(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let h1 = cell.forward(&ctx, x, h0);
        let loss = tape.sum(tape.mul(h1, h1));
        let grads = tape.backward(loss);
        ctx.into_leases().accumulate(&mut params, &grads);
        let mut adam = Adam::new(0.1);
        adam.step(&mut params);
        for ((_, name, after), before) in params.iter().zip(&before) {
            assert_ne!(
                after.as_slice(),
                before.as_slice(),
                "param {name} did not receive gradient"
            );
        }
    }

    #[test]
    fn mlp_trains_xor() {
        use crate::optim::Adam;
        let mut params = Params::new();
        let mut rng = seeded_rng(7);
        let mlp = Mlp2::new(&mut params, &mut rng, "xor", 2, 8, 1);
        let mut opt = Adam::new(0.05);
        let xs = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = [0.0f32, 1.0, 1.0, 0.0];
        let mut final_loss = f32::MAX;
        for _ in 0..300 {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &params);
            let x = ctx.input(xs.clone());
            let logits = mlp.forward(&ctx, x);
            let probs = tape.sigmoid(logits);
            let target = ctx.input(Matrix::col_vector(&ys));
            let diff = tape.sub(probs, target);
            let sq = tape.mul(diff, diff);
            let loss = tape.mean(sq);
            final_loss = tape.scalar(loss);
            let grads = tape.backward(loss);
            ctx.into_leases().accumulate(&mut params, &grads);
            opt.step(&mut params);
            params.zero_grads();
        }
        assert!(final_loss < 0.03, "XOR did not converge: loss {final_loss}");
    }
}
