//! Extension experiment — few-shot relations on MKGs (the paper's §VI
//! future work, explored here).
//!
//! Buckets test triples by the training frequency of their relation and
//! compares MMKGR against its structure-only ablation (OSKGR) and MINERVA
//! per bucket. Hypothesis: the multi-modal gain (MMKGR − OSKGR) is
//! *largest on the rarest relations*, where structural evidence is
//! thinnest and the modality signal carries relatively more of the
//! decision.
//!
//! Usage: `cargo run --release -p mmkgr-bench --bin ext_fewshot [-- --scale quick|standard|full]`

use mmkgr_bench::Stopwatch;
use mmkgr_core::Variant;
use mmkgr_eval::{
    pct, save_json, Dataset, FewShotSplit, Harness, HarnessConfig, ScaleChoice, Table,
};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let mut dump = Vec::new();
    // FB is the interesting dataset here: its large relation vocabulary
    // gives a real frequency spectrum (WN9 has 9 relations, all frequent).
    for dataset in [Dataset::FbImgTxt, Dataset::Wn9ImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{} ({} eval triples)", h.kg.stats(), h.eval_triples.len());
        let boundaries = [10, 50, 250];
        let split = FewShotSplit::new(&h.kg.split.train, &h.eval_triples, &boundaries);
        for b in &split.buckets {
            println!(
                "bucket {:>8}: {} relations, {} test triples",
                b.label, b.relations, b.triples
            );
        }

        let (mmkgr, _) = h.train_variant(Variant::Full);
        sw.lap("MMKGR");
        let (oskgr, _) = h.train_variant(Variant::Oskgr);
        sw.lap("OSKGR");
        let (minerva, _) = h.train_minerva();
        sw.lap("MINERVA");

        let mut table = Table::new(
            format!(
                "Few-shot relations on {} (Hits@1 per frequency bucket)",
                dataset.name()
            ),
            &[
                "Freq bucket",
                "Triples",
                "MINERVA",
                "OSKGR",
                "MMKGR",
                "MM-OS gain",
            ],
        );
        let rows = [
            (
                "MINERVA",
                split.eval_policy(&minerva, &h.kg.graph, &h.known, h.cfg.beam, 4),
            ),
            (
                "OSKGR",
                split.eval_policy(&oskgr.model, &h.kg.graph, &h.known, h.cfg.beam, 4),
            ),
            (
                "MMKGR",
                split.eval_policy(&mmkgr.model, &h.kg.graph, &h.known, h.cfg.beam, 4),
            ),
        ];
        let mut gains: Vec<(String, f64)> = Vec::new();
        for (i, bucket) in split.buckets.iter().enumerate() {
            let cell = |name: &str| -> (String, f64) {
                let r = rows.iter().find(|(n, _)| *n == name).unwrap().1[i].as_ref();
                match r {
                    Some(res) => (pct(res.hits1), res.hits1),
                    None => ("—".to_string(), 0.0),
                }
            };
            let (minerva_s, _) = cell("MINERVA");
            let (oskgr_s, oskgr_v) = cell("OSKGR");
            let (mmkgr_s, mmkgr_v) = cell("MMKGR");
            let gain = mmkgr_v - oskgr_v;
            if bucket.triples > 0 {
                gains.push((bucket.label.clone(), gain));
            }
            table.push_row(vec![
                bucket.label.clone(),
                bucket.triples.to_string(),
                minerva_s,
                oskgr_s,
                mmkgr_s,
                format!("{:+.1}", gain * 100.0),
            ]);
        }
        table.print();
        if gains.len() >= 2 {
            let (rare, common) = (gains.first().unwrap(), gains.last().unwrap());
            println!(
                "hypothesis (modal gain largest on rare relations): rare[{}] {:+.1} vs common[{}] {:+.1} → {}",
                rare.0,
                rare.1 * 100.0,
                common.0,
                common.1 * 100.0,
                if rare.1 >= common.1 { "holds" } else { "does not hold at this scale" }
            );
        }
        dump.push((dataset.name().to_string(), split.buckets.clone(), gains));
    }
    save_json("ext_fewshot", &dump);
}
