//! The MDP over the multi-modal KG (paper §IV-C): states, actions,
//! transitions.
//!
//! The action space at entity `e_t` is its outgoing edges plus the NO_OP
//! self-loop (the paper's STOP mechanism: once the agent believes it has
//! arrived it can hold position until the horizon `T`). During training the
//! direct edge answering the current query is masked so the agent must
//! learn multi-hop paths — the standard MINERVA-family protocol MMKGR
//! inherits.

use mmkgr_kg::{Edge, EntityId, KnowledgeGraph, RelationId};

/// A triple query the agent is rolling out: start entity + query relation,
/// with the gold answer kept for reward computation and edge masking.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RolloutQuery {
    pub source: EntityId,
    pub relation: RelationId,
    pub answer: EntityId,
}

/// Mutable rollout state for one query.
#[derive(Clone, Debug)]
pub struct RolloutState {
    pub query: RolloutQuery,
    pub current: EntityId,
    /// Relation taken at the previous step (NO_OP at t=0).
    pub last_relation: RelationId,
    /// Non-NO_OP hops taken so far (the `k` of the distance reward).
    pub hops: usize,
    /// Full action trace for path reporting / diversity reward.
    pub trace: Vec<Edge>,
}

impl RolloutState {
    pub fn new(query: RolloutQuery, no_op: RelationId) -> Self {
        RolloutState {
            query,
            current: query.source,
            last_relation: no_op,
            hops: 0,
            trace: Vec::new(),
        }
    }

    /// Apply a chosen edge.
    pub fn step(&mut self, edge: Edge, no_op: RelationId) {
        if edge.relation != no_op {
            self.hops += 1;
        }
        self.current = edge.target;
        self.last_relation = edge.relation;
        self.trace.push(edge);
    }

    pub fn at_answer(&self) -> bool {
        self.current == self.query.answer
    }

    /// Relation sequence excluding NO_OPs (the "path" of Eq. 15).
    pub fn relation_path(&self, no_op: RelationId) -> Vec<RelationId> {
        self.trace
            .iter()
            .filter(|e| e.relation != no_op)
            .map(|e| e.relation)
            .collect()
    }
}

/// Environment: wraps the graph and produces masked action spaces.
pub struct Env<'g> {
    pub graph: &'g KnowledgeGraph,
    no_op: RelationId,
    /// When true, the direct `(source, r_q, answer)` edge is hidden while
    /// the agent stands on the query source (training protocol).
    pub mask_answer_edge: bool,
}

impl<'g> Env<'g> {
    pub fn new(graph: &'g KnowledgeGraph, mask_answer_edge: bool) -> Self {
        Env {
            graph,
            no_op: graph.relations().no_op(),
            mask_answer_edge,
        }
    }

    #[inline]
    pub fn no_op(&self) -> RelationId {
        self.no_op
    }

    /// Fill `buf` with the available actions at `state` — NO_OP self-loop
    /// first, then the (possibly masked) outgoing edges.
    pub fn fill_actions(&self, state: &RolloutState, buf: &mut Vec<Edge>) {
        buf.clear();
        buf.push(Edge {
            relation: self.no_op,
            target: state.current,
        });
        let masking = self.mask_answer_edge && state.current == state.query.source;
        for &e in self.graph.neighbors(state.current) {
            if masking && e.relation == state.query.relation && e.target == state.query.answer {
                continue;
            }
            buf.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_kg::{KnowledgeGraph, Triple};

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(
            4,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 1, 2),
                Triple::new(1, 1, 3),
            ],
            None,
        )
    }

    fn query() -> RolloutQuery {
        RolloutQuery {
            source: EntityId(0),
            relation: RelationId(0),
            answer: EntityId(1),
        }
    }

    #[test]
    fn actions_include_no_op_first() {
        let g = graph();
        let env = Env::new(&g, false);
        let state = RolloutState::new(query(), env.no_op());
        let mut buf = Vec::new();
        env.fill_actions(&state, &mut buf);
        assert_eq!(buf[0].relation, env.no_op());
        assert_eq!(buf[0].target, EntityId(0));
        assert_eq!(buf.len(), 1 + g.out_degree(EntityId(0)));
    }

    #[test]
    fn answer_edge_masked_at_source_only() {
        let g = graph();
        let env = Env::new(&g, true);
        let state = RolloutState::new(query(), env.no_op());
        let mut buf = Vec::new();
        env.fill_actions(&state, &mut buf);
        assert!(
            !buf.iter()
                .any(|e| e.relation == RelationId(0) && e.target == EntityId(1)),
            "direct answer edge must be masked at the source"
        );
        // After moving away, the same edge would be visible again (no
        // masking away from the source).
        let mut moved = state.clone();
        moved.step(
            Edge {
                relation: RelationId(1),
                target: EntityId(2),
            },
            env.no_op(),
        );
        env.fill_actions(&moved, &mut buf);
        assert_eq!(buf.len(), 1 + g.out_degree(EntityId(2)));
    }

    #[test]
    fn hops_ignore_no_op() {
        let g = graph();
        let env = Env::new(&g, false);
        let mut state = RolloutState::new(query(), env.no_op());
        state.step(
            Edge {
                relation: env.no_op(),
                target: EntityId(0),
            },
            env.no_op(),
        );
        assert_eq!(state.hops, 0);
        state.step(
            Edge {
                relation: RelationId(0),
                target: EntityId(1),
            },
            env.no_op(),
        );
        assert_eq!(state.hops, 1);
        assert!(state.at_answer());
        assert_eq!(state.relation_path(env.no_op()), vec![RelationId(0)]);
    }

    #[test]
    fn isolated_entity_still_has_no_op() {
        let g = KnowledgeGraph::from_triples(3, 1, vec![Triple::new(0, 0, 1)], None);
        let env = Env::new(&g, false);
        let q = RolloutQuery {
            source: EntityId(2),
            relation: RelationId(0),
            answer: EntityId(0),
        };
        let state = RolloutState::new(q, env.no_op());
        let mut buf = Vec::new();
        env.fill_actions(&state, &mut buf);
        assert_eq!(buf.len(), 1, "dead ends must still offer NO_OP");
    }
}
