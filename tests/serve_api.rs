//! Integration tests for the unified serving API (`mmkgr::core::serve`):
//!
//! - MMKGR parity: `KgReasoner::answer` through the facade ranks exactly
//!   as direct `beam_search`, and metrics computed through the serve
//!   surface match `evaluate_ranking` on the same queries.
//! - ConvE parity: `KgReasoner::answer` orders candidates exactly as
//!   `score_all_objects`.
//! - Concurrency: [`WorkerPool::answer_batch`] from 4 worker threads over
//!   the shared `Arc<dyn KgReasoner + Send + Sync>` equals sequential
//!   answering.

use std::collections::HashMap;
use std::sync::Arc;

use mmkgr::core::infer::{beam_search, evaluate_ranking};
use mmkgr::core::mdp::RolloutQuery;
use mmkgr::core::serve::{Coverage, KgReasoner, Query, ServeConfig};
use mmkgr::prelude::*;

const BEAM: usize = 8;
const STEPS: usize = 3;

/// One quick harness + MMKGR reasoner shared by the parity tests.
fn built_mmkgr() -> BuiltReasoner {
    ReasonerBuilder::new(Dataset::Wn9ImgTxt, ScaleChoice::Quick)
        .model(ModelChoice::Mmkgr(Variant::Full))
        .tune(|c| {
            c.dataset_scale = 0.02;
            c.rl_epochs = 2;
            c.kge_epochs = 2;
            c.max_eval = 12;
        })
        .serve_config(ServeConfig {
            beam_width: BEAM,
            max_steps: STEPS,
            ..ServeConfig::default()
        })
        .build()
}

#[test]
fn mmkgr_facade_ranking_matches_direct_beam_search_and_evaluate_ranking() {
    let built = built_mmkgr();
    let h = &built.harness;
    // Rebuild the identical model directly (the builder's training is
    // deterministic per harness config), so we can drive the raw
    // primitives against the served facade.
    let (trainer, _) = h.train_variant(Variant::Full);
    let model = trainer.model;

    for t in h.eval_triples.iter().take(6) {
        // --- per-query parity with raw beam search -------------------
        let answer = built.reasoner.answer(&Query::new(t.s, t.r).with_top_k(0));
        assert_eq!(answer.coverage, Coverage::Reached);
        let paths = beam_search(&model, &h.kg.graph, t.s, t.r, BEAM, STEPS);
        let mut best: HashMap<EntityId, f32> = HashMap::new();
        for p in &paths {
            let e = best.entry(p.entity).or_insert(f32::NEG_INFINITY);
            if p.logp > *e {
                *e = p.logp;
            }
        }
        assert_eq!(
            answer.ranked.len(),
            best.len(),
            "facade must rank exactly the beam-reached entities"
        );
        for c in &answer.ranked {
            let direct = best[&c.entity];
            assert!(
                (c.score - direct).abs() < 1e-6,
                "facade score {} != best beam logp {direct} for {:?}",
                c.score,
                c.entity
            );
        }
        for w in answer.ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "ranking must be sorted");
        }
    }

    // --- aggregate parity with evaluate_ranking ----------------------
    let queries: Vec<RolloutQuery> = h
        .eval_triples
        .iter()
        .flat_map(|t| {
            let rs = h.kg.graph.relations();
            [
                RolloutQuery {
                    source: t.s,
                    relation: t.r,
                    answer: t.o,
                },
                RolloutQuery {
                    source: t.o,
                    relation: rs.inverse(t.r),
                    answer: t.s,
                },
            ]
        })
        .collect();
    let direct = evaluate_ranking(&model, &h.kg.graph, &queries, &h.known, BEAM, STEPS);
    let served = h.eval_reasoner(&built.reasoner);
    assert_eq!(served.queries, direct.total);
    assert!(
        (served.mrr - direct.mrr).abs() < 1e-12,
        "{} vs {}",
        served.mrr,
        direct.mrr
    );
    assert!((served.hits1 - direct.hits1).abs() < 1e-12);
    assert!((served.hits5 - direct.hits5).abs() < 1e-12);
    assert!((served.hits10 - direct.hits10).abs() < 1e-12);
    assert_eq!(served.hop_counts, direct.hop_counts);
}

#[test]
fn conve_facade_ordering_matches_score_all_objects() {
    let built = ReasonerBuilder::new(Dataset::Wn9ImgTxt, ScaleChoice::Quick)
        .model(ModelChoice::ConvE)
        .tune(|c| {
            c.dataset_scale = 0.02;
            c.kge_epochs = 2;
            c.max_eval = 12;
        })
        .build();
    let h = &built.harness;
    let n = h.kg.num_entities();
    let conve = h.conve();

    for t in h.eval_triples.iter().take(4) {
        let answer = built.reasoner.answer(&Query::new(t.s, t.r).with_top_k(0));
        assert_eq!(answer.coverage, Coverage::Exhaustive);
        assert_eq!(
            answer.ranked.len(),
            n,
            "exhaustive scorers rank every entity"
        );

        let mut scores = Vec::new();
        conve.score_all_objects(t.s, t.r, n, &mut scores);
        // The facade's order must be the argsort of score_all_objects
        // (descending score, ascending entity id on ties).
        let mut expect: Vec<u32> = (0..n as u32).collect();
        expect.sort_by(|&a, &b| {
            scores[b as usize]
                .total_cmp(&scores[a as usize])
                .then_with(|| a.cmp(&b))
        });
        let got: Vec<u32> = answer.ranked.iter().map(|c| c.entity.0).collect();
        assert_eq!(got, expect, "facade order must equal scorer argsort");
        for c in &answer.ranked {
            assert_eq!(c.score, scores[c.entity.index()]);
            assert!(c.evidence.is_none(), "KGE scorers have no path evidence");
        }
    }
}

#[test]
fn answer_batch_from_four_threads_matches_sequential() {
    let built = built_mmkgr();
    let h = &built.harness;
    let reasoner: Arc<dyn KgReasoner + Send + Sync> = built.reasoner;
    let queries: Vec<Query> = h
        .eval_triples
        .iter()
        .map(|t| Query::new(t.s, t.r).with_top_k(5))
        .collect();
    assert!(queries.len() >= 8, "need a real batch to exercise the pool");

    let sequential: Vec<_> = queries.iter().map(|q| reasoner.answer(q)).collect();
    let pool = WorkerPool::new(Arc::clone(&reasoner), 4);
    let batched = pool.answer_batch(&queries);
    assert_eq!(batched.len(), sequential.len());
    for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
        assert_eq!(b, s, "query {i}: batched answer must equal sequential");
    }

    // Degenerate worker counts behave.
    assert_eq!(
        WorkerPool::new(Arc::clone(&reasoner), 1).answer_batch(&queries),
        sequential
    );
    assert_eq!(
        WorkerPool::new(Arc::clone(&reasoner), 64).answer_batch(&queries),
        sequential
    );
    assert!(pool.answer_batch(&[]).is_empty());
}
