//! JSON text rendering (compact and pretty).

use serde::Value;

pub fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub fn write_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Shortest-roundtrip float formatting (Rust's `{:?}` for f64 guarantees
/// parse-back equality). JSON has no NaN/Inf; clamp those to null like
/// serde_json does.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f:?}");
    out.push_str(&s);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
