//! Integration tests for the ablation variants' *behavioural contracts*:
//! each named variant must actually change the computation it claims to.

use mmkgr::core::mdp::{RolloutQuery, RolloutState};
use mmkgr::core::{NoShaper, RewardEngine};
use mmkgr::core::{RewardConfig, Variant};
use mmkgr::datagen::generate;
use mmkgr::kg::Edge;
use mmkgr::prelude::*;

fn kg() -> MultiModalKG {
    generate(&GenConfig::tiny())
}

#[test]
fn every_variant_constructs_and_rolls_out() {
    let kg = kg();
    for v in [
        Variant::Full,
        Variant::Oskgr,
        Variant::Stkgr,
        Variant::Sikgr,
        Variant::Fakgr,
        Variant::Fgkgr,
        Variant::Dekgr,
        Variant::Dskgr,
        Variant::Dvkgr,
        Variant::Zokgr,
    ] {
        let cfg = MmkgrConfig::quick().variant(v);
        let model = MmkgrModel::new(&kg, cfg, None);
        let paths = beam_search(&model, &kg.graph, EntityId(0), RelationId(0), 4, 3);
        assert!(!paths.is_empty(), "{v:?} produced no beams");
    }
}

#[test]
fn reward_ablations_change_totals() {
    let kg = kg();
    let no_op = kg.graph.relations().no_op();
    let q = RolloutQuery {
        source: EntityId(0),
        relation: RelationId(0),
        answer: EntityId(1),
    };
    // a successful 2-hop rollout
    let mut state = RolloutState::new(q, no_op);
    state.step(
        Edge {
            relation: RelationId(1),
            target: EntityId(3),
        },
        no_op,
    );
    state.step(
        Edge {
            relation: RelationId(0),
            target: EntityId(1),
        },
        no_op,
    );
    assert!(state.at_answer());

    let total_of = |rc: RewardConfig| -> f32 {
        let mut cfg = MmkgrConfig::quick();
        cfg.reward = rc;
        let engine: RewardEngine<NoShaper> = RewardEngine::new(&cfg, Some(NoShaper));
        engine.total(&state, &[1.0, 0.0]).total
    };

    let full = total_of(RewardConfig::full());
    let dekgr = total_of(RewardConfig::destination_only());
    let zokgr = total_of(RewardConfig::zero_one());
    // DEKGR on success = pure destination = 1.0
    assert!((dekgr - 1.0).abs() < 1e-6);
    // ZOKGR on success = 1.0 as well
    assert!((zokgr - 1.0).abs() < 1e-6);
    // Full mixes in the distance reward (2 hops → 0.5): smaller than 1.
    assert!(full < 1.0 && full > 0.0, "full reward {full}");
}

#[test]
fn modality_ablations_change_feature_widths() {
    let full = MmkgrConfig::quick();
    assert_eq!(full.modal_row_dim(), 2 * full.modal_proj_dim);
    let st = MmkgrConfig::quick().variant(Variant::Stkgr);
    assert_eq!(st.modal_row_dim(), st.modal_proj_dim);
    let os = MmkgrConfig::quick().variant(Variant::Oskgr);
    assert_eq!(os.modal_row_dim(), 0);
}

#[test]
fn gate_ablations_produce_distinct_policies() {
    let kg = kg();
    let probe = |v: Variant| -> Vec<f32> {
        let cfg = MmkgrConfig::quick().variant(v);
        let model = MmkgrModel::new(&kg, cfg, None);
        let no_op = kg.graph.relations().no_op();
        let mut actions = vec![Edge {
            relation: no_op,
            target: EntityId(0),
        }];
        actions.extend_from_slice(kg.graph.neighbors(EntityId(0)));
        let h = vec![0.1f32; model.cfg.struct_dim];
        let mut probs = Vec::new();
        model.raw_state_probs(EntityId(0), &h, RelationId(0), &actions, &mut probs);
        probs
    };
    let full = probe(Variant::Full);
    let fakgr = probe(Variant::Fakgr);
    let fgkgr = probe(Variant::Fgkgr);
    assert_ne!(full, fakgr, "removing filtration must change the policy");
    assert_ne!(
        full, fgkgr,
        "removing attention-fusion must change the policy"
    );
    assert_ne!(fakgr, fgkgr);
}
