//! Property-based tests for the matrix kernels and softmax invariants.

use mmkgr_tensor::{softmax_slice, Matrix, Tape};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn softmax_is_a_distribution(mut xs in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
        softmax_slice(&mut xs);
        prop_assert!(xs.iter().all(|v| (0.0..=1.0).contains(v)));
        let sum: f32 = xs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_shift_invariant(xs in proptest::collection::vec(-5.0f32..5.0, 1..16), shift in -20.0f32..20.0) {
        let mut a = xs.clone();
        softmax_slice(&mut a);
        let mut b: Vec<f32> = xs.iter().map(|v| v + shift).collect();
        softmax_slice(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_involution(m in arb_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left(m in arb_matrix(8)) {
        let id = Matrix::eye(m.rows());
        let out = id.matmul(&m);
        for (a, b) in out.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_tn_nt_consistent(a in arb_matrix(6), b in arb_matrix(6)) {
        // Align shapes: use a (r x c) and b (r x d) for tn.
        let r = a.rows().min(b.rows());
        let a2 = a.gather_rows(&(0..r).collect::<Vec<_>>());
        let b2 = b.gather_rows(&(0..r).collect::<Vec<_>>());
        let fast = a2.matmul_tn(&b2);
        let slow = a2.transpose().matmul(&b2);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn concat_slice_roundtrip(a in arb_matrix(6), b in arb_matrix(6)) {
        let r = a.rows().min(b.rows());
        let idx: Vec<usize> = (0..r).collect();
        let a2 = a.gather_rows(&idx);
        let b2 = b.gather_rows(&idx);
        let cat = a2.concat_cols(&b2);
        prop_assert_eq!(cat.slice_cols(0, a2.cols()), a2.clone());
        prop_assert_eq!(cat.slice_cols(a2.cols(), a2.cols() + b2.cols()), b2);
    }

    #[test]
    fn sum_linear_in_scale(m in arb_matrix(6), k in -3.0f32..3.0) {
        let s1 = m.sum();
        let s2 = m.map(|v| v * k).sum();
        prop_assert!((s2 - k * s1).abs() < 1e-2 * (1.0 + s1.abs() * k.abs()));
    }

    #[test]
    fn tape_add_commutes(m in arb_matrix(5)) {
        let t = Tape::new();
        let a = t.input(m.clone());
        let b = t.input(m.map(|v| v * 0.5));
        let ab = t.add(a, b);
        let ba = t.add(b, a);
        prop_assert_eq!(t.value_cloned(ab), t.value_cloned(ba));
    }

    #[test]
    fn backward_of_sum_is_ones(m in arb_matrix(5)) {
        let t = Tape::new();
        let a = t.input(m.clone());
        let loss = t.sum(a);
        let g = t.backward(loss);
        let ga = g.get(a).unwrap();
        prop_assert!(ga.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn gather_rows_matches_manual(m in arb_matrix(6), picks in proptest::collection::vec(0usize..6, 1..8)) {
        let picks: Vec<usize> = picks.into_iter().map(|p| p % m.rows()).collect();
        let g = m.gather_rows(&picks);
        for (out_r, &src) in picks.iter().enumerate() {
            prop_assert_eq!(g.row(out_r), m.row(src));
        }
    }
}
