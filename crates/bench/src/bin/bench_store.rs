//! Storage-tier benchmark: the `"store"` section of `BENCH_serve.json`.
//!
//! Answers the million-entity questions the snapshot tier exists for,
//! on a structural scale graph (`mmkgr_datagen::generate_scale`,
//! 10^6 entities by default):
//!
//! - **write/load** — wall time to serialize the CSR graph plus a KGE
//!   weight section into one `.mmkg` file, and to open it back (mmap);
//!   the loaded CSR arrays are byte-compared against the originals, so
//!   every run re-proves the bitwise round-trip at full scale.
//! - **boot-to-first-answer** — `Snapshot::open` → graph → restore
//!   TransE weights → `ScorerReasoner` → first `/v1/answer`-equivalent
//!   query, the cold-start latency `mmkgr serve --snapshot` promises
//!   (<1s at 10^6 entities).
//! - **sharded vs unsharded q/s** — exhaustive scoring throughput of
//!   [`ShardedReasoner`] (entity-range shards) against the single-core
//!   [`ScorerReasoner`] on identical queries, with the parity of every
//!   answer asserted along the way.
//!
//! Usage: `cargo run --release -p mmkgr-bench --bin bench_store`
//! (`MMKGR_STORE_ENTITIES=50000` shrinks the tier for smoke runs; the
//! section merges into `BENCH_serve.json` in the current directory).

use std::sync::Arc;
use std::time::Instant;

use mmkgr_bench::{merge_bench_section, RunStamp};
use mmkgr_core::serve::{KgReasoner, Query, ScorerReasoner, ShardedReasoner};
use mmkgr_datagen::{generate_scale, ScaleConfig};
use mmkgr_embed::TransE;
use mmkgr_kg::{KnowledgeGraph, Snapshot, SnapshotWriter};
use serde::Serialize;

const DIM: usize = 16;
const SEED: u64 = 0xB007;

#[derive(Serialize)]
struct StoreBench {
    machine: String,
    commit: String,
    entities: usize,
    base_relations: usize,
    train_triples: usize,
    edges_with_inverses: usize,
    snapshot_bytes: u64,
    generate_ms: f64,
    write_ms: f64,
    load_ms: f64,
    mmap_backed: bool,
    roundtrip_bitwise: bool,
    boot_to_first_answer_ms: f64,
    queries: usize,
    unsharded_qps: f64,
    shards: usize,
    sharded_qps: f64,
    sharded_answers_identical: bool,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn edges_eq(a: &KnowledgeGraph, b: &KnowledgeGraph) -> bool {
    a.store().offsets_slice() == b.store().offsets_slice()
        && a.store().edges_slice() == b.store().edges_slice()
        && a.store().triples() == b.store().triples()
        && a.relations() == b.relations()
}

fn main() {
    let entities: usize = std::env::var("MMKGR_STORE_ENTITIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let cfg = ScaleConfig::million().with_entities(entities);
    println!("store bench: {entities} entities, TransE dim {DIM}");

    let t = Instant::now();
    let kg = generate_scale(&cfg);
    let generate_ms = ms(t);
    println!(
        "  generated {} train triples ({} CSR edges) in {generate_ms:.0} ms",
        kg.split.train.len(),
        kg.graph.store().num_edges()
    );

    // Untrained TransE: the storage tier measures bytes moved, not MRR.
    let rs = kg.graph.relations();
    let transe = TransE::new(entities, rs.total(), DIM, SEED);
    let flat: Vec<f32> = {
        let mut v = Vec::with_capacity(transe.params.num_scalars());
        for (_, _, m) in transe.params.iter() {
            v.extend_from_slice(m.as_slice());
        }
        v
    };

    let path = std::env::temp_dir().join(format!("mmkgr_bench_store_{}.mmkg", std::process::id()));
    let t = Instant::now();
    let mut w = SnapshotWriter::create(&path).expect("create snapshot");
    w.add_graph(&kg.graph).expect("write graph");
    let weight_section = w.add_f32(&flat, 1, flat.len()).expect("write weights");
    w.finish().expect("finish snapshot");
    let write_ms = ms(t);
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("  wrote {snapshot_bytes} bytes in {write_ms:.0} ms");

    let t = Instant::now();
    let snap = Snapshot::open(&path).expect("open snapshot");
    let loaded = snap.graph().expect("load graph");
    let load_ms = ms(t);
    let mmap_backed = snap.is_mapped();
    let roundtrip_bitwise = edges_eq(&kg.graph, &loaded);
    assert!(roundtrip_bitwise, "CSR arrays must round-trip bitwise");
    println!(
        "  loaded ({}) in {load_ms:.0} ms — bitwise round-trip ok",
        if mmap_backed { "mmap" } else { "read" }
    );

    // Cold boot: open → graph → weights → reasoner → first answer.
    let queries: Vec<Query> = kg
        .split
        .test
        .iter()
        .take(64)
        .map(|q| Query::new(q.s, q.r).with_top_k(10))
        .collect();
    let t = Instant::now();
    let snap2 = Snapshot::open(&path).expect("reopen snapshot");
    let graph2 = snap2.graph().expect("load graph");
    let (flat2, _, _) = snap2.f32_tensor(weight_section).expect("load weights");
    let mut booted = TransE::new(graph2.num_entities(), graph2.relations().total(), DIM, SEED);
    {
        let mut off = 0;
        for (_, value, _) in booted.params.iter_mut() {
            let n = value.len();
            value.as_mut_slice().copy_from_slice(&flat2[off..off + n]);
            off += n;
        }
    }
    let unsharded = ScorerReasoner::new(
        "TransE",
        Arc::new(booted),
        graph2.num_entities(),
        graph2.relations(),
    );
    let first = unsharded.answer(&queries[0]);
    let boot_to_first_answer_ms = ms(t);
    assert!(!first.ranked.is_empty());
    println!("  boot-to-first-answer: {boot_to_first_answer_ms:.0} ms");

    // Throughput: unsharded vs entity-range sharded exhaustive scoring.
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let sharded = ShardedReasoner::from_scorer(
        "TransE",
        Arc::new(TransE::new(entities, rs.total(), DIM, SEED)),
        entities,
        rs,
        shards,
    )
    .expect("sharded reasoner");

    let t = Instant::now();
    let unsharded_answers: Vec<_> = queries.iter().map(|q| unsharded.answer(q)).collect();
    let unsharded_qps = queries.len() as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let sharded_answers: Vec<_> = queries.iter().map(|q| sharded.answer(q)).collect();
    let sharded_qps = queries.len() as f64 / t.elapsed().as_secs_f64();
    let sharded_answers_identical = unsharded_answers == sharded_answers;
    assert!(
        sharded_answers_identical,
        "sharded answers must be identical to unsharded"
    );
    println!(
        "  exhaustive scoring: {unsharded_qps:.1} q/s unsharded, {sharded_qps:.1} q/s with {shards} shards"
    );

    std::fs::remove_file(&path).ok();

    let stamp = RunStamp::capture();
    let section = StoreBench {
        machine: stamp.machine,
        commit: stamp.commit,
        entities,
        base_relations: cfg.base_relations,
        train_triples: kg.split.train.len(),
        edges_with_inverses: kg.graph.store().num_edges(),
        snapshot_bytes,
        generate_ms,
        write_ms,
        load_ms,
        mmap_backed,
        roundtrip_bitwise,
        boot_to_first_answer_ms,
        queries: queries.len(),
        unsharded_qps,
        shards,
        sharded_qps,
        sharded_answers_identical,
    };
    merge_bench_section("BENCH_serve.json", "store", section.serialize_value());
}
