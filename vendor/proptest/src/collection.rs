//! Collection strategies (`proptest::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specification accepted by [`vec`]: a fixed size, `a..b`, or
/// `a..=b`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// inclusive
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `proptest::collection::vec(element_strategy, len)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
