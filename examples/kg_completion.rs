//! Knowledge-graph completion pipeline: compare single-hop embedding
//! models against multi-hop MMKGR on the same multi-modal KG — the
//! paper's central claim (multi-hop + fused modalities wins) end to end.
//!
//! ```sh
//! cargo run --release --example kg_completion
//! ```

use mmkgr::datagen::generate;
use mmkgr::embed::{ComplEx, DistMult};
use mmkgr::eval::{eval_scorer_entity, pct, Table};
use mmkgr::prelude::*;

fn main() {
    let kg = generate(&GenConfig::wn9_img_txt().scaled(0.05));
    println!("{}", kg.stats());
    let known = kg.all_known();
    let r_total = kg.graph.relations().total();
    let kge_cfg = KgeTrainConfig::default().with_epochs(20);

    let mut table = Table::new(
        "KG completion on a synthetic multi-modal KG",
        &["Model", "Family", "MRR", "Hits@1", "Hits@10"],
    );

    // --- single-hop, structure only ---------------------------------------
    let mut transe = TransE::new(kg.num_entities(), r_total, 32, 1);
    transe.train(&kg.split.train, &known, &kge_cfg);
    let r = eval_scorer_entity(&transe, &kg.graph, &kg.split.test, &known);
    table.push_row(vec![
        "TransE".into(),
        "single-hop".into(),
        pct(r.mrr),
        pct(r.hits1),
        pct(r.hits10),
    ]);

    let mut distmult = DistMult::new(kg.num_entities(), r_total, 32, 2);
    distmult.train(&kg.split.train, &known, &kge_cfg);
    let r = eval_scorer_entity(&distmult, &kg.graph, &kg.split.test, &known);
    table.push_row(vec![
        "DistMult".into(),
        "single-hop".into(),
        pct(r.mrr),
        pct(r.hits1),
        pct(r.hits10),
    ]);

    let mut complex = ComplEx::new(kg.num_entities(), r_total, 16, 3);
    complex.train(&kg.split.train, &known, &kge_cfg);
    let r = eval_scorer_entity(&complex, &kg.graph, &kg.split.test, &known);
    table.push_row(vec![
        "ComplEx".into(),
        "single-hop".into(),
        pct(r.mrr),
        pct(r.hits1),
        pct(r.hits10),
    ]);

    // --- single-hop, multi-modal (MTRL) ------------------------------------
    let mut mtrl = Mtrl::new(kg.num_entities(), r_total, &kg.modal, 32, 16, 4);
    mtrl.train(&kg.split.train, &known, &kge_cfg);
    let r = eval_scorer_entity(&mtrl, &kg.graph, &kg.split.test, &known);
    table.push_row(vec![
        "MTRL".into(),
        "single-hop+MM".into(),
        pct(r.mrr),
        pct(r.hits1),
        pct(r.hits10),
    ]);

    // --- multi-hop, multi-modal (MMKGR) -------------------------------------
    let mut conve = ConvE::new(kg.num_entities(), r_total, 4, 8, 6, 5);
    conve.train(
        &kg.split.train,
        &known,
        &KgeTrainConfig {
            epochs: 10,
            batch_size: 128,
            lr: 3e-3,
            margin: 1.0,
            seed: 6,
        },
    );
    let cfg = MmkgrConfig {
        epochs: 15,
        lr: 3e-3,
        ..MmkgrConfig::default()
    };
    let engine = RewardEngine::new(&cfg, Some(conve));
    let model = MmkgrModel::new(&kg, cfg, Some(&transe));
    let mut trainer = Trainer::new(model, engine);
    trainer.train(&kg, 0);
    let queries = queries_from_triples(&kg.split.test, kg.graph.relations(), true);
    let s = evaluate_ranking(&trainer.model, &kg.graph, &queries, &known, 16, 4);
    table.push_row(vec![
        "MMKGR".into(),
        "multi-hop+MM".into(),
        pct(s.mrr),
        pct(s.hits1),
        pct(s.hits10),
    ]);

    table.print();
    println!("\n(The synthetic test split is dominated by facts that need 2–3 hop");
    println!("composition, which is why pure single-hop models trail.)");
}
