//! Figure 11 — sensitivity to the diversity-reward Gaussian bandwidth
//! u ∈ {1..6}. Expected shape (paper): optimum near u = 3, roughly stable
//! beyond (the kernel saturates once its support covers the path space).

use mmkgr_bench::{print_series, Stopwatch};
use mmkgr_eval::{save_json, Dataset, Harness, HarnessConfig, ScaleChoice};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let u_values: Vec<f32> = match scale {
        ScaleChoice::Quick => vec![1.0, 3.0, 5.0],
        _ => vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
    };
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{}", h.kg.stats());
        let mut mrr_series = Vec::new();
        let mut h1_series = Vec::new();
        for &u in &u_values {
            let (trainer, _) = h.train_mmkgr_with(|c| c.bandwidth = u, 0);
            let r = h.eval_policy(&trainer.model);
            sw.lap(&format!("u={u}"));
            mrr_series.push((format!("u={u}"), r.mrr));
            h1_series.push((format!("u={u}"), r.hits1));
            dump.push((dataset.name().to_string(), u, r.mrr, r.hits1));
        }
        print_series("MRR   ", &mrr_series);
        print_series("Hits@1", &h1_series);
    }
    save_json("fig11", &dump);
}
