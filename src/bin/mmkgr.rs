//! `mmkgr` — command-line front end for the library.
//!
//! Subcommands cover the full downstream workflow without writing Rust:
//!
//! ```text
//! mmkgr generate --dataset wn9 --scale 0.1 --out data/wn9      # synthesize + export TSV
//! mmkgr train    --dataset wn9 --scale 0.1 --epochs 25 \
//!                --out runs/wn9                                # train + checkpoint
//! mmkgr eval     --run runs/wn9                                # MRR / Hits@N of a checkpoint
//! mmkgr answer   --run runs/wn9 --source 17 --relation 3       # ranked answers + evidence
//! mmkgr explain  --run runs/wn9 --source 17 --relation 3       # top reasoning paths
//! mmkgr serve    --dataset tiny --models MMKGR,ConvE --port 0  # HTTP front end
//! ```
//!
//! `answer` and `explain` drive the unified serving API
//! (`mmkgr::core::serve`): the checkpoint is wrapped in a
//! [`PolicyReasoner`] and every query goes through [`KgReasoner::answer`]
//! / [`KgReasoner::explain`]. `serve` trains a registry of models over
//! one dataset and exposes the v1 wire protocol
//! (`mmkgr::core::serve::protocol`) over HTTP.
//!
//! Argument parsing is hand-rolled (`--flag value` pairs, plus bare
//! boolean switches like `--live`) to keep the dependency set at the
//! workspace's sanctioned crates.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use std::sync::Arc;

use mmkgr::core::prelude::*;
use mmkgr::core::serve::{
    Evidence, KgReasoner, PolicyReasoner, Query, RetrieveRequest, ServeConfig,
};
use mmkgr::core::HistoryEncoder;
use mmkgr::datagen::{generate, GenConfig};
use mmkgr::embed::{ConvE, KgeTrainConfig, TransE};
use mmkgr::eval::{
    build_registry, eval_policy_entity, load_registry_snapshot, load_registry_snapshot_live, pct,
    write_registry_snapshot_with_vocab, Dataset, Harness, HarnessConfig, ModelChoice, ScaleChoice,
};
use mmkgr::kg::io::{read_triples, write_triples, Vocab};
use mmkgr::kg::{KnowledgeGraph, ModalBank, MultiModalKG, Split};

const USAGE: &str = "\
mmkgr — Multi-hop Multi-modal Knowledge Graph Reasoning (ICDE 2023)

USAGE: mmkgr <command> [--flag value]...

COMMANDS
  generate   synthesize a multi-modal KG and export its triple splits
             --dataset wn9|fb|tiny   --scale <f64>   --seed <u64>
             --out <dir>
  train      train an MMKGR variant and write a checkpoint directory
             --dataset wn9|fb|tiny   --scale <f64>   --seed <u64>
             --epochs <n>  --variant MMKGR|OSKGR|STKGR|SIKGR|FAKGR|FGKGR|
                                      DEKGR|DSKGR|DVKGR|ZOKGR
             --history lstm|gru|ema  --shaper conve|none
             --out <dir>
  eval       evaluate a checkpoint (entity link prediction)
             --run <dir>   [--beam <n>]  [--steps <n>]  [--max-eval <n>]
  answer     answer a (source, relation, ?) query: ranked entities, each
             with the reasoning path that found it
             --run <dir>   --source <entity-id>  --relation <relation-id>
             [--beam <n>]  [--steps <n>]  [--top <n>]
  explain    print the highest-probability reasoning paths for a query
             --run <dir>   --source <entity-id>  --relation <relation-id>
             [--beam <n>]  [--steps <n>]  [--top <n>]
  stats      profile a dataset (degrees, components, relation skew,
             k-hop reachability, modality shape)
             --dataset wn9|fb|tiny   --scale <f64>   --seed <u64>
  serve      train a registry of models over one dataset and serve the
             v1 wire protocol over HTTP (POST /v1/answer,
             /v1/answer_batch, /v1/explain; GET /v1/models, /healthz,
             /metrics)
             --dataset wn9|fb|tiny    --size quick|standard|full
             --models MMKGR,ConvE,…   --addr <ip>     --port <n> (0 = ephemeral)
             [--threads <n>] [--workers <n>] [--cache <n>]
             [--beam <n>] [--steps <n>] [--rl-epochs <n>] [--kge-epochs <n>]
             [--dataset-scale <f64>] [--seed <u64>]
             [--timeout-ms <n>]        default per-request deadline
                                       (504 past it; 0 = none)
             [--max-queue <n>]         shed (503 + Retry-After) past this
                                       many queued connections (0 = off)
             [--model-inflight <n>]    per-model in-flight cap (0 = off)
             MMKGR_FAULTS=<spec>       env: chaos fault injection, e.g.
                                       shard_latency=*:200,shard_panic=1
             [--snapshot <file.mmkg>]  boot from a registry snapshot
                                       instead of training (no dataset
                                       flags needed)
             [--shards <n>]            wrap each model in a sharded
                                       reasoner (snapshot boot only)
             [--live]                  accept POST /v1/admin/mutate: WAL-
                                       backed crash-safe triple insert/
                                       delete (snapshot boot only)
             [--wal <file>]            WAL path (default <snapshot>.wal;
                                       implies --live)
             [--compact-every <n>]     fold the delta overlay back into
                                       the CSR + rewrite the snapshot
                                       every n mutation batches (0 = off;
                                       default 256 when --live)
             [--replicate-from <addr>] boot as a read-only follower of a
                                       running primary: fetch its .mmkg
                                       snapshot over /v1/admin/replicate,
                                       replay, then tail committed WAL
                                       frames live. --snapshot names the
                                       local file the fetched snapshot
                                       lands in (default follower.mmkg);
                                       POST /v1/admin/mutate answers 409
                                       not_primary until promoted
             A primary served with --snapshot and --live/--wal ships both
             over POST /v1/admin/replicate automatically.
             GET /readyz returns 503 until the snapshot is loaded and the
             WAL is replayed (followers: until caught up with the
             primary), then 200 (use /healthz for liveness).
  promote    flip a caught-up follower into a writable primary, fenced
             at its committed seq watermark (POST /v1/admin/promote)
             --addr <host:port>
  snapshot   train a registry of models and write one `.mmkg` registry
             snapshot (graph CSR + model weights + manifest) that
             `serve --snapshot` boots in milliseconds
             --out <file.mmkg>
             --dataset wn9|fb|tiny    --size quick|standard|full
             --models MMKGR,ConvE,…   [--beam <n>] [--steps <n>] [--cache <n>]
             [--rl-epochs <n>] [--kge-epochs <n>]
             [--dataset-scale <f64>] [--seed <u64>]
             [--from-tsv <triples.tsv>]  ingest a real triples file
                                      (head<TAB>rel<TAB>tail) instead of
                                      the synthetic generator; the
                                      snapshot carries the name tables so
                                      booted servers answer by name
  verify-snapshot
             walk every section of a `.mmkg` snapshot and check bounds,
             64-byte alignment, and per-section CRC32s; prints one line
             per section and exits non-zero on corruption
             mmkgr verify-snapshot <file.mmkg>
  retrieve   extract a k-hop multi-modal subgraph around seed entities
             plus diversity-ranked reasoning-path contexts — the KG-RAG
             surface `POST /v1/retrieve` serves
             --seeds <e1,e2,…>        [--relation <r>]  [--model <name>]
             [--hops <n>]  [--max-entities <n>]  [--max-paths <n>]
             [--diversity <0..1>]     MMR weight (0 = pure score order)
             [--snapshot <file.mmkg>] boot from a snapshot instead of
                                      training; otherwise the serve/
                                      snapshot dataset flags apply

The dataset is regenerated deterministically from (dataset, scale, seed)
recorded in the checkpoint's meta.json, so checkpoints stay portable.
Registry snapshots carry the graph and weights themselves (see
docs/snapshot-format.md) and need no regeneration at boot.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // verify-snapshot takes a positional path, which parse_flags rejects.
    if command == "verify-snapshot" {
        return match cmd_verify_snapshot(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "eval" => cmd_eval(&flags),
        "answer" => cmd_answer(&flags),
        "explain" => cmd_explain(&flags),
        "stats" => cmd_stats(&flags),
        "serve" => cmd_serve(&flags),
        "promote" => cmd_promote(&flags),
        "snapshot" => cmd_snapshot(&flags),
        "retrieve" => cmd_retrieve(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------- flags

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(k) = it.next() {
        let Some(name) = k.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{k}`"));
        };
        // A flag followed by another flag (or by nothing) is a bare
        // boolean switch (`--live`); everything else is a `--flag value`
        // pair.
        let v = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        flags.insert(name.to_string(), v);
    }
    Ok(flags)
}

fn flag<'a>(flags: &'a HashMap<String, String>, name: &str) -> Option<&'a str> {
    flags.get(name).map(String::as_str)
}

fn parse_or<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{v}`")),
    }
}

// ---------------------------------------------------------------- dataset

#[derive(serde::Serialize, serde::Deserialize)]
struct RunMeta {
    dataset: String,
    scale: f64,
    seed: u64,
    variant: String,
    history: String,
    epochs: usize,
}

fn dataset_config(
    flags: &HashMap<String, String>,
) -> Result<(String, f64, u64, GenConfig), String> {
    let name = flag(flags, "dataset").unwrap_or("tiny").to_string();
    let scale: f64 = parse_or(flags, "scale", 1.0)?;
    let seed: u64 = parse_or(flags, "seed", 0)?;
    let cfg = build_gen_config(&name, scale, seed)?;
    Ok((name, scale, seed, cfg))
}

fn build_gen_config(name: &str, scale: f64, seed: u64) -> Result<GenConfig, String> {
    let base = match name {
        "wn9" => GenConfig::wn9_img_txt(),
        "fb" => GenConfig::fb_img_txt(),
        "tiny" => GenConfig::tiny(),
        other => return Err(format!("unknown dataset `{other}` (wn9|fb|tiny)")),
    };
    let base = if (scale - 1.0).abs() > 1e-12 {
        base.scaled(scale)
    } else {
        base
    };
    Ok(if seed != 0 {
        base.with_seed(seed)
    } else {
        base
    })
}

fn synthetic_vocab(kg: &MultiModalKG) -> Vocab {
    let mut vocab = Vocab::default();
    for e in 0..kg.num_entities() {
        vocab.entity_id(&format!("e{e}"));
    }
    for r in 0..kg.num_base_relations() {
        vocab.relation_id(&format!("r{r}"));
    }
    vocab
}

// ---------------------------------------------------------------- generate

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let (name, scale, seed, gen_cfg) = dataset_config(flags)?;
    let out = PathBuf::from(flag(flags, "out").ok_or("--out <dir> is required")?);
    std::fs::create_dir_all(&out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let kg = generate(&gen_cfg);
    println!("{}", kg.stats());
    println!("{}", mmkgr::kg::GraphProfile::compute(&kg.graph, 128));
    let vocab = synthetic_vocab(&kg);
    for (file, triples) in [
        ("train.tsv", &kg.split.train),
        ("valid.tsv", &kg.split.valid),
        ("test.tsv", &kg.split.test),
    ] {
        let path = out.join(file);
        write_triples(&path, triples, &vocab).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote {} ({} triples)", path.display(), triples.len());
    }
    let meta = serde_json::json!({
        "dataset": name, "scale": scale, "seed": seed,
        "entities": kg.num_entities(),
        "base_relations": kg.num_base_relations(),
        "text_dim": kg.modal.text_dim(),
        "image_dim": kg.modal.image_dim(),
        "images_total": kg.modal.total_images(),
    });
    let meta_path = out.join("dataset.json");
    std::fs::write(&meta_path, serde_json::to_string_pretty(&meta).unwrap())
        .map_err(|e| format!("{}: {e}", meta_path.display()))?;
    println!("wrote {}", meta_path.display());
    Ok(())
}

// ---------------------------------------------------------------- train

fn parse_variant(s: &str) -> Result<Variant, String> {
    Ok(match s.to_ascii_uppercase().as_str() {
        "MMKGR" | "FULL" => Variant::Full,
        "OSKGR" => Variant::Oskgr,
        "STKGR" => Variant::Stkgr,
        "SIKGR" => Variant::Sikgr,
        "FAKGR" => Variant::Fakgr,
        "FGKGR" => Variant::Fgkgr,
        "DEKGR" => Variant::Dekgr,
        "DSKGR" => Variant::Dskgr,
        "DVKGR" => Variant::Dvkgr,
        "ZOKGR" => Variant::Zokgr,
        other => return Err(format!("unknown variant `{other}`")),
    })
}

fn parse_history(s: &str) -> Result<HistoryEncoder, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "lstm" => HistoryEncoder::Lstm,
        "gru" => HistoryEncoder::Gru,
        "ema" => HistoryEncoder::Ema,
        other => return Err(format!("unknown history encoder `{other}`")),
    })
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let (name, scale, seed, gen_cfg) = dataset_config(flags)?;
    let out = PathBuf::from(flag(flags, "out").ok_or("--out <dir> is required")?);
    std::fs::create_dir_all(&out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let epochs: usize = parse_or(flags, "epochs", 15)?;
    let variant = parse_variant(flag(flags, "variant").unwrap_or("MMKGR"))?;
    let history = parse_history(flag(flags, "history").unwrap_or("lstm"))?;
    let shaper = flag(flags, "shaper").unwrap_or("conve");

    let kg = generate(&gen_cfg);
    println!("{}", kg.stats());

    let cfg = MmkgrConfig {
        epochs,
        seed: seed ^ 0x33,
        history,
        ..MmkgrConfig::default()
    }
    .variant(variant);
    cfg.validate().map_err(|e| format!("config: {e}"))?;

    // Structural init (paper §IV-B1): TransE over the training split.
    println!("training TransE structural init…");
    let mut transe = TransE::new(
        kg.num_entities(),
        kg.graph.relations().total(),
        cfg.struct_dim,
        seed,
    );
    let known = kg.all_known();
    transe.train(
        &kg.split.train,
        &known,
        &KgeTrainConfig::default()
            .with_epochs(epochs.min(25))
            .with_seed(seed),
    );

    let model = MmkgrModel::new(&kg, cfg.clone(), Some(&transe));
    let report = match shaper {
        "conve" => {
            println!("training ConvE reward shaper…");
            let mut conve = ConvE::new(
                kg.num_entities(),
                kg.graph.relations().total(),
                4,
                8,
                6,
                seed ^ 0xC0,
            );
            conve.train(
                &kg.split.train,
                &known,
                &KgeTrainConfig {
                    epochs: epochs.min(20),
                    batch_size: 128,
                    lr: 3e-3,
                    margin: 1.0,
                    seed: seed ^ 0xC1,
                },
            );
            println!(
                "training {} ({} epochs, {} encoder)…",
                variant.name(),
                epochs,
                history.name()
            );
            let engine = RewardEngine::new(&cfg, Some(conve));
            let mut trainer = Trainer::new(model, engine);
            let report = trainer.train(&kg, 0);
            save_run(
                &out,
                &trainer.model,
                &name,
                scale,
                seed,
                variant,
                history,
                epochs,
            )?;
            report
        }
        "none" => {
            println!(
                "training {} ({} epochs, {} encoder, unshaped)…",
                variant.name(),
                epochs,
                history.name()
            );
            let engine = RewardEngine::new(&cfg, Some(NoShaper));
            let mut trainer = Trainer::new(model, engine);
            let report = trainer.train(&kg, 0);
            save_run(
                &out,
                &trainer.model,
                &name,
                scale,
                seed,
                variant,
                history,
                epochs,
            )?;
            report
        }
        other => return Err(format!("unknown shaper `{other}` (conve|none)")),
    };
    if let Some(last) = report.epochs.last() {
        println!(
            "final epoch: mean reward {:.3}, success rate {:.1}%",
            last.mean_reward,
            last.success_rate * 100.0
        );
    }
    println!("checkpoint written to {}", out.display());
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn save_run(
    out: &Path,
    model: &MmkgrModel,
    dataset: &str,
    scale: f64,
    seed: u64,
    variant: Variant,
    history: HistoryEncoder,
    epochs: usize,
) -> Result<(), String> {
    let meta = RunMeta {
        dataset: dataset.to_string(),
        scale,
        seed,
        variant: variant.name().to_string(),
        history: history.name().to_string(),
        epochs,
    };
    std::fs::write(
        out.join("meta.json"),
        serde_json::to_string_pretty(&meta).unwrap(),
    )
    .map_err(|e| format!("meta.json: {e}"))?;
    model
        .save(&out.join("model.json"))
        .map_err(|e| format!("model.json: {e}"))?;
    Ok(())
}

fn load_run(
    flags: &HashMap<String, String>,
) -> Result<(RunMeta, MmkgrModel, MultiModalKG), String> {
    let run = PathBuf::from(flag(flags, "run").ok_or("--run <dir> is required")?);
    let meta: RunMeta = serde_json::from_str(
        &std::fs::read_to_string(run.join("meta.json"))
            .map_err(|e| format!("{}/meta.json: {e}", run.display()))?,
    )
    .map_err(|e| format!("meta.json: {e}"))?;
    let model = MmkgrModel::load(&run.join("model.json"))
        .map_err(|e| format!("{}/model.json: {e}", run.display()))?;
    let gen_cfg = build_gen_config(&meta.dataset, meta.scale, meta.seed)?;
    let kg = generate(&gen_cfg);
    if model.ent.count != kg.num_entities() {
        return Err(format!(
            "checkpoint/dataset mismatch: model has {} entities, dataset {}",
            model.ent.count,
            kg.num_entities()
        ));
    }
    Ok((meta, model, kg))
}

// ---------------------------------------------------------------- eval

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let (meta, model, kg) = load_run(flags)?;
    let beam: usize = parse_or(flags, "beam", 16)?;
    let steps: usize = parse_or(flags, "steps", model.cfg.max_steps)?;
    let max_eval: usize = parse_or(flags, "max-eval", 500)?;
    let known = kg.all_known();
    let triples: Vec<_> = kg.split.test.iter().copied().take(max_eval).collect();
    println!(
        "evaluating {} ({} on {}@{}) on {} test triples (beam {beam}, T={steps})…",
        meta.variant,
        meta.history,
        meta.dataset,
        meta.scale,
        triples.len()
    );
    let r = eval_policy_entity(&model, &kg.graph, &triples, &known, beam, steps);
    println!(
        "MRR {}  Hits@1 {}  Hits@5 {}  Hits@10 {}  ({} queries)",
        pct(r.mrr),
        pct(r.hits1),
        pct(r.hits5),
        pct(r.hits10),
        r.queries
    );
    Ok(())
}

// ------------------------------------------------------- answer / explain

/// Parse the `(source, relation)` of a query, defaulting to the first
/// test triple so `answer --run X` just works; validate against the KG.
fn query_flags(flags: &HashMap<String, String>, kg: &MultiModalKG) -> Result<(u32, u32), String> {
    let default = kg.split.test.first().copied();
    let source: u32 = match flag(flags, "source") {
        Some(v) => v.parse().map_err(|_| "--source: not an id".to_string())?,
        None => default
            .map(|t| t.s.0)
            .ok_or("--source required (empty test split)")?,
    };
    let relation: u32 = match flag(flags, "relation") {
        Some(v) => v.parse().map_err(|_| "--relation: not an id".to_string())?,
        None => default.map(|t| t.r.0).ok_or("--relation required")?,
    };
    if source as usize >= kg.num_entities() {
        return Err(format!(
            "entity e{source} out of range (< {})",
            kg.num_entities()
        ));
    }
    if relation as usize >= kg.graph.relations().total() {
        return Err(format!(
            "relation r{relation} out of range (< {})",
            kg.graph.relations().total()
        ));
    }
    Ok((source, relation))
}

/// Wrap a loaded checkpoint in the unified serving protocol. Interactive
/// serving keeps a modest frontier cache so repeated questions in one
/// session (or one batch file) come back instantly.
fn reasoner_for_run(
    meta: &RunMeta,
    model: MmkgrModel,
    kg: &MultiModalKG,
    beam: usize,
    steps: usize,
) -> PolicyReasoner<MmkgrModel> {
    PolicyReasoner::new(
        meta.variant.clone(),
        model,
        Arc::new(kg.graph.clone()),
        ServeConfig {
            beam_width: beam,
            max_steps: steps,
            ..ServeConfig::default()
        }
        .with_cache(1024),
    )
}

fn cmd_answer(flags: &HashMap<String, String>) -> Result<(), String> {
    let (meta, model, kg) = load_run(flags)?;
    let beam: usize = parse_or(flags, "beam", 16)?;
    let steps: usize = parse_or(flags, "steps", model.cfg.max_steps)?;
    let top: usize = parse_or(flags, "top", 10)?;
    let (source, relation) = query_flags(flags, &kg)?;
    let reasoner = reasoner_for_run(&meta, model, &kg, beam, steps);
    let rs = kg.graph.relations();
    println!(
        "query (e{source}, r{relation}, ?) on {}@{} — {} answers, beam {beam}, T={steps}",
        meta.dataset,
        meta.scale,
        reasoner.name()
    );
    let answer = reasoner.answer(
        &Query::new(mmkgr::kg::EntityId(source), mmkgr::kg::RelationId(relation)).with_top_k(top),
    );
    for (i, c) in answer.ranked.iter().enumerate() {
        let evidence = c
            .evidence
            .as_ref()
            .map(|e| format!("{} hops: {}", e.hops, e.render(&rs)))
            .unwrap_or_else(|| "(no path evidence)".to_string());
        println!(
            "#{:<2} e{:<6} score {:>8.3}  {}",
            i + 1,
            c.entity.0,
            c.score,
            evidence
        );
    }
    if answer.ranked.is_empty() {
        println!("(no candidate reached within T={steps})");
    }
    Ok(())
}

/// Unlike `answer` (one best path per entity, the serving protocol),
/// `explain` enumerates raw beam paths — including several distinct
/// derivations of the same answer — which is the point of the command.
/// Routed through [`KgReasoner::explain`], the same surface
/// `POST /v1/explain` serves.
fn cmd_explain(flags: &HashMap<String, String>) -> Result<(), String> {
    let (meta, model, kg) = load_run(flags)?;
    let beam: usize = parse_or(flags, "beam", 16)?;
    let steps: usize = parse_or(flags, "steps", model.cfg.max_steps)?;
    let top: usize = parse_or(flags, "top", 5)?;
    let (source, relation) = query_flags(flags, &kg)?;
    println!(
        "query (e{source}, r{relation}, ?) on {}@{} — {} paths, beam {beam}, T={steps}",
        meta.dataset, meta.scale, meta.variant
    );
    let reasoner = reasoner_for_run(&meta, model, &kg, beam, steps);
    let paths = reasoner
        .explain(
            &Query::new(mmkgr::kg::EntityId(source), mmkgr::kg::RelationId(relation))
                .with_top_k(top),
        )
        .expect("path reasoners explain");
    let rs = kg.graph.relations();
    for (i, p) in paths.iter().take(top).enumerate() {
        let evidence = Evidence {
            relations: p.relations.clone(),
            hops: p.hops,
            logp: p.logp,
        };
        println!(
            "#{:<2} → e{:<6} logp {:>8.3}  hops {}  path: {}",
            i + 1,
            p.entity.0,
            p.logp,
            p.hops,
            if p.relations.is_empty() {
                "(source)".to_string()
            } else {
                evidence.render(&rs)
            }
        );
    }
    if paths.is_empty() {
        println!("(no path found within T={steps})");
    }
    Ok(())
}

// ---------------------------------------------------------------- serve

/// Parse the dataset/scale/training flags shared by `serve` and
/// `snapshot` into a [`HarnessConfig`].
fn harness_flags(flags: &HashMap<String, String>) -> Result<HarnessConfig, String> {
    let dataset = match flag(flags, "dataset").unwrap_or("tiny") {
        "tiny" => Dataset::Tiny,
        "wn9" => Dataset::Wn9ImgTxt,
        "fb" => Dataset::FbImgTxt,
        other => return Err(format!("unknown dataset `{other}` (wn9|fb|tiny)")),
    };
    let size = match flag(flags, "size").unwrap_or("quick") {
        "quick" => ScaleChoice::Quick,
        "standard" => ScaleChoice::Standard,
        "full" => ScaleChoice::Full,
        other => return Err(format!("unknown size `{other}` (quick|standard|full)")),
    };
    let mut hcfg = HarnessConfig::new(dataset, size);
    if let Some(v) = flags.get("dataset-scale") {
        hcfg.dataset_scale = v
            .parse()
            .map_err(|_| format!("--dataset-scale: cannot parse `{v}`"))?;
    }
    hcfg.rl_epochs = parse_or(flags, "rl-epochs", hcfg.rl_epochs)?;
    hcfg.kge_epochs = parse_or(flags, "kge-epochs", hcfg.kge_epochs)?;
    hcfg.seed = parse_or(flags, "seed", hcfg.seed)?;
    Ok(hcfg)
}

fn model_choice_flags(flags: &HashMap<String, String>) -> Result<Vec<ModelChoice>, String> {
    let models_spec = flag(flags, "models").unwrap_or("MMKGR,ConvE");
    let mut choices: Vec<ModelChoice> = Vec::new();
    for spec in models_spec.split(',').filter(|s| !s.trim().is_empty()) {
        let choice = ModelChoice::parse(spec.trim())?;
        // Aliases ("MMKGR", "FULL") resolve to one registry entry —
        // don't train the same model twice only to have the second
        // registration replace the first.
        if !choices.contains(&choice) {
            choices.push(choice);
        }
    }
    if choices.is_empty() {
        return Err("--models needs at least one model".to_string());
    }
    Ok(choices)
}

fn serve_config_flags(
    flags: &HashMap<String, String>,
    default_beam: usize,
) -> Result<ServeConfig, String> {
    let cfg = ServeConfig {
        beam_width: parse_or(flags, "beam", default_beam)?,
        max_steps: parse_or(flags, "steps", 4)?,
        ..ServeConfig::default()
    }
    .with_cache(parse_or(flags, "cache", 1024)?);
    cfg.validate().map_err(|e| format!("config: {e}"))?;
    Ok(cfg)
}

/// Bind the HTTP front end and serve until killed. `--port 0` binds an
/// ephemeral port; the `listening on` line (flushed before serving)
/// tells scripts where.
fn serve_registry(
    flags: &HashMap<String, String>,
    registry: std::sync::Arc<mmkgr::core::serve::ModelRegistry>,
) -> Result<(), String> {
    serve_registry_as(flags, registry, None)
}

/// [`serve_registry`], optionally as a replication follower: the tailer
/// thread is spawned against the primary and `/readyz` stays 503 until
/// the follower has applied up to the primary's head.
fn serve_registry_as(
    flags: &HashMap<String, String>,
    registry: std::sync::Arc<mmkgr::core::serve::ModelRegistry>,
    follower: Option<std::sync::Arc<mmkgr::core::serve::ReplicationState>>,
) -> Result<(), String> {
    use std::io::Write as _;

    let addr = flag(flags, "addr").unwrap_or("127.0.0.1");
    let port: u16 = parse_or(flags, "port", 8080)?;
    let defaults = mmkgr::core::serve::HttpServerConfig::default();
    let http_cfg = mmkgr::core::serve::HttpServerConfig {
        conn_threads: parse_or(flags, "threads", 4)?,
        pool_workers: parse_or(flags, "workers", 2)?,
        default_timeout_ms: parse_or(flags, "timeout-ms", defaults.default_timeout_ms)?,
        max_queue_depth: parse_or(flags, "max-queue", defaults.max_queue_depth)?,
        model_inflight_limit: parse_or(flags, "model-inflight", defaults.model_inflight_limit)?,
        ..defaults
    };
    // Bind not-ready so /readyz answers 503 until boot work (snapshot
    // load, WAL replay, follower catch-up) visible to this function is
    // done.
    let http_cfg = mmkgr::core::serve::HttpServerConfig {
        start_ready: false,
        ..http_cfg
    };
    let server = mmkgr::core::serve::HttpServer::bind(
        (addr, port),
        std::sync::Arc::clone(&registry),
        http_cfg,
    )
    .map_err(|e| format!("bind {addr}:{port}: {e}"))?;
    println!("listening on http://{}", server.local_addr());
    // Scripts (CI smoke, tests) parse the line above from a pipe.
    let _ = std::io::stdout().flush();
    match follower {
        None => {
            server.mark_ready();
            server.serve();
        }
        Some(rep) => {
            let tail_registry = std::sync::Arc::clone(&registry);
            let tail_rep = std::sync::Arc::clone(&rep);
            std::thread::spawn(move || {
                mmkgr::core::serve::replication::run_tailer(tail_registry, tail_rep)
            });
            let running = server.spawn();
            while !rep.is_caught_up() {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            let lag = registry.replication_metrics().follower_lag_seq;
            println!("caught up with primary (lag {lag} seq); ready");
            let _ = std::io::stdout().flush();
            running.mark_ready();
            running.join();
        }
    }
    Ok(())
}

/// Train a registry of models over one dataset (or boot one from a
/// `.mmkg` registry snapshot via `--snapshot`) and serve the v1 wire
/// protocol over HTTP until killed.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(primary) = flag(flags, "replicate-from") {
        return cmd_serve_follower(flags, primary);
    }
    if let Some(snap) = flag(flags, "snapshot") {
        // Snapshot boot: no training, no dataset regeneration. Serving
        // overrides apply only when explicitly flagged — otherwise the
        // snapshot's recorded ServeConfig wins, keeping answers
        // byte-identical to the writing process.
        let shards: usize = parse_or(flags, "shards", 1)?;
        let overridden = ["beam", "steps", "cache"]
            .iter()
            .any(|f| flags.contains_key(*f));
        let serve_override = if overridden {
            Some(serve_config_flags(flags, 16)?)
        } else {
            None
        };
        let live = flags.contains_key("live") || flags.contains_key("wal");
        let loaded = if live {
            let wal = flag(flags, "wal")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(format!("{snap}.wal")));
            let compact_every: u64 = parse_or(flags, "compact-every", 256)?;
            let mut loaded = load_registry_snapshot_live(
                Path::new(snap),
                serve_override,
                shards,
                &wal,
                compact_every,
            )
            .map_err(|e| format!("{snap}: {e}"))?;
            let replayed = loaded.registry.live().map_or(0, |l| l.replayed());
            println!(
                "live mutation on: wal={} ({replayed} record(s) replayed, compact every {})",
                wal.display(),
                if compact_every == 0 {
                    "∞".to_string()
                } else {
                    compact_every.to_string()
                }
            );
            // A live snapshot boot has everything a replication primary
            // ships (the snapshot file + its WAL), so it is one: POST
            // /v1/admin/replicate serves follower bootstraps and tails.
            use mmkgr::core::serve::{ReplicaSource, ReplicationState};
            loaded
                .registry
                .set_replication(std::sync::Arc::new(ReplicationState::primary(
                    ReplicaSource {
                        snapshot: PathBuf::from(snap),
                        wal,
                    },
                )));
            loaded
        } else {
            load_registry_snapshot(Path::new(snap), serve_override, shards)
                .map_err(|e| format!("{snap}: {e}"))?
        };
        println!(
            "booted {} model(s) [{}] from {snap} ({}, {} entities{})",
            loaded.registry.len(),
            loaded.registry.model_names().join(", "),
            if loaded.mapped { "mmap" } else { "read" },
            loaded.graph.num_entities(),
            if shards > 1 {
                format!(", {shards} shards")
            } else {
                String::new()
            }
        );
        return serve_registry(flags, std::sync::Arc::new(loaded.registry));
    }

    let hcfg = harness_flags(flags)?;
    let choices = model_choice_flags(flags)?;
    let serve_cfg = serve_config_flags(flags, hcfg.beam)?;
    let names: Vec<&str> = choices.iter().map(|c| c.name()).collect();
    println!(
        "training {} model(s) [{}] on {}@{}…",
        choices.len(),
        names.join(", "),
        hcfg.dataset.name(),
        hcfg.dataset_scale
    );
    let harness = Harness::new(hcfg);
    let registry = std::sync::Arc::new(build_registry(&harness, &choices, serve_cfg));
    println!("models: {}", names.join(", "));
    serve_registry(flags, registry)
}

/// Boot as a read-only replication follower: fetch the primary's
/// current `.mmkg` snapshot over `/v1/admin/replicate`, boot from it
/// exactly like a local live snapshot boot (local WAL replay included,
/// so a restarted follower resumes from its last applied seq), then
/// tail committed WAL frames until promoted.
fn cmd_serve_follower(flags: &HashMap<String, String>, primary: &str) -> Result<(), String> {
    use mmkgr::core::serve::{replication, ReplicaSource, ReplicationState};

    let snap = flag(flags, "snapshot")
        .unwrap_or("follower.mmkg")
        .to_string();
    let wal = flag(flags, "wal")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{snap}.wal")));
    let compact_every: u64 = parse_or(flags, "compact-every", 256)?;
    let shards: usize = parse_or(flags, "shards", 1)?;
    let overridden = ["beam", "steps", "cache"]
        .iter()
        .any(|f| flags.contains_key(*f));
    let serve_override = if overridden {
        Some(serve_config_flags(flags, 16)?)
    } else {
        None
    };

    // A restarted follower already has a snapshot + WAL: reuse them and
    // let the tail catch up from the last applied seq instead of
    // re-downloading everything. First boots fetch.
    if Path::new(&snap).exists() {
        println!("reusing local snapshot {snap} (restart); tail will catch up");
    } else {
        println!("bootstrapping from {primary}…");
        let mut attempt = 0u32;
        let head_seq = loop {
            match replication::fetch_snapshot(primary, Path::new(&snap), 10) {
                Ok(seq) => break seq,
                // The primary may still be binding (CI boots both sides
                // near-simultaneously) — connection errors retry too.
                Err(e) if attempt < 10 => {
                    attempt += 1;
                    eprintln!("snapshot fetch (attempt {attempt}): {e}; retrying");
                    std::thread::sleep(std::time::Duration::from_millis(500));
                }
                Err(e) => return Err(format!("snapshot fetch from {primary}: {e}")),
            }
        };
        println!("fetched snapshot from {primary} (head seq {head_seq})");
    }

    let mut loaded = load_registry_snapshot_live(
        Path::new(&snap),
        serve_override,
        shards,
        &wal,
        compact_every,
    )
    .map_err(|e| format!("{snap}: {e}"))?;
    let replayed = loaded.registry.live().map_or(0, |l| l.replayed());
    println!(
        "live mutation on: wal={} ({replayed} record(s) replayed, compact every {})",
        wal.display(),
        if compact_every == 0 {
            "∞".to_string()
        } else {
            compact_every.to_string()
        }
    );
    let rep = std::sync::Arc::new(ReplicationState::follower(
        primary,
        ReplicaSource {
            snapshot: PathBuf::from(&snap),
            wal,
        },
    ));
    loaded.registry.set_replication(std::sync::Arc::clone(&rep));
    println!(
        "booted {} model(s) [{}] as follower of {primary} ({} entities)",
        loaded.registry.len(),
        loaded.registry.model_names().join(", "),
        loaded.graph.num_entities(),
    );
    serve_registry_as(flags, std::sync::Arc::new(loaded.registry), Some(rep))
}

/// Promote a follower over the wire: `POST /v1/admin/promote`.
fn cmd_promote(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::net::ToSocketAddrs as _;

    let addr = flag(flags, "addr").ok_or("--addr <host:port> is required")?;
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("--addr {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("--addr {addr}: no address"))?;
    let (status, body) =
        mmkgr::core::serve::http::request_with_retries(sock, "POST", "/v1/admin/promote", "{}", 3)
            .map_err(|e| format!("promote {addr}: {e}"))?;
    if status != 200 {
        return Err(format!("promote {addr}: HTTP {status}: {body}"));
    }
    println!("{body}");
    Ok(())
}

/// Walk every section of a `.mmkg` snapshot and check bounds, 64-byte
/// alignment, and per-section CRC32s. One line per section; non-zero
/// exit (an `Err`) when anything fails, so scripts can gate on it.
fn cmd_verify_snapshot(args: &[String]) -> Result<(), String> {
    let path = match args {
        [p] if !p.starts_with("--") => PathBuf::from(p),
        _ => {
            let flags = parse_flags(args)?;
            PathBuf::from(
                flag(&flags, "snapshot").ok_or("usage: mmkgr verify-snapshot <file.mmkg>")?,
            )
        }
    };
    let report = mmkgr::kg::store::verify(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "{}: {} bytes, {} section(s), crcs {}",
        path.display(),
        report.file_len,
        report.sections.len(),
        if report.has_crcs { "present" } else { "absent" }
    );
    for s in &report.sections {
        let status = if s.ok() {
            "ok".to_string()
        } else {
            let mut bad = Vec::new();
            if !s.in_bounds {
                bad.push("out-of-bounds");
            }
            if !s.aligned {
                bad.push("misaligned");
            }
            if !s.crc_ok {
                bad.push("crc-mismatch");
            }
            bad.join(",")
        };
        println!(
            "  [{:>2}] {:<12} offset={:<10} len={:<10} {status}",
            s.index,
            mmkgr::kg::store::section_kind_name(s.kind),
            s.offset,
            s.len
        );
    }
    let bad = report.bad_sections();
    if bad == 0 {
        println!("OK");
        Ok(())
    } else {
        let indices: Vec<String> = report
            .sections
            .iter()
            .filter(|s| !s.ok())
            .map(|s| s.index.to_string())
            .collect();
        Err(format!(
            "{}: {bad} corrupt section(s): [{}]",
            path.display(),
            indices.join(", ")
        ))
    }
}

// ---------------------------------------------------------------- snapshot

/// Build a [`MultiModalKG`] from one triples TSV: symbols interned in
/// file order, a deterministic 90/5/5 split (every 20th triple → test,
/// every 20th+1 → valid), the graph over the training triples only, and
/// an empty modal bank (real modality vectors would come from a separate
/// ingestion step).
fn ingest_tsv(path: &Path) -> Result<(MultiModalKG, Vocab), String> {
    let mut vocab = Vocab::default();
    let triples = read_triples(path, &mut vocab).map_err(|e| format!("{}: {e}", path.display()))?;
    if triples.is_empty() {
        return Err(format!("{}: no triples", path.display()));
    }
    let mut split = Split::default();
    for (i, t) in triples.iter().enumerate() {
        match i % 20 {
            0 if triples.len() >= 20 => split.test.push(*t),
            1 if triples.len() >= 20 => split.valid.push(*t),
            _ => split.train.push(*t),
        }
    }
    let n_ent = vocab.entities.len();
    let graph =
        KnowledgeGraph::from_triples(n_ent, vocab.relations.len(), split.train.clone(), None);
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "tsv".to_string());
    let kg = MultiModalKG::new(name, graph, ModalBank::empty(n_ent), split);
    Ok((kg, vocab))
}

/// Train a registry and persist it as one `.mmkg` registry snapshot
/// that `serve --snapshot` boots without retraining. With `--from-tsv`
/// the dataset is ingested from a real triples file and the snapshot
/// additionally carries the entity/relation name tables.
fn cmd_snapshot(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = PathBuf::from(flag(flags, "out").ok_or("--out <file.mmkg> is required")?);
    let hcfg = harness_flags(flags)?;
    let choices = model_choice_flags(flags)?;
    let serve_cfg = serve_config_flags(flags, hcfg.beam)?;
    let names: Vec<&str> = choices.iter().map(|c| c.name()).collect();
    let (harness, vocab) = match flag(flags, "from-tsv") {
        Some(tsv) => {
            let (kg, vocab) = ingest_tsv(Path::new(tsv))?;
            println!(
                "ingested {tsv}: {} entities, {} relations, {} triples",
                kg.num_entities(),
                kg.num_base_relations(),
                kg.split.total()
            );
            println!(
                "training {} model(s) [{}]…",
                choices.len(),
                names.join(", ")
            );
            (Harness::from_parts(hcfg, kg), Some(vocab))
        }
        None => {
            println!(
                "training {} model(s) [{}] on {}@{}…",
                choices.len(),
                names.join(", "),
                hcfg.dataset.name(),
                hcfg.dataset_scale
            );
            (Harness::new(hcfg), None)
        }
    };
    write_registry_snapshot_with_vocab(
        &out,
        &harness,
        &choices,
        serve_cfg,
        vocab
            .as_ref()
            .map(|v| (v.entities.as_slice(), v.relations.as_slice())),
    )
    .map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {} ({} bytes, {} entities, {} model(s))",
        out.display(),
        bytes,
        harness.kg.num_entities(),
        choices.len()
    );
    Ok(())
}

// ---------------------------------------------------------------- retrieve

/// One-shot KG-RAG retrieval: the same pipeline `POST /v1/retrieve`
/// serves, against either a snapshot-booted registry or a freshly
/// trained one.
fn cmd_retrieve(flags: &HashMap<String, String>) -> Result<(), String> {
    let seeds: Vec<String> = flag(flags, "seeds")
        .ok_or("--seeds <e1,e2,…> is required")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let mut req = RetrieveRequest::new(seeds)
        .with_hops(parse_or(flags, "hops", RetrieveRequest::DEFAULT_HOPS)?)
        .with_max_entities(parse_or(
            flags,
            "max-entities",
            RetrieveRequest::DEFAULT_MAX_ENTITIES,
        )?)
        .with_max_paths(parse_or(
            flags,
            "max-paths",
            RetrieveRequest::DEFAULT_MAX_PATHS,
        )?)
        .with_diversity(parse_or(flags, "diversity", 0.0f32)?);
    if let Some(m) = flag(flags, "model") {
        req = req.with_model(m);
    }
    if let Some(r) = flag(flags, "relation") {
        req = req.with_relation(r);
    }

    let registry = if let Some(snap) = flag(flags, "snapshot") {
        load_registry_snapshot(Path::new(snap), None, 1)
            .map_err(|e| format!("{snap}: {e}"))?
            .registry
    } else {
        let hcfg = harness_flags(flags)?;
        let choices = model_choice_flags(flags)?;
        let serve_cfg = serve_config_flags(flags, hcfg.beam)?;
        println!(
            "training {} model(s) on {}@{}…",
            choices.len(),
            hcfg.dataset.name(),
            hcfg.dataset_scale
        );
        let harness = Harness::new(hcfg);
        build_registry(&harness, &choices, serve_cfg)
    };

    let resp = registry.retrieve(&req).map_err(|e| e.to_string())?;
    println!(
        "model {}  seeds [{}]  hops {}",
        resp.model,
        resp.seeds.join(", "),
        resp.hops
    );
    println!(
        "subgraph: {} entities, {} triples{}",
        resp.subgraph.entities.len(),
        resp.subgraph.triples.len(),
        if resp.subgraph.truncated {
            " (truncated)"
        } else {
            ""
        }
    );
    for e in resp.subgraph.entities.iter().take(40) {
        let mut tags = String::new();
        if e.has_image {
            tags.push_str(" [img]");
        }
        if e.has_text {
            tags.push_str(" [txt]");
        }
        println!("  {:<12} hop {}{}", e.entity, e.hops, tags);
    }
    if resp.subgraph.entities.len() > 40 {
        println!("  … {} more", resp.subgraph.entities.len() - 40);
    }
    println!(
        "paths ({} selected of {} considered):",
        resp.paths.len(),
        resp.paths_considered
    );
    for (i, p) in resp.paths.iter().enumerate() {
        println!(
            "#{:<2} {} ⇒ {}  score {:>8.3}  hops {}  via {}",
            i + 1,
            p.source,
            p.entity,
            p.score,
            p.hops,
            if p.path.is_empty() {
                "(seed)".to_string()
            } else {
                p.path.join(" → ")
            }
        );
    }
    if let Some(fs) = &resp.few_shot {
        println!(
            "relation {}: {} training triple(s){}",
            fs.relation,
            fs.train_frequency,
            if fs.few_shot { " — few-shot" } else { "" }
        );
    }
    Ok(())
}

// ---------------------------------------------------------------- stats

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let (_, _, _, gen_cfg) = dataset_config(flags)?;
    let kg = generate(&gen_cfg);
    println!("{}", kg.stats());
    println!("{}", mmkgr::kg::GraphProfile::compute(&kg.graph, 256));

    // Relation frequency head: which relations dominate the training set.
    let freq = mmkgr::eval::relation_frequencies(&kg.split.train);
    let mut by_count: Vec<(u32, usize)> = freq.iter().map(|(r, &n)| (r.0, n)).collect();
    by_count.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("top relations by training frequency:");
    for (r, n) in by_count.iter().take(10) {
        println!("  r{r:<6} {n}");
    }
    let few = by_count.iter().filter(|(_, n)| *n <= 10).count();
    println!(
        "few-shot relations (≤10 training triples): {few} of {}",
        by_count.len()
    );
    println!(
        "modalities: {} images total ({} per entity avg), image_dim {}, text_dim {}",
        kg.modal.total_images(),
        kg.modal.total_images() / kg.num_entities().max(1),
        kg.modal.image_dim(),
        kg.modal.text_dim(),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parser_roundtrip() {
        let args: Vec<String> = ["--dataset", "wn9", "--scale", "0.1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(flag(&f, "dataset"), Some("wn9"));
        assert_eq!(parse_or::<f64>(&f, "scale", 1.0).unwrap(), 0.1);
        assert_eq!(parse_or::<usize>(&f, "missing", 7).unwrap(), 7);
    }

    #[test]
    fn flag_parser_rejects_bare_values() {
        let args: Vec<String> = ["wn9"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn flag_parser_accepts_bare_switches() {
        // A flag with no value (end of args, or followed by another
        // flag) is a boolean switch: it parses to "true".
        let args: Vec<String> = ["--live"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(flag(&f, "live"), Some("true"));
        let args: Vec<String> = ["--live", "--wal", "g.wal"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(flag(&f, "live"), Some("true"));
        assert_eq!(flag(&f, "wal"), Some("g.wal"));
    }

    #[test]
    fn variant_and_history_parsing() {
        assert_eq!(parse_variant("mmkgr").unwrap(), Variant::Full);
        assert_eq!(parse_variant("OSKGR").unwrap(), Variant::Oskgr);
        assert!(parse_variant("nope").is_err());
        assert_eq!(parse_history("GRU").unwrap(), HistoryEncoder::Gru);
        assert!(parse_history("transformer").is_err());
    }

    #[test]
    fn gen_config_rejects_unknown_dataset() {
        assert!(build_gen_config("freebase", 1.0, 0).is_err());
        assert!(build_gen_config("wn9", 0.05, 1).is_ok());
    }
}
