//! End-to-end acceptance for crash-safe live graph mutation:
//!
//! - **Readiness**: a server bound `start_ready: false` answers 503 +
//!   `Retry-After` on `/readyz` (while `/healthz` stays 200 — liveness
//!   is not readiness), and the [`request`] client rides that header
//!   through one retry to a 200 once boot completes.
//! - **Typed rejection**: mutations against a static (non-live) server,
//!   inverse relations, unknown names, empty batches, and deletes of
//!   absent triples all arrive as typed wire errors, never a 500.
//! - **Visibility**: a committed mutation is visible to the next
//!   `/v1/retrieve` without a restart; readers pin an epoch, so the
//!   server never blocks on the writer.
//! - **Crash safety (CLI)**: with `MMKGR_FAULTS=wal_crash=1` the server
//!   aborts *after* the WAL fsync and *before* publishing; on reboot
//!   the record replays and nothing committed is lost. A recovered
//!   server (snapshot + WAL replay, delta overlay reads) then serves
//!   `/v1/answer` and `/v1/retrieve` bytes identical to a compacted
//!   server (overlay folded back into the CSR, snapshot rewritten) —
//!   the acceptance bar for the overlay/fold read paths.
//!
//! [`request`]: mmkgr::core::serve::http::request

use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use mmkgr::core::serve::http::request;
use mmkgr::core::serve::protocol::RetrieveResponse;
use mmkgr::core::serve::{
    HttpServer, HttpServerConfig, LiveGraphStore, ModelRegistry, NameIndex, RetrieveRequest,
    Retriever, ScorerReasoner,
};
use mmkgr::embed::TransE;
use mmkgr::kg::{EntityId, KnowledgeGraph, RelationId, RelationSpace, Triple};

const N: usize = 24;

/// A live-mutable registry over a synthetic ring graph: one TransE
/// scorer (mutations never touch parametric models), a retriever and a
/// [`LiveGraphStore`] sharing one graph handle — no training, boots in
/// milliseconds.
fn live_registry(wal: &std::path::Path) -> (Arc<ModelRegistry>, Arc<LiveGraphStore>) {
    let n = N as u32;
    let triples: Vec<Triple> = (0..n)
        .map(|i| Triple {
            s: EntityId(i),
            r: RelationId(i % 3),
            o: EntityId((i + 1) % n),
        })
        .collect();
    let base = Arc::new(KnowledgeGraph::from_triples(N, 3, triples, None));
    let live = Arc::new(LiveGraphStore::open(base, wal, 0).expect("wal opens"));
    let mut registry = ModelRegistry::new(NameIndex::synthetic(N, 3));
    registry.register(Arc::new(ScorerReasoner::new(
        "TransE",
        Arc::new(TransE::new(N, RelationSpace::new(3).total(), 8, 7)),
        N,
        RelationSpace::new(3),
    )));
    registry.set_retriever(Arc::new(Retriever::new_live(live.handle())));
    registry.set_live(Arc::clone(&live));
    (Arc::new(registry), live)
}

fn wal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mmkgr_mut_{}_{tag}.wal", std::process::id()))
}

/// Like [`request`] but raw, returning the response head for header
/// asserts — and never retrying, so 503s are observed as sent.
fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes()).expect("write head");
    let _ = stream.write_all(body.as_bytes());
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    let mut parts = text.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or_default().to_string();
    let body = parts.next().unwrap_or_default().to_string();
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head, body)
}

#[test]
fn readyz_gates_boot_and_the_client_retries_through_it() {
    let wal = wal_path("ready");
    let (registry, _live) = live_registry(&wal);
    let server = HttpServer::bind(
        ("127.0.0.1", 0),
        registry,
        HttpServerConfig {
            start_ready: false,
            ..HttpServerConfig::default()
        },
    )
    .expect("bind")
    .spawn();
    let addr = server.addr();

    // Not ready: 503 + Retry-After on /readyz, while liveness stays 200.
    let (status, head, body) = request_raw(addr, "GET", "/readyz", "");
    assert_eq!(status, 503, "{body}");
    assert!(
        head.to_ascii_lowercase().contains("retry-after: 1"),
        "a starting server must tell callers when to come back: {head}"
    );
    assert!(body.contains("\"starting\""), "{body}");
    let (status, _, _) = request_raw(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "liveness is not readiness");
    assert!(!server.is_ready());

    // The high-level client honors Retry-After with one retry: fire it
    // against the not-ready server, flip readiness under it, and the
    // retry (~1s later) lands on a ready server.
    let client = std::thread::spawn(move || request(addr, "GET", "/readyz", "").unwrap());
    std::thread::sleep(Duration::from_millis(300));
    server.mark_ready();
    let (status, body) = client.join().expect("client thread");
    assert_eq!(
        status, 200,
        "the retried request must see readiness: {body}"
    );
    assert!(body.contains("\"ready\""), "{body}");
    assert!(server.is_ready());

    server.shutdown();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn invalid_mutations_are_typed_errors_and_commits_are_immediately_visible() {
    let wal = wal_path("typed");
    std::fs::remove_file(&wal).ok();
    let (registry, live) = live_registry(&wal);
    let server = HttpServer::bind(("127.0.0.1", 0), registry, HttpServerConfig::default())
        .expect("bind")
        .spawn();
    let addr = server.addr();

    // Every rejection is typed and changes nothing.
    for (label, body, code) in [
        (
            "empty batch",
            r#"{"insert": [], "delete": []}"#.to_string(),
            "invalid_mutation",
        ),
        (
            "inverse relation",
            r#"{"insert": [{"s": "e0", "r": "~r1", "o": "e5"}]}"#.to_string(),
            "invalid_mutation",
        ),
        (
            "unknown entity",
            r#"{"insert": [{"s": "nope", "r": "r1", "o": "e5"}]}"#.to_string(),
            "unknown_entity",
        ),
    ] {
        let (status, resp) = request(addr, "POST", "/v1/admin/mutate", &body).unwrap();
        assert!(
            status == 400 || status == 404,
            "{label}: expected a client error, got {status}: {resp}"
        );
        assert!(resp.contains(code), "{label}: {resp}");
    }
    assert_eq!(live.metrics().applied, 0, "rejected batches apply nothing");

    // Deleting an absent triple is an idempotent no-op (replay-safe),
    // not an error: it commits, deleting nothing.
    let (status, resp) = request(
        addr,
        "POST",
        "/v1/admin/mutate",
        r#"{"delete": [{"s": "e0", "r": "r2", "o": "e9"}]}"#,
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"deleted\":0"), "{resp}");
    let epoch_before = live.handle().epoch();

    // A committed batch is visible to the very next retrieval.
    let (status, resp) = request(
        addr,
        "POST",
        "/v1/admin/mutate",
        r#"{"insert": [{"s": "e0", "r": "r2", "o": "e9"}], "delete": [{"s": "e0", "r": "r0", "o": "e1"}]}"#,
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"inserted\":1"), "{resp}");
    assert!(resp.contains("\"deleted\":1"), "{resp}");
    assert!(live.handle().epoch() > epoch_before);

    let body =
        serde_json::to_string(&RetrieveRequest::new(["e0".to_string()]).with_hops(1)).unwrap();
    let (status, resp) = request(addr, "POST", "/v1/retrieve", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let wire: RetrieveResponse = serde_json::from_str(&resp).unwrap();
    let has = |s: &str, r: &str, o: &str| {
        wire.subgraph
            .triples
            .iter()
            .any(|t| t.s == s && t.r == r && t.o == o)
    };
    assert!(
        has("e0", "r2", "e9"),
        "insert visible without restart: {resp}"
    );
    assert!(
        !has("e0", "r0", "e1"),
        "delete visible without restart: {resp}"
    );

    server.shutdown();
    std::fs::remove_file(&wal).ok();
}

// ---------------------------------------------------------------- CLI

/// Spawn a `mmkgr serve` child (optionally with a fault plan in its
/// environment) and block until it prints its address.
fn boot_server(args: &[&str], faults: Option<&str>) -> (Child, SocketAddr, Vec<String>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mmkgr"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::null());
    if let Some(plan) = faults {
        cmd.env("MMKGR_FAULTS", plan);
    } else {
        cmd.env_remove("MMKGR_FAULTS");
    }
    let mut child = cmd.spawn().expect("mmkgr serve spawns");

    // Watchdog: never let a wedged server hang the test harness.
    let pid = child.id();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(300));
        let _ = Command::new("kill").arg(pid.to_string()).status();
    });

    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = Vec::new();
    let mut addr: Option<SocketAddr> = None;
    for line in std::io::BufReader::new(stdout).lines() {
        let line = line.expect("server stdout line");
        if let Some(rest) = line.strip_prefix("listening on http://") {
            addr = Some(rest.trim().parse().expect("addr parses"));
            break;
        }
        banner.push(line);
    }
    (child, addr.expect("server printed its address"), banner)
}

/// POST a body and swallow whatever happens — for requests whose server
/// is rigged to abort mid-request.
fn fire_and_forget(addr: SocketAddr, path: &str, body: &str) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len(),
        );
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(body.as_bytes());
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
}

fn mutate_ok(addr: SocketAddr, body: &str) -> String {
    let (status, resp) = request(addr, "POST", "/v1/admin/mutate", body).unwrap();
    assert_eq!(status, 200, "{resp}");
    resp
}

#[test]
fn crash_after_wal_commit_loses_nothing_and_recovery_matches_compacted_boot() {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let snap_a = tmp.join(format!("mmkgr_crash_{pid}_a.mmkg"));
    let snap_b = tmp.join(format!("mmkgr_crash_{pid}_b.mmkg"));
    let wal_a = tmp.join(format!("mmkgr_crash_{pid}_a.wal"));
    let wal_b = tmp.join(format!("mmkgr_crash_{pid}_b.wal"));
    for p in [&snap_a, &snap_b, &wal_a, &wal_b] {
        std::fs::remove_file(p).ok();
    }

    // One trained snapshot, copied so each server owns its files.
    let out = Command::new(env!("CARGO_BIN_EXE_mmkgr"))
        .args([
            "snapshot",
            "--out",
            snap_a.to_str().unwrap(),
            "--dataset",
            "tiny",
            "--size",
            "quick",
            "--models",
            "MMKGR",
            "--rl-epochs",
            "1",
            "--kge-epochs",
            "2",
        ])
        .output()
        .expect("mmkgr snapshot runs");
    assert!(
        out.status.success(),
        "snapshot failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::copy(&snap_a, &snap_b).expect("copy snapshot");

    let batch1 = r#"{"insert": [{"s": "e0", "r": "r1", "o": "e7"}]}"#;
    let batch2 = r#"{"insert": [{"s": "e0", "r": "r1", "o": "e8"}], "delete": [{"s": "e0", "r": "r1", "o": "e7"}]}"#;

    // --- Server A: crash after the WAL fsync, before publishing.
    let serve_a = |faults: Option<&str>| {
        boot_server(
            &[
                "serve",
                "--snapshot",
                snap_a.to_str().unwrap(),
                "--wal",
                wal_a.to_str().unwrap(),
                "--port",
                "0",
            ],
            faults,
        )
    };
    let (mut a, addr_a, _) = serve_a(Some("wal_crash=1"));
    fire_and_forget(addr_a, "/v1/admin/mutate", batch1);
    let status = a.wait().expect("crashed server reaped");
    assert!(
        !status.success(),
        "wal_crash must abort the server: {status:?}"
    );

    // Reboot clean: the committed record replays — nothing lost.
    let (mut a, addr_a, banner) = serve_a(None);
    assert!(
        banner.iter().any(|l| l.contains("1 record(s) replayed")),
        "recovery must replay the crashed-but-committed batch: {banner:?}"
    );
    let (status, _) = request(addr_a, "GET", "/readyz", "").unwrap();
    assert_eq!(status, 200, "recovered server reports ready");
    mutate_ok(addr_a, batch2);
    a.kill().expect("kill server A");
    let _ = a.wait();

    // Second reboot: both records replay; reads come off the overlay.
    let (mut a, addr_a, banner) = serve_a(None);
    assert!(
        banner.iter().any(|l| l.contains("2 record(s) replayed")),
        "{banner:?}"
    );

    // --- Server B: same mutations, folded immediately into the CSR and
    // a rewritten snapshot (compact-every 1), rebooted with a WAL that
    // holds nothing.
    let serve_b = |extra: &[&str]| {
        let mut args = vec![
            "serve",
            "--snapshot",
            snap_b.to_str().unwrap(),
            "--wal",
            wal_b.to_str().unwrap(),
            "--port",
            "0",
        ];
        args.extend_from_slice(extra);
        boot_server(&args, None)
    };
    let (mut b, addr_b, _) = serve_b(&["--compact-every", "1"]);
    let resp = mutate_ok(addr_b, batch1);
    assert!(resp.contains("\"compacted\":true"), "{resp}");
    mutate_ok(addr_b, batch2);
    b.kill().expect("kill server B");
    let _ = b.wait();
    let (mut b, addr_b, banner) = serve_b(&[]);
    assert!(
        banner.iter().any(|l| l.contains("0 record(s) replayed")),
        "compaction must have truncated the WAL: {banner:?}"
    );

    // --- Acceptance: overlay reads (A) are byte-identical to folded
    // CSR reads (B) on both query surfaces.
    for e in 0..6 {
        for r in ["r0", "r1"] {
            let body = format!(
                r#"{{"model": "MMKGR", "query": {{"source": "e{e}", "relation": "{r}", "top_k": 5, "beam": 8, "steps": 3}}}}"#
            );
            let (sa, ba) = request(addr_a, "POST", "/v1/answer", &body).unwrap();
            let (sb, bb) = request(addr_b, "POST", "/v1/answer", &body).unwrap();
            assert_eq!(sa, 200, "{ba}");
            assert_eq!(sb, 200, "{bb}");
            assert_eq!(
                ba, bb,
                "e{e}/{r}: recovered-overlay answer differs from compacted-CSR answer"
            );
        }
    }
    let retrieve = serde_json::to_string(
        &RetrieveRequest::new(["e0".to_string()])
            .with_model("MMKGR")
            .with_hops(2)
            .with_max_paths(6),
    )
    .unwrap();
    let (sa, ba) = request(addr_a, "POST", "/v1/retrieve", &retrieve).unwrap();
    let (sb, bb) = request(addr_b, "POST", "/v1/retrieve", &retrieve).unwrap();
    assert_eq!((sa, sb), (200, 200), "{ba}\n{bb}");
    assert_eq!(ba, bb, "retrieval differs between recovery and compaction");
    let wire: RetrieveResponse = serde_json::from_str(&ba).unwrap();
    assert!(
        wire.subgraph
            .triples
            .iter()
            .any(|t| t.s == "e0" && t.r == "r1" && t.o == "e8"),
        "the second batch's insert must be visible: {ba}"
    );
    assert!(
        !wire
            .subgraph
            .triples
            .iter()
            .any(|t| t.s == "e0" && t.r == "r1" && t.o == "e7"),
        "the deleted triple must be gone: {ba}"
    );

    a.kill().expect("kill server A");
    b.kill().expect("kill server B");
    let _ = a.wait();
    let _ = b.wait();
    for p in [&snap_a, &snap_b, &wal_a, &wal_b] {
        std::fs::remove_file(p).ok();
    }
}
