//! `mmkgr-eval` — metrics, ranking protocols, and the experiment harness
//! that regenerates every table and figure of the MMKGR paper.
//!
//! - [`metrics`]: filtered rank, MRR/Hits accumulators, MAP.
//! - [`ranker`]: entity/relation link-prediction drivers, written once
//!   against the unified serving surface (`mmkgr_core::serve`).
//! - [`harness`]: dataset + substrate lifecycle and model builders; one
//!   [`harness::Harness`] per (dataset, scale) pair.
//! - [`serving`]: [`ReasonerBuilder`] — dataset → substrate → model →
//!   `Arc<dyn KgReasoner + Send + Sync>` in one call.
//! - [`snapshot`]: encode trained registries into `.mmkg` snapshots and
//!   boot them back in milliseconds (`mmkgr serve --snapshot`).
//! - [`report`]: paper-style aligned tables and JSON persistence.

pub mod fewshot;
pub mod harness;
pub mod metrics;
pub mod ranker;
pub mod report;
pub mod serving;
pub mod snapshot;

pub use fewshot::{relation_frequencies, FewShotSplit, FrequencyBucket};
pub use harness::{datasets_from_args, Dataset, Harness, HarnessConfig, ScaleChoice};
pub use metrics::{
    average_precision_single, filtered_rank, filtered_rank_with, RankAccum, TieBreak,
};
pub use ranker::{
    eval_policy_entity, eval_policy_relation_map, eval_reasoner_entity, eval_scorer_entity,
    eval_scorer_relation_map, LinkPredictionResult, RelationMapResult,
};
pub use report::{pct, pct_delta, save_json, Table};
pub use serving::{
    build_reasoner, build_registry, harness_name_index, harness_retriever, train_model,
    BuiltReasoner, KgeModel, KgeSpec, ModelChoice, ReasonerBuilder, TrainedModel, TrainedModelKind,
};
pub use snapshot::{
    load_registry_snapshot, load_registry_snapshot_live, rewrite_registry_snapshot,
    write_registry_snapshot, write_registry_snapshot_with_vocab, LoadedRegistry,
    SnapshotBuildError,
};
