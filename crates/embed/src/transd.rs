//! TransD (Ji et al., ACL 2015): translation with dynamic projection
//! matrices built from entity- and relation-specific projection vectors.
//!
//! With equal entity/relation dimensions the projection matrix
//! `M_re = r_p e_pᵀ + I` collapses to `e⊥ = e + (e_p · e) r_p`, which is
//! what we compute — no `d×d` materialization needed. Listed in the
//! paper's Table I among the traditional single-hop baselines.

use mmkgr_kg::{EntityId, RelationId, Triple, TripleSet};
use mmkgr_nn::{loss::margin_ranking, Adam, Ctx, Embedding, Params};
use mmkgr_tensor::init::seeded_rng;
use mmkgr_tensor::{Tape, Var};

use crate::negative::NegativeSampler;
use crate::scorer::TripleScorer;
use crate::trainer::{batch_indices, KgeTrainConfig};

pub struct TransD {
    pub params: Params,
    pub entities: Embedding,
    pub entity_proj: Embedding,
    pub relations: Embedding,
    pub relation_proj: Embedding,
    pub dim: usize,
}

impl TransD {
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut params = Params::new();
        let mut rng = seeded_rng(seed);
        let entities = Embedding::new(&mut params, &mut rng, "transd.ent", num_entities, dim);
        let entity_proj = Embedding::new(&mut params, &mut rng, "transd.ent_p", num_entities, dim);
        let relations = Embedding::new(&mut params, &mut rng, "transd.rel", num_relations, dim);
        let relation_proj =
            Embedding::new(&mut params, &mut rng, "transd.rel_p", num_relations, dim);
        let mut model = TransD {
            params,
            entities,
            entity_proj,
            relations,
            relation_proj,
            dim,
        };
        model.normalize_entities();
        model
    }

    /// `e⊥ = e + (e_p · e) r_p` for a batch (`B×d`).
    fn project(ctx: &Ctx<'_>, e: Var, e_p: Var, r_p: Var) -> Var {
        let t = ctx.tape;
        let dot = t.sum_rows(t.mul(e_p, e)); // B×1
        let shift = t.mul_col_broadcast(r_p, dot); // B×d
        t.add(e, shift)
    }

    /// Squared translation distance in the projected space, `B×1`.
    fn batch_distance(&self, ctx: &Ctx<'_>, triples: &[&Triple]) -> Var {
        let t = ctx.tape;
        let s_idx: Vec<usize> = triples.iter().map(|x| x.s.index()).collect();
        let r_idx: Vec<usize> = triples.iter().map(|x| x.r.index()).collect();
        let o_idx: Vec<usize> = triples.iter().map(|x| x.o.index()).collect();
        let s = self.entities.forward(ctx, &s_idx);
        let s_p = self.entity_proj.forward(ctx, &s_idx);
        let o = self.entities.forward(ctx, &o_idx);
        let o_p = self.entity_proj.forward(ctx, &o_idx);
        let r = self.relations.forward(ctx, &r_idx);
        let r_p = self.relation_proj.forward(ctx, &r_idx);
        let s_proj = Self::project(ctx, s, s_p, r_p);
        let o_proj = Self::project(ctx, o, o_p, r_p);
        let diff = t.sub(t.add(s_proj, r), o_proj);
        let sq = t.mul(diff, diff);
        t.sum_rows(sq)
    }

    pub fn train(
        &mut self,
        triples: &[Triple],
        known: &TripleSet,
        cfg: &KgeTrainConfig,
    ) -> Vec<f32> {
        let mut rng = seeded_rng(cfg.seed);
        let sampler = NegativeSampler::new(known, self.entities.count);
        let mut opt = Adam::new(cfg.lr);
        let mut trace = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in batch_indices(triples.len(), cfg.batch_size, &mut rng) {
                let pos: Vec<&Triple> = batch.iter().map(|&i| &triples[i]).collect();
                let negs: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
                let neg_refs: Vec<&Triple> = negs.iter().collect();

                let tape = Tape::new();
                let ctx = Ctx::new(&tape, &self.params);
                let pos_d = self.batch_distance(&ctx, &pos);
                let neg_d = self.batch_distance(&ctx, &neg_refs);
                let loss = margin_ranking(&tape, pos_d, neg_d, cfg.margin);
                epoch_loss += tape.scalar(loss);
                batches += 1;
                let grads = tape.backward(loss);
                ctx.into_leases().accumulate(&mut self.params, &grads);
                opt.step(&mut self.params);
                self.params.zero_grads();
            }
            self.normalize_entities();
            trace.push(epoch_loss / batches.max(1) as f32);
        }
        trace
    }

    /// The TransD norm constraint: base entity vectors on the unit sphere.
    pub fn normalize_entities(&mut self) {
        self.params
            .value_mut(self.entities.table)
            .l2_normalize_rows();
    }

    /// Plain-f32 projection of one entity under one relation.
    fn project_one(&self, e: EntityId, r: RelationId) -> Vec<f32> {
        let ev = self.entities.row(&self.params, e.index());
        let ep = self.entity_proj.row(&self.params, e.index());
        let rp = self.relation_proj.row(&self.params, r.index());
        let dot: f32 = ep.iter().zip(ev).map(|(a, b)| a * b).sum();
        ev.iter().zip(rp).map(|(v, p)| v + dot * p).collect()
    }
}

impl TripleScorer for TransD {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let sp = self.project_one(s, r);
        let op = self.project_one(o, r);
        let er = self.relations.row(&self.params, r.index());
        let mut d = 0.0f32;
        for i in 0..self.dim {
            let v = sp[i] + er[i] - op[i];
            d += v * v;
        }
        -d
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        let sp = self.project_one(s, r);
        let er = self.relations.row(&self.params, r.index());
        let query: Vec<f32> = sp.iter().zip(er).map(|(a, b)| a + b).collect();
        let rp = self.relation_proj.row(&self.params, r.index());
        let ents = self.params.value(self.entities.table);
        let projs = self.params.value(self.entity_proj.table);
        crate::scorer::prepare_score_buffer(out, n);
        for o in 0..n {
            let ev = ents.row(o);
            let ep = projs.row(o);
            let dot: f32 = ep.iter().zip(ev).map(|(a, b)| a * b).sum();
            let mut dsum = 0.0f32;
            for i in 0..self.dim {
                let op = ev[i] + dot * rp[i];
                let v = query[i] - op;
                dsum += v * v;
            }
            out.push(-dsum);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_separates_pos_from_neg() {
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 0, 3),
        ];
        let known = TripleSet::from_triples(&triples);
        let mut model = TransD::new(4, 1, 16, 0);
        model.train(&triples, &known, &KgeTrainConfig::quick().with_epochs(80));
        let pos = model.score(EntityId(0), RelationId(0), EntityId(1));
        let neg = model.score(EntityId(0), RelationId(0), EntityId(3));
        assert!(pos > neg, "pos {pos} !> neg {neg}");
    }

    #[test]
    fn vectorized_matches_pointwise() {
        let model = TransD::new(6, 2, 8, 5);
        let mut out = Vec::new();
        model.score_all_objects(EntityId(2), RelationId(1), 6, &mut out);
        for (o, &v) in out.iter().enumerate() {
            assert!((v - model.score(EntityId(2), RelationId(1), EntityId(o as u32))).abs() < 1e-4);
        }
    }

    #[test]
    fn projection_is_relation_specific() {
        // The same entity must project differently under different
        // relations — the property that separates TransD from TransE.
        let model = TransD::new(4, 2, 8, 2);
        let p0 = model.project_one(EntityId(0), RelationId(0));
        let p1 = model.project_one(EntityId(0), RelationId(1));
        assert_ne!(p0, p1);
    }

    #[test]
    fn projection_reduces_to_identity_with_zero_vectors() {
        let mut model = TransD::new(4, 1, 8, 4);
        model
            .params
            .value_mut(model.relation_proj.table)
            .fill_zero();
        let p = model.project_one(EntityId(1), RelationId(0));
        let e = model.entities.row(&model.params, 1);
        for (a, b) in p.iter().zip(e) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
