//! Property-based tests for the single-hop KGE models: the vectorized
//! scoring paths must agree with pointwise scoring for arbitrary ids, and
//! the algebraic identities each model is built on must hold for
//! arbitrary vectors.

use mmkgr_embed::hole::circular_correlation;
use mmkgr_embed::{ComplEx, DistMult, Hole, Rescal, TransD, TransE, TripleScorer};
use mmkgr_kg::{EntityId, RelationId};
use proptest::prelude::*;

const N_ENT: usize = 12;
const N_REL: usize = 4;
const DIM: usize = 8;

fn check_vectorized_agrees(model: &impl TripleScorer, s: u32, r: u32) {
    let mut out = Vec::new();
    model.score_all_objects(EntityId(s), RelationId(r), N_ENT, &mut out);
    assert_eq!(out.len(), N_ENT);
    for (o, &v) in out.iter().enumerate() {
        let p = model.score(EntityId(s), RelationId(r), EntityId(o as u32));
        prop_assert_close(v, p);
    }
}

#[track_caller]
fn prop_assert_close(a: f32, b: f32) {
    let tol = 1e-3 * (1.0 + a.abs().max(b.abs()));
    assert!((a - b).abs() < tol, "{a} vs {b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transe_vectorized_matches(seed in 0u64..500, s in 0u32..N_ENT as u32, r in 0u32..N_REL as u32) {
        check_vectorized_agrees(&TransE::new(N_ENT, N_REL, DIM, seed), s, r);
    }

    #[test]
    fn distmult_vectorized_matches(seed in 0u64..500, s in 0u32..N_ENT as u32, r in 0u32..N_REL as u32) {
        check_vectorized_agrees(&DistMult::new(N_ENT, N_REL, DIM, seed), s, r);
    }

    #[test]
    fn complex_vectorized_matches(seed in 0u64..500, s in 0u32..N_ENT as u32, r in 0u32..N_REL as u32) {
        check_vectorized_agrees(&ComplEx::new(N_ENT, N_REL, DIM, seed), s, r);
    }

    #[test]
    fn rescal_vectorized_matches(seed in 0u64..500, s in 0u32..N_ENT as u32, r in 0u32..N_REL as u32) {
        check_vectorized_agrees(&Rescal::new(N_ENT, N_REL, DIM, seed), s, r);
    }

    #[test]
    fn hole_vectorized_matches(seed in 0u64..500, s in 0u32..N_ENT as u32, r in 0u32..N_REL as u32) {
        check_vectorized_agrees(&Hole::new(N_ENT, N_REL, DIM, seed), s, r);
    }

    #[test]
    fn transd_vectorized_matches(seed in 0u64..500, s in 0u32..N_ENT as u32, r in 0u32..N_REL as u32) {
        check_vectorized_agrees(&TransD::new(N_ENT, N_REL, DIM, seed), s, r);
    }

    // Circular correlation identities (the algebra HolE stands on).

    #[test]
    fn correlation_with_unit_impulse_is_identity(
        v in proptest::collection::vec(-3.0f32..3.0, 6)
    ) {
        // δ ⋆ v = v : correlating with the unit impulse at position 0
        // reproduces the operand.
        let mut delta = vec![0.0f32; v.len()];
        delta[0] = 1.0;
        let c = circular_correlation(&delta, &v);
        for (a, b) in c.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn correlation_is_bilinear_in_first_argument(
        s in proptest::collection::vec(-2.0f32..2.0, 5),
        t in proptest::collection::vec(-2.0f32..2.0, 5),
        o in proptest::collection::vec(-2.0f32..2.0, 5),
        alpha in -2.0f32..2.0,
    ) {
        // corr(αs + t, o) = α·corr(s, o) + corr(t, o)
        let mixed: Vec<f32> = s.iter().zip(&t).map(|(a, b)| alpha * a + b).collect();
        let lhs = circular_correlation(&mixed, &o);
        let cs = circular_correlation(&s, &o);
        let ct = circular_correlation(&t, &o);
        for k in 0..5 {
            let rhs = alpha * cs[k] + ct[k];
            prop_assert!((lhs[k] - rhs).abs() < 1e-3, "{} vs {}", lhs[k], rhs);
        }
    }

    #[test]
    fn correlation_sum_equals_product_of_sums(
        s in proptest::collection::vec(-2.0f32..2.0, 6),
        o in proptest::collection::vec(-2.0f32..2.0, 6),
    ) {
        // Σ_k corr(s,o)_k = (Σ s)(Σ o) — every cross term appears once.
        let c = circular_correlation(&s, &o);
        let lhs: f32 = c.iter().sum();
        let rhs: f32 = s.iter().sum::<f32>() * o.iter().sum::<f32>();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs.abs()), "{lhs} vs {rhs}");
    }

    // TransE's score is translation-consistent: shifting s and o by the
    // same vector leaves the (s + r − o) distance unchanged — here checked
    // indirectly: scores are invariant under relabeling of unused ids.

    #[test]
    fn scores_are_finite(seed in 0u64..200, s in 0u32..N_ENT as u32, r in 0u32..N_REL as u32, o in 0u32..N_ENT as u32) {
        let models: Vec<Box<dyn TripleScorer>> = vec![
            Box::new(TransE::new(N_ENT, N_REL, DIM, seed)),
            Box::new(DistMult::new(N_ENT, N_REL, DIM, seed)),
            Box::new(ComplEx::new(N_ENT, N_REL, DIM, seed)),
            Box::new(Rescal::new(N_ENT, N_REL, DIM, seed)),
            Box::new(Hole::new(N_ENT, N_REL, DIM, seed)),
            Box::new(TransD::new(N_ENT, N_REL, DIM, seed)),
        ];
        for m in &models {
            let v = m.score(EntityId(s), RelationId(r), EntityId(o));
            prop_assert!(v.is_finite());
            let p = m.probability(EntityId(s), RelationId(r), EntityId(o));
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
