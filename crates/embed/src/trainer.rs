//! Shared training configuration for the single-hop KGE models.

/// Hyper-parameters for embedding-model training.
#[derive(Clone, Debug)]
pub struct KgeTrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Margin for ranking losses (TransE/DistMult/ComplEx/MTRL).
    pub margin: f32,
    pub seed: u64,
}

impl Default for KgeTrainConfig {
    fn default() -> Self {
        KgeTrainConfig {
            epochs: 30,
            batch_size: 256,
            lr: 1e-2,
            margin: 1.0,
            seed: 7,
        }
    }
}

impl KgeTrainConfig {
    pub fn quick() -> Self {
        KgeTrainConfig {
            epochs: 8,
            batch_size: 128,
            ..Self::default()
        }
    }

    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Mini-batch iteration order helper: yields shuffled index windows.
pub fn batch_indices(n: usize, batch: usize, rng: &mut rand::rngs::StdRng) -> Vec<Vec<usize>> {
    use rand::seq::SliceRandom;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    order.chunks(batch.max(1)).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_tensor::init::seeded_rng;

    #[test]
    fn batches_cover_all_indices_once() {
        let mut rng = seeded_rng(0);
        let batches = batch_indices(10, 3, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_sizes_respect_limit() {
        let mut rng = seeded_rng(1);
        for b in batch_indices(10, 4, &mut rng) {
            assert!(b.len() <= 4);
        }
    }

    #[test]
    fn config_builders() {
        let c = KgeTrainConfig::default()
            .with_epochs(3)
            .with_lr(0.5)
            .with_seed(9);
        assert_eq!(c.epochs, 3);
        assert_eq!(c.lr, 0.5);
        assert_eq!(c.seed, 9);
    }
}
