//! Parameter storage and per-tape leasing.
//!
//! Parameters live in a [`Params`] arena, addressed by [`ParamId`]. A
//! forward pass runs inside a [`Ctx`], which *leases* each parameter onto
//! the tape (as a leaf node) at most once; after `backward`, the recorded
//! leases route tape gradients back into the arena with
//! [`Leases::accumulate`].
//!
//! This indirection is what lets us rebuild a fresh dynamic graph every RL
//! step while the parameters (and their optimizer state) persist.

use std::cell::RefCell;
use std::collections::HashMap;

use mmkgr_tensor::{Grads, Matrix, Tape, Var};
use serde::{Deserialize, Serialize};

/// Handle to a parameter in a [`Params`] arena.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

#[derive(Serialize, Deserialize)]
struct Entry {
    name: String,
    value: Matrix,
    grad: Matrix,
}

/// Arena of named, trainable parameters.
#[derive(Default, Serialize, Deserialize)]
pub struct Params {
    entries: Vec<Entry>,
}

impl Params {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; names are for diagnostics/serialization and
    /// need not be unique (suffix them at the call site if they must be).
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.entries.push(Entry {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].grad
    }

    /// Add `delta` into the stored gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        self.entries[id.0].grad.add_assign(delta);
    }

    /// Reset all gradients to zero (keeps allocations).
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Iterate `(id, value, grad)` for optimizer steps.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Matrix, &mut Matrix)> {
        self.entries
            .iter_mut()
            .enumerate()
            .map(|(i, e)| (ParamId(i), &mut e.value, &mut e.grad))
    }

    /// Iterate `(id, name, value)` read-only.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (ParamId(i), e.name.as_str(), &e.value))
    }

    /// Global gradient L2 norm (for clipping diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.as_slice().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Serialize all parameters to JSON (model checkpoint).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Params serialize")
    }

    /// Restore from [`Params::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Recorded (parameter → tape leaf) pairs for one forward pass.
#[derive(Default)]
pub struct Leases {
    pairs: Vec<(ParamId, Var)>,
}

impl Leases {
    /// Route tape gradients back into the parameter arena.
    pub fn accumulate(&self, params: &mut Params, grads: &Grads) {
        for &(id, var) in &self.pairs {
            if let Some(g) = grads.get(var) {
                params.accumulate_grad(id, g);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Forward-pass context: a tape plus the parameter arena it reads from.
pub struct Ctx<'a> {
    pub tape: &'a Tape,
    params: &'a Params,
    leased: RefCell<HashMap<ParamId, Var>>,
    order: RefCell<Vec<(ParamId, Var)>>,
}

impl<'a> Ctx<'a> {
    pub fn new(tape: &'a Tape, params: &'a Params) -> Self {
        Ctx {
            tape,
            params,
            leased: RefCell::new(HashMap::new()),
            order: RefCell::new(Vec::new()),
        }
    }

    /// Lease parameter `id` onto the tape (cached: one leaf per parameter).
    pub fn p(&self, id: ParamId) -> Var {
        if let Some(&v) = self.leased.borrow().get(&id) {
            return v;
        }
        let v = self.tape.input(self.params.value(id).clone());
        self.leased.borrow_mut().insert(id, v);
        self.order.borrow_mut().push((id, v));
        v
    }

    /// Record a non-trainable input on the tape.
    pub fn input(&self, m: Matrix) -> Var {
        self.tape.input(m)
    }

    /// Finish the pass, returning the lease list for gradient routing.
    pub fn into_leases(self) -> Leases {
        Leases {
            pairs: self.order.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = Params::new();
        let id = p.add("w", Matrix::ones(2, 2));
        assert_eq!(p.len(), 1);
        assert_eq!(p.num_scalars(), 4);
        assert_eq!(p.name(id), "w");
        assert_eq!(p.value(id).sum(), 4.0);
    }

    #[test]
    fn lease_is_cached() {
        let mut p = Params::new();
        let id = p.add("w", Matrix::ones(1, 1));
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &p);
        let a = ctx.p(id);
        let b = ctx.p(id);
        assert_eq!(a, b);
        assert_eq!(ctx.into_leases().len(), 1);
    }

    #[test]
    fn grads_flow_back_to_params() {
        let mut p = Params::new();
        let id = p.add("w", Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let tape = Tape::new();
        let leases = {
            let ctx = Ctx::new(&tape, &p);
            let w = ctx.p(id);
            let sq = tape.mul(w, w);
            let loss = tape.sum(sq);
            let grads = tape.backward(loss);
            let leases = ctx.into_leases();
            leases.accumulate(&mut p, &grads);
            leases
        };
        assert_eq!(leases.len(), 1);
        // d/dw sum(w²) = 2w
        assert_eq!(p.grad(id).as_slice(), &[4.0, 6.0]);
        p.zero_grads();
        assert_eq!(p.grad(id).sum(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut p = Params::new();
        p.add("a", Matrix::from_vec(1, 2, vec![0.5, -0.5]));
        p.add("b", Matrix::zeros(2, 2));
        let s = p.to_json();
        let q = Params::from_json(&s).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.value(ParamId(0)).as_slice(), &[0.5, -0.5]);
    }

    #[test]
    fn grad_norm_accumulates_across_params() {
        let mut p = Params::new();
        let a = p.add("a", Matrix::zeros(1, 1));
        let b = p.add("b", Matrix::zeros(1, 1));
        p.accumulate_grad(a, &Matrix::full(1, 1, 3.0));
        p.accumulate_grad(b, &Matrix::full(1, 1, 4.0));
        assert!((p.grad_norm() - 5.0).abs() < 1e-6);
    }
}
