//! DistMult (Yang et al., 2015): bilinear-diagonal scoring `Σ s⊙r⊙o`.

use mmkgr_kg::{EntityId, RelationId, Triple, TripleSet};
use mmkgr_nn::{Adam, Ctx, Embedding, Params};
use mmkgr_tensor::init::seeded_rng;
use mmkgr_tensor::{Tape, Var};

use crate::negative::NegativeSampler;
use crate::scorer::TripleScorer;
use crate::trainer::{batch_indices, KgeTrainConfig};

pub struct DistMult {
    pub params: Params,
    pub entities: Embedding,
    pub relations: Embedding,
    pub dim: usize,
}

impl DistMult {
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut params = Params::new();
        let mut rng = seeded_rng(seed);
        let entities = Embedding::new(&mut params, &mut rng, "distmult.ent", num_entities, dim);
        let relations = Embedding::new(&mut params, &mut rng, "distmult.rel", num_relations, dim);
        DistMult {
            params,
            entities,
            relations,
            dim,
        }
    }

    fn batch_score(&self, ctx: &Ctx<'_>, triples: &[&Triple]) -> Var {
        let t = ctx.tape;
        let s_idx: Vec<usize> = triples.iter().map(|x| x.s.index()).collect();
        let r_idx: Vec<usize> = triples.iter().map(|x| x.r.index()).collect();
        let o_idx: Vec<usize> = triples.iter().map(|x| x.o.index()).collect();
        let s = self.entities.forward(ctx, &s_idx);
        let r = self.relations.forward(ctx, &r_idx);
        let o = self.entities.forward(ctx, &o_idx);
        let prod = t.mul(t.mul(s, r), o);
        t.sum_rows(prod)
    }

    /// Margin loss on score gaps: `mean(relu(margin − pos + neg))`.
    pub fn train(
        &mut self,
        triples: &[Triple],
        known: &TripleSet,
        cfg: &KgeTrainConfig,
    ) -> Vec<f32> {
        let mut rng = seeded_rng(cfg.seed);
        let sampler = NegativeSampler::new(known, self.entities.count);
        let mut opt = Adam::new(cfg.lr);
        let mut trace = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in batch_indices(triples.len(), cfg.batch_size, &mut rng) {
                let pos: Vec<&Triple> = batch.iter().map(|&i| &triples[i]).collect();
                let negs: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
                let neg_refs: Vec<&Triple> = negs.iter().collect();

                let tape = Tape::new();
                let ctx = Ctx::new(&tape, &self.params);
                let pos_s = self.batch_score(&ctx, &pos);
                let neg_s = self.batch_score(&ctx, &neg_refs);
                // higher-is-better scores → hinge on (margin − pos + neg)
                let gap = tape.sub(neg_s, pos_s);
                let shifted = tape.add_scalar(gap, cfg.margin);
                let hinge = tape.relu(shifted);
                let loss = tape.mean(hinge);
                epoch_loss += tape.scalar(loss);
                batches += 1;
                let grads = tape.backward(loss);
                ctx.into_leases().accumulate(&mut self.params, &grads);
                opt.step(&mut self.params);
                self.params.zero_grads();
            }
            trace.push(epoch_loss / batches.max(1) as f32);
        }
        trace
    }
}

impl TripleScorer for DistMult {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let es = self.entities.row(&self.params, s.index());
        let er = self.relations.row(&self.params, r.index());
        let eo = self.entities.row(&self.params, o.index());
        let mut acc = 0.0f32;
        for i in 0..self.dim {
            acc += es[i] * er[i] * eo[i];
        }
        acc
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        crate::scorer::prepare_score_buffer(out, n);
        let es = self.entities.row(&self.params, s.index());
        let er = self.relations.row(&self.params, r.index());
        let query: Vec<f32> = es.iter().zip(er).map(|(a, b)| a * b).collect();
        let table = self.params.value(self.entities.table);
        for o in 0..n {
            let row = table.row(o);
            let mut acc = 0.0f32;
            for i in 0..self.dim {
                acc += query[i] * row[i];
            }
            out.push(acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_separates_pos_from_neg() {
        let triples = vec![Triple::new(0, 0, 1), Triple::new(2, 0, 3)];
        let known = TripleSet::from_triples(&triples);
        let mut model = DistMult::new(4, 1, 8, 0);
        model.train(&triples, &known, &KgeTrainConfig::quick().with_epochs(60));
        let pos = model.score(EntityId(0), RelationId(0), EntityId(1));
        let neg = model.score(EntityId(0), RelationId(0), EntityId(2));
        assert!(pos > neg, "pos {pos} !> neg {neg}");
    }

    #[test]
    fn vectorized_matches_pointwise() {
        let model = DistMult::new(6, 2, 8, 5);
        let mut out = Vec::new();
        model.score_all_objects(EntityId(2), RelationId(1), 6, &mut out);
        for (o, &v) in out.iter().enumerate() {
            assert!((v - model.score(EntityId(2), RelationId(1), EntityId(o as u32))).abs() < 1e-5);
        }
    }

    #[test]
    fn score_is_symmetric_in_s_o() {
        // DistMult's known weakness: it can't model asymmetric relations.
        let model = DistMult::new(4, 1, 8, 2);
        let a = model.score(EntityId(0), RelationId(0), EntityId(1));
        let b = model.score(EntityId(1), RelationId(0), EntityId(0));
        assert!((a - b).abs() < 1e-6);
    }
}
