//! [`ReasonerBuilder`]: dataset → substrate → model →
//! `Arc<dyn KgReasoner + Send + Sync>` in one call.
//!
//! This is the construction half of the unified serving API
//! (`mmkgr_core::serve`): it absorbs the model-assembly recipes that were
//! previously copy-pasted across the CLI, the `mmkgr-bench` binaries, and
//! the examples. Every model family the paper evaluates — MMKGR and its
//! variants, the MINERVA/RLH/FIRE walkers, and the full Table-I KGE
//! family — builds through the same three stages:
//!
//! 1. **dataset**: deterministic synthetic MKG from `(dataset, scale,
//!    seed)` (via [`Harness`], which also samples eval triples);
//! 2. **substrate**: shared TransE init and ConvE reward shaper, trained
//!    once and cached on the harness;
//! 3. **model**: the [`ModelChoice`], trained at harness scale and
//!    wrapped in a [`PolicyReasoner`] or [`ScorerReasoner`].
//!
//! ```no_run
//! use mmkgr_eval::{Dataset, ModelChoice, ReasonerBuilder, ScaleChoice};
//! use mmkgr_core::serve::{KgReasoner, Query};
//!
//! let built = ReasonerBuilder::new(Dataset::Wn9ImgTxt, ScaleChoice::Quick)
//!     .model(ModelChoice::Mmkgr(mmkgr_core::Variant::Full))
//!     .build();
//! let t = built.harness.eval_triples[0];
//! let answer = built.reasoner.answer(&Query::new(t.s, t.r));
//! println!("{} says: {:?}", built.reasoner.name(), answer.top());
//! ```

use std::sync::Arc;

use mmkgr_core::serve::{
    KgReasoner, ModelRegistry, NameIndex, PolicyReasoner, Retriever, ScorerReasoner, ServeConfig,
};
use mmkgr_core::{MmkgrModel, Variant};
use mmkgr_embed::{
    ComplEx, ConvE, DistMult, Hole, Ikrl, KgeTrainConfig, Rescal, TransAe, TransD, TransE,
    TripleScorer,
};
use mmkgr_kg::{EntityId, KnowledgeGraph, ModalPresence, RelationId};
use mmkgr_nn::Params;

use crate::harness::{Dataset, Harness, HarnessConfig, ScaleChoice};

/// Every model the unified serving protocol covers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ModelChoice {
    /// MMKGR or one of its §V ablation variants.
    Mmkgr(Variant),
    /// MINERVA walker (structure-only RL baseline).
    Minerva,
    /// RLH walker (hierarchical relation clusters).
    Rlh,
    /// FIRE walker (TransE-pruned action space).
    Fire,
    // --- Table-I single-hop family ---
    TransE,
    TransD,
    DistMult,
    ComplEx,
    Rescal,
    Hole,
    ConvE,
    Ikrl,
    TransAe,
    Mtrl,
    // --- other multi-hop comparators ---
    Gaats,
    NeuralLp,
}

impl ModelChoice {
    pub fn name(&self) -> &'static str {
        match self {
            ModelChoice::Mmkgr(v) => v.name(),
            ModelChoice::Minerva => "MINERVA",
            ModelChoice::Rlh => "RLH",
            ModelChoice::Fire => "FIRE",
            ModelChoice::TransE => "TransE",
            ModelChoice::TransD => "TransD",
            ModelChoice::DistMult => "DistMult",
            ModelChoice::ComplEx => "ComplEx",
            ModelChoice::Rescal => "RESCAL",
            ModelChoice::Hole => "HolE",
            ModelChoice::ConvE => "ConvE",
            ModelChoice::Ikrl => "IKRL",
            ModelChoice::TransAe => "TransAE",
            ModelChoice::Mtrl => "MTRL",
            ModelChoice::Gaats => "GAATs",
            ModelChoice::NeuralLp => "NeuralLP",
        }
    }

    /// Does this model answer with reasoning-path evidence?
    pub fn is_path_reasoner(&self) -> bool {
        matches!(
            self,
            ModelChoice::Mmkgr(_) | ModelChoice::Minerva | ModelChoice::Rlh | ModelChoice::Fire
        )
    }

    /// Parse a model name (the CLI's `--models` list and config files).
    /// Case-insensitive; accepts every [`Self::name`] plus the MMKGR
    /// ablation variant codes (`OSKGR`, `STKGR`, …).
    pub fn parse(s: &str) -> Result<ModelChoice, String> {
        Ok(match s.to_ascii_uppercase().as_str() {
            "MMKGR" | "FULL" => ModelChoice::Mmkgr(Variant::Full),
            "OSKGR" => ModelChoice::Mmkgr(Variant::Oskgr),
            "STKGR" => ModelChoice::Mmkgr(Variant::Stkgr),
            "SIKGR" => ModelChoice::Mmkgr(Variant::Sikgr),
            "FAKGR" => ModelChoice::Mmkgr(Variant::Fakgr),
            "FGKGR" => ModelChoice::Mmkgr(Variant::Fgkgr),
            "DEKGR" => ModelChoice::Mmkgr(Variant::Dekgr),
            "DSKGR" => ModelChoice::Mmkgr(Variant::Dskgr),
            "DVKGR" => ModelChoice::Mmkgr(Variant::Dvkgr),
            "ZOKGR" => ModelChoice::Mmkgr(Variant::Zokgr),
            "MINERVA" => ModelChoice::Minerva,
            "RLH" => ModelChoice::Rlh,
            "FIRE" => ModelChoice::Fire,
            "TRANSE" => ModelChoice::TransE,
            "TRANSD" => ModelChoice::TransD,
            "DISTMULT" => ModelChoice::DistMult,
            "COMPLEX" => ModelChoice::ComplEx,
            "RESCAL" => ModelChoice::Rescal,
            "HOLE" => ModelChoice::Hole,
            "CONVE" => ModelChoice::ConvE,
            "IKRL" => ModelChoice::Ikrl,
            "TRANSAE" => ModelChoice::TransAe,
            "MTRL" => ModelChoice::Mtrl,
            "GAATS" => ModelChoice::Gaats,
            "NEURALLP" => ModelChoice::NeuralLp,
            other => return Err(format!("unknown model `{other}`")),
        })
    }
}

/// A built serving stack: the reasoner plus the harness that owns the
/// dataset it serves (kept for test queries, filtered-eval sets, and for
/// building further models over the same substrate).
pub struct BuiltReasoner {
    pub reasoner: Arc<dyn KgReasoner + Send + Sync>,
    pub harness: Harness,
}

/// Fluent construction of a served reasoner. See the module docs.
pub struct ReasonerBuilder {
    cfg: HarnessConfig,
    choice: ModelChoice,
    serve: Option<ServeConfig>,
    cache_capacity: Option<usize>,
    beam_dedup: Option<bool>,
}

impl ReasonerBuilder {
    pub fn new(dataset: Dataset, scale: ScaleChoice) -> Self {
        ReasonerBuilder {
            cfg: HarnessConfig::new(dataset, scale),
            choice: ModelChoice::Mmkgr(Variant::Full),
            serve: None,
            cache_capacity: None,
            beam_dedup: None,
        }
    }

    /// Select the model family to train and serve (default: full MMKGR).
    pub fn model(mut self, choice: ModelChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Adjust harness knobs (epochs, eval cap, seed, …) before training.
    pub fn tune(mut self, f: impl FnOnce(&mut HarnessConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Serving defaults (beam width / step horizon). Defaults to the
    /// harness beam and the paper's T = 4.
    pub fn serve_config(mut self, serve: ServeConfig) -> Self {
        self.serve = Some(serve);
        self
    }

    /// Enable the LRU frontier cache on the served reasoner (path
    /// reasoners only; scorers ignore it). Overrides any capacity set
    /// via [`Self::serve_config`].
    pub fn cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Run the beam engine with frontier deduplication (see
    /// `mmkgr_core::beam`). Overrides any flag set via
    /// [`Self::serve_config`].
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.beam_dedup = Some(dedup);
        self
    }

    /// Build the dataset + substrates, train the model, and wrap it.
    pub fn build(self) -> BuiltReasoner {
        let harness = Harness::new(self.cfg);
        let mut serve = self.serve.unwrap_or(ServeConfig {
            beam_width: harness.cfg.beam,
            max_steps: 4,
            ..ServeConfig::default()
        });
        if let Some(capacity) = self.cache_capacity {
            serve.cache_capacity = capacity;
        }
        if let Some(dedup) = self.beam_dedup {
            serve.beam_dedup = dedup;
        }
        let reasoner = build_reasoner(&harness, self.choice, serve);
        BuiltReasoner { reasoner, harness }
    }
}

/// The name-resolution index of a harness's synthetic dataset: entities
/// `e0..`, base relations `r0..` — the same convention `mmkgr generate`
/// exports, so TSV dumps and the wire protocol agree on names.
pub fn harness_name_index(h: &Harness) -> NameIndex {
    NameIndex::synthetic(h.kg.num_entities(), h.kg.num_base_relations())
}

/// Train every `choice` over one shared harness and host them in a
/// [`ModelRegistry`] — the construction half of `mmkgr serve`. The first
/// choice becomes the registry default.
pub fn build_registry(h: &Harness, choices: &[ModelChoice], serve: ServeConfig) -> ModelRegistry {
    let mut registry = ModelRegistry::new(harness_name_index(h));
    for &choice in choices {
        registry.register(build_reasoner(h, choice, serve));
    }
    registry.set_retriever(Arc::new(harness_retriever(h)));
    registry
}

/// The `/v1/retrieve` back end over a harness's dataset: k-hop subgraphs
/// annotated with the modal bank's per-entity image/text presence, and
/// few-shot relation tags from the training-split frequencies (the same
/// counts `mmkgr stats` and the few-shot bench report).
pub fn harness_retriever(h: &Harness) -> Retriever {
    Retriever::new(h.graph_arc())
        .with_modal_presence(ModalPresence::from_bank(&h.kg.modal))
        .with_relation_frequencies(crate::fewshot::relation_frequencies(&h.kg.split.train))
}

/// Reconstruction recipe for a snapshotted KGE scorer: re-running the
/// model's deterministic constructor with these arguments rebuilds a
/// parameter arena of identical shape (same tensors in the same order),
/// which a snapshot's flat weight section then overwrites. See
/// [`crate::snapshot`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KgeSpec {
    /// Model kind tag (matches [`ModelChoice::name`]).
    pub model: &'static str,
    /// Embedding dimension passed to the constructor.
    pub dim: usize,
    /// Init seed passed to the constructor.
    pub seed: u64,
    /// `(img_h, img_w, channels)` for ConvE's image-plane constructor.
    pub img: Option<(usize, usize, usize)>,
}

/// A trained KGE scorer whose parameters live in a [`Params`] arena —
/// the snapshotable subset of the Table-I family. Delegates every
/// [`TripleScorer`] method so serving through this wrapper is
/// bit-identical to serving the concrete model.
pub enum KgeModel {
    TransE(Arc<TransE>),
    ConvE(Arc<ConvE>),
    TransD(TransD),
    DistMult(DistMult),
    ComplEx(ComplEx),
    Rescal(Rescal),
    Hole(Hole),
}

impl KgeModel {
    /// The trained parameter arena (flattened into snapshots).
    pub fn params(&self) -> &Params {
        match self {
            KgeModel::TransE(m) => &m.params,
            KgeModel::ConvE(m) => &m.params,
            KgeModel::TransD(m) => &m.params,
            KgeModel::DistMult(m) => &m.params,
            KgeModel::ComplEx(m) => &m.params,
            KgeModel::Rescal(m) => &m.params,
            KgeModel::Hole(m) => &m.params,
        }
    }
}

impl TripleScorer for KgeModel {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        match self {
            KgeModel::TransE(m) => m.score(s, r, o),
            KgeModel::ConvE(m) => m.score(s, r, o),
            KgeModel::TransD(m) => m.score(s, r, o),
            KgeModel::DistMult(m) => m.score(s, r, o),
            KgeModel::ComplEx(m) => m.score(s, r, o),
            KgeModel::Rescal(m) => m.score(s, r, o),
            KgeModel::Hole(m) => m.score(s, r, o),
        }
    }

    // Forward the vectorized paths too — the wrapper must not silently
    // fall back to the pointwise default.
    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        match self {
            KgeModel::TransE(m) => m.score_all_objects(s, r, n, out),
            KgeModel::ConvE(m) => m.score_all_objects(s, r, n, out),
            KgeModel::TransD(m) => m.score_all_objects(s, r, n, out),
            KgeModel::DistMult(m) => m.score_all_objects(s, r, n, out),
            KgeModel::ComplEx(m) => m.score_all_objects(s, r, n, out),
            KgeModel::Rescal(m) => m.score_all_objects(s, r, n, out),
            KgeModel::Hole(m) => m.score_all_objects(s, r, n, out),
        }
    }

    fn score_objects_range(
        &self,
        s: EntityId,
        r: RelationId,
        lo: usize,
        hi: usize,
        out: &mut Vec<f32>,
    ) {
        match self {
            KgeModel::TransE(m) => m.score_objects_range(s, r, lo, hi, out),
            KgeModel::ConvE(m) => m.score_objects_range(s, r, lo, hi, out),
            KgeModel::TransD(m) => m.score_objects_range(s, r, lo, hi, out),
            KgeModel::DistMult(m) => m.score_objects_range(s, r, lo, hi, out),
            KgeModel::ComplEx(m) => m.score_objects_range(s, r, lo, hi, out),
            KgeModel::Rescal(m) => m.score_objects_range(s, r, lo, hi, out),
            KgeModel::Hole(m) => m.score_objects_range(s, r, lo, hi, out),
        }
    }
}

/// A trained model, separated from the reasoner it will be served as —
/// the snapshot writer encodes this, the serving path wraps it via
/// [`TrainedModel::into_reasoner`]. Both halves therefore share one
/// training run.
pub struct TrainedModel {
    /// Registry/display name (e.g. `"MMKGR"`, `"TransE"`).
    pub name: String,
    pub kind: TrainedModelKind,
}

pub enum TrainedModelKind {
    /// An MMKGR-family policy. Snapshots store its self-contained JSON
    /// checkpoint ([`MmkgrModel::to_json`]).
    Mmkgr(Box<MmkgrModel>),
    /// A KGE scorer with a deterministic reconstruction recipe; snapshots
    /// store the flat f32 parameters plus the [`KgeSpec`].
    Kge { model: KgeModel, spec: KgeSpec },
    /// Served as-is but not snapshotable: the baseline walkers (whose
    /// policies have no stable checkpoint format) and the modal/composite
    /// scorers (whose reconstruction needs the modal bank).
    Opaque(Arc<dyn KgReasoner + Send + Sync>),
}

impl TrainedModel {
    /// Wrap into the unified serving protocol over `graph`.
    pub fn into_reasoner(
        self,
        graph: Arc<KnowledgeGraph>,
        serve: ServeConfig,
    ) -> Arc<dyn KgReasoner + Send + Sync> {
        let n_ent = graph.num_entities();
        let rs = graph.relations();
        match self.kind {
            TrainedModelKind::Mmkgr(model) => {
                Arc::new(PolicyReasoner::new(self.name, *model, graph, serve))
            }
            TrainedModelKind::Kge { model, .. } => {
                Arc::new(ScorerReasoner::new(self.name, model, n_ent, rs))
            }
            TrainedModelKind::Opaque(r) => r,
        }
    }
}

/// Train `choice` on an existing harness (shared dataset + substrates),
/// keeping the trained model separate from its serving wrapper so the
/// snapshot writer can encode it. `serve` is only consumed by the model
/// families that must wrap immediately (the non-snapshotable walkers).
pub fn train_model(h: &Harness, choice: ModelChoice, serve: ServeConfig) -> TrainedModel {
    let name = choice.name().to_string();
    let n_ent = h.kg.num_entities();
    let n_rel = h.relation_total();
    let dim = h.cfg.struct_dim;
    let kge_cfg = KgeTrainConfig::default()
        .with_epochs(h.cfg.kge_epochs)
        .with_seed(h.cfg.seed ^ 0xA11);
    let rs = h.kg.graph.relations();

    // Shapes the per-family `KgeSpec` (constructor args must mirror the
    // actual construction below and in `Harness::{transe,conve}`).
    let spec = |model: &'static str, seed: u64| KgeSpec {
        model,
        dim,
        seed,
        img: None,
    };
    let kge = |model: KgeModel, spec: KgeSpec| TrainedModel {
        name: name.clone(),
        kind: TrainedModelKind::Kge { model, spec },
    };

    match choice {
        ModelChoice::Mmkgr(v) => {
            let (trainer, _) = h.train_variant(v);
            TrainedModel {
                name,
                kind: TrainedModelKind::Mmkgr(Box::new(trainer.model)),
            }
        }
        ModelChoice::Minerva => {
            let (w, _) = h.train_minerva();
            TrainedModel {
                name: name.clone(),
                kind: TrainedModelKind::Opaque(Arc::new(PolicyReasoner::new(
                    name,
                    w,
                    h.graph_arc(),
                    serve,
                ))),
            }
        }
        ModelChoice::Rlh => {
            let (w, _) = h.train_rlh();
            TrainedModel {
                name: name.clone(),
                kind: TrainedModelKind::Opaque(Arc::new(PolicyReasoner::new(
                    name,
                    w,
                    h.graph_arc(),
                    serve,
                ))),
            }
        }
        ModelChoice::Fire => {
            let (w, _) = h.train_fire();
            TrainedModel {
                name: name.clone(),
                kind: TrainedModelKind::Opaque(Arc::new(PolicyReasoner::new(
                    name,
                    w,
                    h.graph_arc(),
                    serve,
                ))),
            }
        }
        ModelChoice::TransE => kge(KgeModel::TransE(h.transe()), spec("TransE", h.cfg.seed)),
        ModelChoice::ConvE => kge(
            KgeModel::ConvE(h.conve()),
            KgeSpec {
                model: "ConvE",
                dim,
                seed: h.cfg.seed ^ 0xC0,
                // Matches Harness::conve's 4×8 image plane, 6 channels.
                img: Some((4, 8, 6)),
            },
        ),
        ModelChoice::TransD => {
            let mut m = TransD::new(n_ent, n_rel, dim, kge_cfg.seed);
            m.train(&h.kg.split.train, &h.known, &kge_cfg);
            kge(KgeModel::TransD(m), spec("TransD", kge_cfg.seed))
        }
        ModelChoice::DistMult => {
            let mut m = DistMult::new(n_ent, n_rel, dim, kge_cfg.seed);
            m.train(&h.kg.split.train, &h.known, &kge_cfg);
            kge(KgeModel::DistMult(m), spec("DistMult", kge_cfg.seed))
        }
        ModelChoice::ComplEx => {
            let mut m = ComplEx::new(n_ent, n_rel, dim, kge_cfg.seed);
            m.train(&h.kg.split.train, &h.known, &kge_cfg);
            kge(KgeModel::ComplEx(m), spec("ComplEx", kge_cfg.seed))
        }
        ModelChoice::Rescal => {
            let mut m = Rescal::new(n_ent, n_rel, dim, kge_cfg.seed);
            m.train(&h.kg.split.train, &h.known, &kge_cfg);
            kge(KgeModel::Rescal(m), spec("RESCAL", kge_cfg.seed))
        }
        ModelChoice::Hole => {
            let mut m = Hole::new(n_ent, n_rel, dim, kge_cfg.seed);
            m.train(&h.kg.split.train, &h.known, &kge_cfg);
            kge(KgeModel::Hole(m), spec("HolE", kge_cfg.seed))
        }
        ModelChoice::Ikrl => {
            let mut m = Ikrl::new(n_ent, n_rel, &h.kg.modal, dim, kge_cfg.seed);
            m.train(&h.kg.split.train, &h.known, &kge_cfg);
            TrainedModel {
                name: name.clone(),
                kind: TrainedModelKind::Opaque(Arc::new(ScorerReasoner::new(name, m, n_ent, rs))),
            }
        }
        ModelChoice::TransAe => {
            let mut m = TransAe::new(n_ent, n_rel, &h.kg.modal, dim, kge_cfg.seed);
            m.train(&h.kg.split.train, &h.known, &kge_cfg);
            TrainedModel {
                name: name.clone(),
                kind: TrainedModelKind::Opaque(Arc::new(ScorerReasoner::new(name, m, n_ent, rs))),
            }
        }
        ModelChoice::Mtrl => TrainedModel {
            name: name.clone(),
            kind: TrainedModelKind::Opaque(Arc::new(ScorerReasoner::new(
                name,
                h.train_mtrl(),
                n_ent,
                rs,
            ))),
        },
        ModelChoice::Gaats => TrainedModel {
            name: name.clone(),
            kind: TrainedModelKind::Opaque(Arc::new(ScorerReasoner::new(
                name,
                h.train_gaats(),
                n_ent,
                rs,
            ))),
        },
        ModelChoice::NeuralLp => TrainedModel {
            name: name.clone(),
            kind: TrainedModelKind::Opaque(Arc::new(ScorerReasoner::new(
                name,
                h.train_neurallp(),
                n_ent,
                rs,
            ))),
        },
    }
}

/// Train `choice` and wrap it in the serving protocol. Used by
/// [`ReasonerBuilder`] and directly by experiment binaries that compare
/// many models on one dataset. Composition of [`train_model`] and
/// [`TrainedModel::into_reasoner`].
pub fn build_reasoner(
    h: &Harness,
    choice: ModelChoice,
    serve: ServeConfig,
) -> Arc<dyn KgReasoner + Send + Sync> {
    train_model(h, choice, serve).into_reasoner(h.graph_arc(), serve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_core::serve::{NamedQuery, Query, WorkerPool};

    fn quick_builder(choice: ModelChoice) -> ReasonerBuilder {
        ReasonerBuilder::new(Dataset::Wn9ImgTxt, ScaleChoice::Quick)
            .model(choice)
            .tune(|c| {
                c.rl_epochs = 2;
                c.kge_epochs = 2;
                c.max_eval = 10;
            })
    }

    #[test]
    fn builds_policy_reasoner_for_mmkgr() {
        let built = quick_builder(ModelChoice::Mmkgr(Variant::Full)).build();
        assert_eq!(built.reasoner.name(), "MMKGR");
        let t = built.harness.eval_triples[0];
        let a = built
            .reasoner
            .answer(&Query::new(t.s, t.r).with_beam(8).with_steps(3));
        assert!(!a.ranked.is_empty());
        assert!(
            a.ranked[0].evidence.is_some(),
            "path reasoner must attach evidence"
        );
    }

    #[test]
    fn builds_scorer_reasoner_for_conve() {
        let built = quick_builder(ModelChoice::ConvE).build();
        assert_eq!(built.reasoner.name(), "ConvE");
        let t = built.harness.eval_triples[0];
        let a = built.reasoner.answer(&Query::new(t.s, t.r).with_top_k(0));
        assert_eq!(a.ranked.len(), built.harness.kg.num_entities());
    }

    #[test]
    fn one_harness_serves_both_families() {
        let built = quick_builder(ModelChoice::Mmkgr(Variant::Full)).build();
        let conve = build_reasoner(&built.harness, ModelChoice::ConvE, ServeConfig::default());
        let t = built.harness.eval_triples[0];
        let q = Query::new(t.s, t.r).with_beam(8).with_steps(3);
        let from_policy = built.reasoner.answer(&q);
        let from_scorer = conve.answer(&q);
        assert!(!from_policy.ranked.is_empty());
        assert!(!from_scorer.ranked.is_empty());
        // Same protocol, different evidence contract.
        assert!(from_policy.ranked[0].evidence.is_some());
        assert!(from_scorer.ranked[0].evidence.is_none());
        // Batch serving works over the trait object.
        let pool = WorkerPool::new(Arc::clone(&built.reasoner), 2);
        let answers = pool.answer_batch(&[q, q]);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0], answers[1]);
    }

    #[test]
    fn model_choice_parses_every_family() {
        assert_eq!(
            ModelChoice::parse("mmkgr").unwrap(),
            ModelChoice::Mmkgr(Variant::Full)
        );
        assert_eq!(
            ModelChoice::parse("OSKGR").unwrap(),
            ModelChoice::Mmkgr(Variant::Oskgr)
        );
        assert_eq!(ModelChoice::parse("ConvE").unwrap(), ModelChoice::ConvE);
        assert_eq!(ModelChoice::parse("minerva").unwrap(), ModelChoice::Minerva);
        assert!(ModelChoice::parse("gpt4").is_err());
        // parse() inverts name() for every non-variant family.
        for choice in [
            ModelChoice::Minerva,
            ModelChoice::Rlh,
            ModelChoice::Fire,
            ModelChoice::TransE,
            ModelChoice::TransD,
            ModelChoice::DistMult,
            ModelChoice::ComplEx,
            ModelChoice::Rescal,
            ModelChoice::Hole,
            ModelChoice::ConvE,
            ModelChoice::Ikrl,
            ModelChoice::TransAe,
            ModelChoice::Mtrl,
            ModelChoice::Gaats,
            ModelChoice::NeuralLp,
        ] {
            assert_eq!(ModelChoice::parse(choice.name()).unwrap(), choice);
        }
    }

    #[test]
    fn registry_hosts_two_models_over_one_harness() {
        let built = quick_builder(ModelChoice::Mmkgr(Variant::Full)).build();
        let registry = build_registry(
            &built.harness,
            &[ModelChoice::Mmkgr(Variant::Full), ModelChoice::ConvE],
            ServeConfig::default(),
        );
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.default_model(), Some("MMKGR"));
        let t = built.harness.eval_triples[0];
        // Name-based answers agree with the in-process reasoner.
        let wire = registry
            .answer_named(
                NamedQuery::new(format!("e{}", t.s.0), format!("r{}", t.r.0))
                    .with_top_k(5)
                    .with_beam(8)
                    .with_steps(3),
            )
            .unwrap();
        let direct = built.reasoner.answer(
            &Query::new(t.s, t.r)
                .with_top_k(5)
                .with_beam(8)
                .with_steps(3),
        );
        assert_eq!(wire.ranked.len(), direct.ranked.len());
        for (w, d) in wire.ranked.iter().zip(&direct.ranked) {
            assert_eq!(w.entity, format!("e{}", d.entity.0));
            assert!((w.score - d.score).abs() < 1e-6);
        }
        // The second model answers under its own name.
        let conve = registry
            .answer(&mmkgr_core::serve::AnswerRequest {
                model: Some("ConvE".to_string()),
                query: NamedQuery::new(format!("e{}", t.s.0), format!("r{}", t.r.0)),
            })
            .unwrap();
        assert_eq!(conve.model, "ConvE");
        assert!(!conve.ranked.is_empty());
    }
}
