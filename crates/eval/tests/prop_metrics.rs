//! Property-based tests for the ranking metrics — the invariants every
//! evaluation number in EXPERIMENTS.md rests on.

use mmkgr_eval::{filtered_rank, filtered_rank_with, FewShotSplit, RankAccum, TieBreak};
use mmkgr_kg::Triple;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank is 1-based and never exceeds the unfiltered candidate count.
    #[test]
    fn rank_bounds(
        scores in proptest::collection::vec(-10.0f32..10.0, 2..40),
        gold_seed in any::<usize>(),
    ) {
        let gold = gold_seed % scores.len();
        let filtered = vec![false; scores.len()];
        let r = filtered_rank(&scores, gold, &filtered);
        prop_assert!(r >= 1);
        prop_assert!(r <= scores.len());
    }

    /// Permutation invariance: shuffling the candidates (tracking gold)
    /// leaves the rank unchanged.
    #[test]
    fn rank_is_permutation_invariant(
        scores in proptest::collection::vec(-10.0f32..10.0, 2..30),
        gold_seed in any::<usize>(),
        rot in 1usize..29,
    ) {
        let n = scores.len();
        let gold = gold_seed % n;
        let filtered = vec![false; n];
        let base = filtered_rank(&scores, gold, &filtered);
        // rotate by `rot`
        let rot = rot % n;
        let rotated: Vec<f32> =
            (0..n).map(|i| scores[(i + rot) % n]).collect();
        let new_gold = (gold + n - rot) % n;
        let r = filtered_rank(&rotated, new_gold, &filtered);
        prop_assert_eq!(base, r);
    }

    /// Raising the gold score never worsens the rank (monotonicity).
    #[test]
    fn rank_monotone_in_gold_score(
        scores in proptest::collection::vec(-10.0f32..10.0, 2..30),
        gold_seed in any::<usize>(),
        boost in 0.0f32..5.0,
    ) {
        let gold = gold_seed % scores.len();
        let filtered = vec![false; scores.len()];
        let before = filtered_rank(&scores, gold, &filtered);
        let mut boosted = scores.clone();
        boosted[gold] += boost;
        let after = filtered_rank(&boosted, gold, &filtered);
        prop_assert!(after <= before);
    }

    /// Filtering a competitor never worsens the rank.
    #[test]
    fn filtering_never_hurts(
        scores in proptest::collection::vec(-10.0f32..10.0, 3..30),
        gold_seed in any::<usize>(),
        victim_seed in any::<usize>(),
    ) {
        let n = scores.len();
        let gold = gold_seed % n;
        let mut victim = victim_seed % n;
        if victim == gold {
            victim = (victim + 1) % n;
        }
        let none = vec![false; n];
        let mut one = none.clone();
        one[victim] = true;
        let before = filtered_rank(&scores, gold, &none);
        let after = filtered_rank(&scores, gold, &one);
        prop_assert!(after <= before);
    }

    /// The three tie policies always bracket each other:
    /// optimistic ≤ expected ≤ pessimistic.
    #[test]
    fn tie_policies_are_ordered(
        scores in proptest::collection::vec(-2.0f32..2.0, 2..30),
        gold_seed in any::<usize>(),
    ) {
        let gold = gold_seed % scores.len();
        // quantize to force ties
        let q: Vec<f32> = scores.iter().map(|v| (v * 2.0).round() / 2.0).collect();
        let f = vec![false; q.len()];
        let opt = filtered_rank_with(&q, gold, &f, TieBreak::Optimistic);
        let exp = filtered_rank_with(&q, gold, &f, TieBreak::Expected);
        let pes = filtered_rank_with(&q, gold, &f, TieBreak::Pessimistic);
        prop_assert!(opt <= exp && exp <= pes, "{opt} {exp} {pes}");
    }

    /// MRR is invariant under push order and merge splits.
    #[test]
    fn accum_merge_is_order_free(ranks in proptest::collection::vec(1usize..100, 1..40), cut_seed in any::<usize>()) {
        let cut = 1 + cut_seed % ranks.len();
        let mut all = RankAccum::default();
        for &r in &ranks {
            all.push(r);
        }
        let (a, b) = ranks.split_at(cut.min(ranks.len()));
        let mut left = RankAccum::default();
        for &r in a { left.push(r); }
        let mut right = RankAccum::default();
        for &r in b { right.push(r); }
        let mut merged = RankAccum::default();
        merged.merge(&right);
        merged.merge(&left);
        prop_assert!((all.mrr() - merged.mrr()).abs() < 1e-12);
        prop_assert_eq!(all.len(), merged.len());
    }

    /// Few-shot buckets always partition the test set, whatever the
    /// boundaries and frequency profile.
    #[test]
    fn fewshot_partition_is_exhaustive(
        train_rels in proptest::collection::vec(0u32..8, 0..60),
        test_rels in proptest::collection::vec(0u32..8, 1..40),
        b1 in 1usize..5,
        extra in 1usize..10,
    ) {
        let train: Vec<Triple> =
            train_rels.iter().map(|&r| Triple::new(0, r, 1)).collect();
        let test: Vec<Triple> =
            test_rels.iter().map(|&r| Triple::new(2, r, 3)).collect();
        let split = FewShotSplit::new(&train, &test, &[b1, b1 + extra]);
        let total: usize =
            (0..split.num_buckets()).map(|i| split.triples(i).len()).sum();
        prop_assert_eq!(total, test.len());
        let meta_total: usize = split.buckets.iter().map(|b| b.triples).sum();
        prop_assert_eq!(meta_total, test.len());
    }
}
