//! `mmkgr-tensor` — dense `f32` matrices and tape-based reverse-mode
//! automatic differentiation.
//!
//! This crate is the deep-learning substrate for the MMKGR reproduction
//! (ICDE 2023). The paper's stack assumes a Python autograd framework; per
//! the reproduction's substitution policy we build the equivalent from
//! scratch: a [`Matrix`] storage type with cache-friendly kernels and a
//! dynamic [`Tape`] that records ops eagerly and differentiates in reverse.
//!
//! # Quick example
//!
//! ```
//! use mmkgr_tensor::{Matrix, Tape};
//!
//! let tape = Tape::new();
//! let w = tape.input(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
//! let x = tape.input(Matrix::from_vec(1, 2, vec![3.0, -1.0]));
//! let y = tape.matmul(x, w);
//! let h = tape.relu(y);
//! let loss = tape.sum(h);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(x).unwrap().as_slice(), &[1.0, 0.0]);
//! ```

pub mod init;
pub mod matrix;
pub mod tape;

pub use matrix::{softmax_slice, Matrix};
pub use tape::{Grads, Tape, Var};
