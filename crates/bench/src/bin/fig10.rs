//! Figure 10 — Hits@1 of MMKGR as a function of training epochs E and
//! batch size N. The paper sweeps E ∈ {10..110} × N ∈ {16..512}; the grid
//! shrinks with `--scale` so the experiment stays tractable on one core
//! (the full grid is available with `--scale full`).
//!
//! Expected shape: rise-then-plateau/decline in E (under-training vs
//! over-fitting) with an interior optimum in N.

use mmkgr_bench::Stopwatch;
use mmkgr_eval::{pct, save_json, Dataset, Harness, HarnessConfig, ScaleChoice, Table};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let (epochs_grid, batch_grid): (Vec<usize>, Vec<usize>) = match scale {
        ScaleChoice::Quick => (vec![3, 6], vec![32, 128]),
        ScaleChoice::Standard => (vec![5, 15, 30], vec![32, 128, 512]),
        ScaleChoice::Full => (
            vec![10, 30, 50, 70, 90, 110],
            vec![16, 32, 64, 128, 256, 512],
        ),
    };
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{}", h.kg.stats());
        let mut headers: Vec<String> = vec!["N \\ E".into()];
        headers.extend(epochs_grid.iter().map(|e| format!("E={e}")));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!(
                "Fig. 10 — Hits@1 vs epochs and batch size on {}",
                dataset.name()
            ),
            &header_refs,
        );
        for &n in &batch_grid {
            let mut cells = vec![format!("N={n}")];
            for &e in &epochs_grid {
                let (trainer, _) = h.train_mmkgr_with(
                    |c| {
                        c.epochs = e;
                        c.batch_size = n;
                    },
                    0,
                );
                let r = h.eval_policy(&trainer.model);
                sw.lap(&format!("E={e} N={n}"));
                cells.push(pct(r.hits1));
                dump.push((dataset.name().to_string(), e, n, r.hits1));
            }
            table.push_row(cells);
        }
        table.print();
    }
    save_json("fig10", &dump);
}
