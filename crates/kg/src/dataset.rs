//! A complete multi-modal KG dataset: graph + modality banks + splits.

use serde::{Deserialize, Serialize};

use crate::graph::KnowledgeGraph;
use crate::modal::ModalBank;
use crate::triple::{Triple, TripleSet};

/// Train/valid/test triple split.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Split {
    pub train: Vec<Triple>,
    pub valid: Vec<Triple>,
    pub test: Vec<Triple>,
}

impl Split {
    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

/// A multi-modal knowledge graph (Definition 1 of the paper): structural
/// triples plus per-entity image/text auxiliary data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiModalKG {
    pub name: String,
    /// Adjacency built from the *training* triples only (the standard
    /// protocol: valid/test edges must not leak into the walker's graph).
    pub graph: KnowledgeGraph,
    pub modal: ModalBank,
    pub split: Split,
}

impl MultiModalKG {
    pub fn new(
        name: impl Into<String>,
        graph: KnowledgeGraph,
        modal: ModalBank,
        split: Split,
    ) -> Self {
        assert_eq!(
            modal.num_entities(),
            graph.num_entities(),
            "modal bank and graph must agree on entity count"
        );
        MultiModalKG {
            name: name.into(),
            graph,
            modal,
            split,
        }
    }

    pub fn num_entities(&self) -> usize {
        self.graph.num_entities()
    }

    pub fn num_base_relations(&self) -> usize {
        self.graph.relations().base()
    }

    /// Membership set over *all* known triples (train ∪ valid ∪ test) —
    /// the filter used by filtered ranking metrics.
    pub fn all_known(&self) -> TripleSet {
        let mut set = TripleSet::from_triples(&self.split.train);
        for t in self.split.valid.iter().chain(&self.split.test) {
            set.insert(*t);
        }
        set
    }

    /// Dataset statistics in the shape of the paper's Table II.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            entities: self.num_entities(),
            relations: self.num_base_relations(),
            train: self.split.train.len(),
            valid: self.split.valid.len(),
            test: self.split.test.len(),
            mean_out_degree: self.graph.mean_out_degree(),
            images: self.modal.total_images(),
        }
    }
}

/// Summary row for Table II-style reporting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetStats {
    pub name: String,
    pub entities: usize,
    pub relations: usize,
    pub train: usize,
    pub valid: usize,
    pub test: usize,
    pub mean_out_degree: f64,
    pub images: usize,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} #Ent {:<7} #Rel {:<6} #Train {:<8} #Valid {:<7} #Test {:<7} deg {:.1}",
            self.name,
            self.entities,
            self.relations,
            self.train,
            self.valid,
            self.test,
            self.mean_out_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modal::ModalBank;

    fn tiny() -> MultiModalKG {
        let train = vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)];
        let valid = vec![Triple::new(0, 0, 2)];
        let test = vec![Triple::new(2, 0, 0)];
        let graph = KnowledgeGraph::from_triples(3, 1, train.clone(), None);
        let modal = ModalBank::empty(3);
        MultiModalKG::new("tiny", graph, modal, Split { train, valid, test })
    }

    #[test]
    fn all_known_includes_every_split() {
        let kg = tiny();
        let known = kg.all_known();
        assert_eq!(known.len(), 4);
        assert!(known.contains_triple(&Triple::new(2, 0, 0)));
    }

    #[test]
    fn stats_reflect_split_sizes() {
        let kg = tiny();
        let s = kg.stats();
        assert_eq!(s.train, 2);
        assert_eq!(s.valid, 1);
        assert_eq!(s.test, 1);
        assert_eq!(s.entities, 3);
        assert!(s.to_string().contains("tiny"));
    }

    #[test]
    #[should_panic(expected = "agree on entity count")]
    fn modal_bank_size_checked() {
        let graph = KnowledgeGraph::from_triples(3, 1, vec![Triple::new(0, 0, 1)], None);
        let _ = MultiModalKG::new("bad", graph, ModalBank::empty(2), Split::default());
    }
}
