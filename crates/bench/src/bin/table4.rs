//! Table IV — relation link prediction MAP (per relation + overall).
//!
//! Each test triple becomes a `(e_s, ?, e_d)` query; models rank the true
//! relation among candidate relations. Policy models score a relation by
//! the best beam probability of reaching `e_d` under it; scorer models by
//! `score(e_s, r, e_d)`.

use mmkgr_bench::Stopwatch;
use mmkgr_core::Variant;
use mmkgr_eval::{pct, save_json, Dataset, Harness, HarnessConfig, ScaleChoice, Table};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{}", h.kg.stats());

        let mtrl = h.train_mtrl();
        let map_mtrl = h.relation_map_scorer(&mtrl);
        sw.lap("MTRL");
        let nlp = h.train_neurallp();
        let map_nlp = h.relation_map_scorer(&nlp);
        sw.lap("NeuralLP");
        let (minerva, _) = h.train_minerva();
        let map_minerva = h.relation_map_policy(&minerva);
        sw.lap("MINERVA");
        let (fire, _) = h.train_fire();
        let map_fire = h.relation_map_policy(&fire);
        sw.lap("FIRE");
        let gaats = h.train_gaats();
        let map_gaats = h.relation_map_scorer(&gaats);
        sw.lap("GAATs");
        let (rlh, _) = h.train_rlh();
        let map_rlh = h.relation_map_policy(&rlh);
        sw.lap("RLH");
        let (mmkgr, _) = h.train_variant(Variant::Full);
        let map_mmkgr = h.relation_map_policy(&mmkgr.model);
        sw.lap("MMKGR");

        let models = [
            ("MTRL", &map_mtrl),
            ("NeuralLP", &map_nlp),
            ("MINERVA", &map_minerva),
            ("FIRE", &map_fire),
            ("GAATs", &map_gaats),
            ("RLH", &map_rlh),
            ("MMKGR", &map_mmkgr),
        ];
        let mut headers: Vec<&str> = vec!["Task"];
        headers.extend(models.iter().map(|(n, _)| *n));
        let mut table = Table::new(
            format!(
                "Table IV — relation link prediction MAP on {}",
                dataset.name()
            ),
            &headers,
        );
        // Top per-relation rows (up to 3 most frequent, like the paper's
        // excerpt), then Overall.
        let mut by_count = map_mmkgr.per_relation.clone();
        by_count.sort_by_key(|&(_, _, n)| std::cmp::Reverse(n));
        for &(rel, _, _) in by_count.iter().take(3) {
            let mut cells = vec![format!("relation {}", rel.0)];
            for (_, m) in &models {
                let v = m
                    .per_relation
                    .iter()
                    .find(|&&(r, _, _)| r == rel)
                    .map(|&(_, map, _)| map)
                    .unwrap_or(0.0);
                cells.push(pct(v));
            }
            table.push_row(cells);
        }
        let mut cells = vec!["Overall".to_string()];
        for (_, m) in &models {
            cells.push(pct(m.overall));
        }
        table.push_row(cells);
        table.print();
        dump.push((
            dataset.name().to_string(),
            models
                .iter()
                .map(|(n, m)| (n.to_string(), m.overall))
                .collect::<Vec<_>>(),
        ));
    }
    save_json("table4", &dump);
}
