//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, against the vendored value-tree
//! `serde`:
//!
//! - structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(default = "path")]` per field)
//! - tuple structs (1-field newtypes serialize transparently; wider ones
//!   as arrays)
//! - unit structs (serialize as `null`)
//! - enums whose variants are all unit variants (serialize as the
//!   variant-name string)
//!
//! No `syn`/`quote` (unavailable offline): the input item is parsed
//! directly from the `proc_macro` token stream, and the generated impl is
//! assembled as a string and re-parsed. Generic types are unsupported and
//! produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Copy, Clone, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named fields with their `#[serde(default)]` handling.
    Struct(Vec<(String, FieldDefault)>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

/// How a missing field deserializes.
#[derive(Clone, PartialEq)]
enum FieldDefault {
    /// Required: missing field is an error.
    None,
    /// `#[serde(default)]`: `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields (1 = newtype).
    Tuple(usize),
    /// Struct variant with per-field `#[serde(default)]` handling.
    Struct(Vec<(String, FieldDefault)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => render(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Parse `[attrs] [vis] (struct|enum) Name { ... }` from the derive input.
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut toks = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;

    while let Some(tok) = toks.next() {
        match &tok {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Skip optional `(crate)` / `(super)` restriction.
                        if let Some(TokenTree::Group(g)) = toks.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                toks.next();
                            }
                        }
                    }
                    "struct" | "enum" => kind = Some(s),
                    _ if kind.is_some() && name.is_none() => {
                        name = Some(s);
                        break;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    let kind = kind.ok_or("serde derive: expected struct or enum")?;
    let name = name.ok_or("serde derive: missing item name")?;

    // Generics are unsupported; detect `<` right after the name.
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde derive does not support generic type `{name}`"
            ));
        }
    }

    let body = toks.find_map(|t| match t {
        TokenTree::Group(g)
            if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
        {
            Some(g)
        }
        TokenTree::Punct(p) if p.as_char() == ';' => None,
        _ => None,
    });

    let shape = match (kind.as_str(), body) {
        ("struct", None) => Shape::Unit,
        ("struct", Some(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", Some(g)) => Shape::Struct(parse_named_fields(g.stream())?),
        ("enum", Some(g)) => Shape::Enum(parse_variants(g.stream(), &name)?),
        ("enum", None) => return Err(format!("enum `{name}` has no body")),
        _ => unreachable!(),
    };
    Ok((name, shape))
}

/// Count comma-separated fields at angle-bracket depth 0.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => fields += 1,
                _ => saw_any = true,
            },
            _ => saw_any = true,
        }
    }
    if saw_any {
        fields + 1
    } else {
        fields
    }
}

/// Parse `attr* vis? name : type` field declarations, recording each
/// field's `#[serde(default)]` / `#[serde(default = "path")]` handling.
fn parse_named_fields(body: TokenStream) -> Result<Vec<(String, FieldDefault)>, String> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Collect attributes in front of the field.
        let mut default = FieldDefault::None;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        let attr = g.stream().to_string();
                        // matches `serde(default)`, `serde(default, ...)`,
                        // and `serde(default = "module::path")`
                        if attr.starts_with("serde") && attr.contains("default") {
                            default = match attr.split('"').nth(1) {
                                Some(path) => FieldDefault::Path(path.split_whitespace().collect()),
                                None => FieldDefault::Std,
                            };
                        }
                    }
                }
                _ => break,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.peek() {
            if id.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
        }
        // Field name (or end of stream).
        let fname = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{fname}`, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle depth 0.
        let mut depth = 0i32;
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push((fname, default));
    }
    Ok(fields)
}

/// Parse enum variants: unit, tuple (newtype), or struct variants.
fn parse_variants(body: TokenStream, enum_name: &str) -> Result<Vec<Variant>, String> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    while let Some(tok) = toks.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next(); // skip attribute group (e.g. #[default], doc)
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                let v = id.to_string();
                let kind = match toks.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        toks.next();
                        VariantKind::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        toks.next();
                        VariantKind::Struct(fields)
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        return Err(format!(
                            "vendored serde derive does not support discriminants \
                             (`{enum_name}::{v}`)"
                        ));
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name: v, kind });
            }
            other => return Err(format!("unexpected token in enum body: {other}")),
        }
    }
    Ok(variants)
}

fn render(name: &str, shape: &Shape, mode: Mode) -> String {
    match mode {
        Mode::Serialize => render_serialize(name, shape),
        Mode::Deserialize => render_deserialize(name, shape),
    }
}

fn render_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Tuple(1) => "serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|(f, _)| {
                    format!("({f:?}.to_string(), serde::Serialize::serialize_value(&self.{f}))")
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => serde::Value::Str({vn:?}.to_string())")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => serde::Value::Object(vec![\
                                 ({vn:?}.to_string(), serde::Serialize::serialize_value(x0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::serialize_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => serde::Value::Object(vec![\
                                     ({vn:?}.to_string(), serde::Value::Array(vec![{items}]))])",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|(f, _)| f.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|(f, _)| {
                                    format!(
                                        "({f:?}.to_string(), \
                                         serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![\
                                     ({vn:?}.to_string(), \
                                      serde::Value::Object(vec![{items}]))])",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Deserialization initializer for one named field, reading out of the
/// object expression `src` (e.g. `v` or `payload`).
fn field_init(f: &str, default: &FieldDefault, src: &str) -> String {
    let fallback = match default {
        FieldDefault::None => None,
        FieldDefault::Std => Some("Default::default()".to_string()),
        FieldDefault::Path(path) => Some(format!("{path}()")),
    };
    match fallback {
        Some(fallback) => format!(
            "{f}: match {src}.get_field({f:?}) {{\n\
                 Some(fv) => serde::Deserialize::deserialize_value(fv)\
                     .map_err(|e| e.in_context({f:?}))?,\n\
                 None => {fallback},\n\
             }}"
        ),
        None => format!(
            "{f}: serde::Deserialize::deserialize_value(\n\
                 {src}.get_field({f:?}).ok_or_else(|| \
                     serde::DeError::new(concat!(\"missing field `\", {f:?}, \"`\")))?\n\
             ).map_err(|e| e.in_context({f:?}))?"
        ),
    }
}

fn render_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::Tuple(1) => format!("Ok({name}(serde::Deserialize::deserialize_value(v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize_value(&items[{i}])"))
                .map(|e| format!("{e}?"))
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::Array(items) if items.len() == {n} => \
                         Ok({name}({items})),\n\
                     other => Err(serde::DeError::expected(\"{n}-element array\", other)),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|(f, default)| field_init(f, default, "v"))
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::Object(_) => Ok({name} {{ {inits} }}),\n\
                     other => Err(serde::DeError::expected(\"object\", other)),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{})", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(\
                                 serde::Deserialize::deserialize_value(payload)\
                                     .map_err(|e| e.in_context({vn:?}))?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("serde::Deserialize::deserialize_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => match payload {{\n\
                                     serde::Value::Array(items) if items.len() == {n} => \
                                         Ok({name}::{vn}({items})),\n\
                                     other => Err(serde::DeError::expected(\
                                         \"{n}-element array\", other)),\n\
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|(f, default)| field_init(f, default, "payload"))
                                .collect();
                            Some(format!(
                                "{vn:?} => Ok({name}::{vn} {{ {inits} }})",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let str_match = if unit_arms.is_empty() {
                "serde::Value::Str(s) => Err(serde::DeError::new(format!(\
                     \"unknown {name} variant `{s}`\")))"
                    .replace("{name}", name)
            } else {
                format!(
                    "serde::Value::Str(s) => match s.as_str() {{\n\
                         {arms},\n\
                         other => Err(serde::DeError::new(format!(\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }}",
                    arms = unit_arms.join(",\n")
                )
            };
            let obj_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {arms},\n\
                             other => Err(serde::DeError::new(format!(\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }},",
                    arms = tagged_arms.join(",\n")
                )
            };
            format!(
                "match v {{\n\
                     {str_match},\n\
                     {obj_match}\n\
                     other => Err(serde::DeError::expected(\"{name} variant\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
}
