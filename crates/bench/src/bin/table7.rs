//! Table VII — what happens when *naive* multi-modal fusion (Attention /
//! Concatenation) is bolted onto existing multi-hop methods (FB-IMG-TXT).
//!
//! RL walkers (MINERVA, FIRE, RLH) get the [`FusedWalker`] treatment
//! (early fusion into state/action representations); non-RL models
//! (GAATs, NeuralLP) get [`ModalLateFusion`]. Reported: % change of
//! accumulated rewards (RL only) and of Hits@1 versus the unfused model.

use mmkgr_baselines::{ModalLateFusion, NaiveFusion};
use mmkgr_bench::Stopwatch;
use mmkgr_eval::{pct_delta, save_json, Dataset, Harness, HarnessConfig, ScaleChoice, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    fusion: String,
    delta_reward: Option<f64>,
    delta_hits1: f64,
}

fn rel_change(before: f64, after: f64) -> f64 {
    if before.abs() < 1e-9 {
        0.0
    } else {
        (after - before) / before
    }
}

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let h = Harness::new(HarnessConfig::new(Dataset::FbImgTxt, scale));
    println!("{}", h.kg.stats());

    let mut rows: Vec<Row> = Vec::new();

    // ---- RL walkers: plain vs fused (early fusion) ----------------------
    let (minerva, minerva_trace) = h.train_minerva();
    let minerva_h1 = h.eval_policy(&minerva).hits1;
    let minerva_r = *minerva_trace.last().unwrap_or(&0.0) as f64;
    sw.lap("MINERVA plain");
    let (fire, fire_trace) = h.train_fire();
    let fire_h1 = h.eval_policy(&fire).hits1;
    let fire_r = *fire_trace.last().unwrap_or(&0.0) as f64;
    sw.lap("FIRE plain");
    let (rlh, rlh_trace) = h.train_rlh();
    let rlh_h1 = h.eval_policy(&rlh).hits1;
    let rlh_r = *rlh_trace.last().unwrap_or(&0.0) as f64;
    sw.lap("RLH plain");

    for fusion in [NaiveFusion::Attention, NaiveFusion::Concatenation] {
        for (name, base_h1, base_r) in [
            ("MINERVA", minerva_h1, minerva_r),
            ("FIRE", fire_h1, fire_r),
            ("RLH", rlh_h1, rlh_r),
        ] {
            let (fused, trace) = h.train_fused(fusion);
            let fused_h1 = h.eval_policy(&fused).hits1;
            let fused_r = *trace.last().unwrap_or(&0.0) as f64;
            sw.lap(&format!("{name}+{}", fusion.name()));
            rows.push(Row {
                model: name.into(),
                fusion: fusion.name().into(),
                delta_reward: Some(rel_change(base_r, fused_r)),
                delta_hits1: rel_change(base_h1, fused_h1),
            });
        }
    }

    // ---- non-RL baselines: plain vs late fusion --------------------------
    let gaats = h.train_gaats();
    let gaats_h1 = h.eval_scorer(&gaats).hits1;
    sw.lap("GAATs plain");
    let nlp = h.train_neurallp();
    let nlp_h1 = h.eval_scorer(&nlp).hits1;
    sw.lap("NeuralLP plain");
    for fusion in [NaiveFusion::Attention, NaiveFusion::Concatenation] {
        let weight = match fusion {
            NaiveFusion::Attention => 0.3,
            NaiveFusion::Concatenation => 0.6,
        };
        let fused_gaats = ModalLateFusion::new(h.train_gaats(), &h.kg, fusion, weight);
        let g_h1 = h.eval_scorer(&fused_gaats).hits1;
        rows.push(Row {
            model: "GAATs".into(),
            fusion: fusion.name().into(),
            delta_reward: None,
            delta_hits1: rel_change(gaats_h1, g_h1),
        });
        let fused_nlp = ModalLateFusion::new(h.train_neurallp(), &h.kg, fusion, weight);
        let n_h1 = h.eval_scorer(&fused_nlp).hits1;
        rows.push(Row {
            model: "NeuralLP".into(),
            fusion: fusion.name().into(),
            delta_reward: None,
            delta_hits1: rel_change(nlp_h1, n_h1),
        });
        sw.lap(&format!("late fusion {}", fusion.name()));
    }

    let mut table = Table::new(
        "Table VII — naive fusion on existing multi-hop models (FB-IMG-TXT)",
        &[
            "Model",
            "Attn ΔRewards",
            "Attn ΔHits@1",
            "Concat ΔRewards",
            "Concat ΔHits@1",
        ],
    );
    for model in ["GAATs", "NeuralLP", "MINERVA", "FIRE", "RLH"] {
        let get = |fusion: &str| rows.iter().find(|r| r.model == model && r.fusion == fusion);
        let a = get("Attention");
        let c = get("Concatenation");
        let fmt_r = |r: Option<&Row>| {
            r.and_then(|r| r.delta_reward)
                .map(pct_delta)
                .unwrap_or_else(|| "—".into())
        };
        let fmt_h = |r: Option<&Row>| {
            r.map(|r| pct_delta(r.delta_hits1))
                .unwrap_or_else(|| "—".into())
        };
        table.push_row(vec![
            model.to_string(),
            fmt_r(a),
            fmt_h(a),
            fmt_r(c),
            fmt_h(c),
        ]);
    }
    table.print();
    save_json("table7", &rows);
}
