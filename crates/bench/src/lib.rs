//! Shared helpers for the experiment binaries (`src/bin/table*.rs`,
//! `src/bin/fig*.rs`) and the Criterion micro-benches.

use mmkgr_eval::{pct, LinkPredictionResult};
use serde::Serialize;

/// A serializable result row used by most tables.
#[derive(Clone, Debug, Serialize)]
pub struct ModelRow {
    pub model: String,
    pub mrr: f64,
    pub hits1: f64,
    pub hits5: f64,
    pub hits10: f64,
    pub queries: usize,
}

impl ModelRow {
    pub fn new(model: impl Into<String>, r: &LinkPredictionResult) -> Self {
        ModelRow {
            model: model.into(),
            mrr: r.mrr,
            hits1: r.hits1,
            hits5: r.hits5,
            hits10: r.hits10,
            queries: r.queries,
        }
    }

    /// Cells in the paper's column order (MRR, Hits@1, Hits@5, Hits@10).
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.model.clone(),
            pct(self.mrr),
            pct(self.hits1),
            pct(self.hits5),
            pct(self.hits10),
        ]
    }
}

/// Print a labelled numeric series (figure data as text).
pub fn print_series(label: &str, xs: &[(String, f64)]) {
    print!("{label}: ");
    for (k, v) in xs {
        print!("{k}={v:.3} ");
    }
    println!();
}

/// Provenance stamp for persisted bench sections: which machine and
/// commit produced the numbers. Benchmarks are only comparable within a
/// machine, and "which build was this" is the first question any perf
/// regression hunt asks — so every `BENCH_*.json` section carries one.
#[derive(Clone, Debug, Serialize)]
pub struct RunStamp {
    pub machine: String,
    pub commit: String,
}

impl RunStamp {
    /// Best-effort capture: hostname (or `unknown`) plus the short git
    /// HEAD (or `unknown` outside a work tree).
    pub fn capture() -> Self {
        let machine = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_string())
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| std::env::var("HOSTNAME").ok())
            .unwrap_or_else(|| "unknown".to_string());
        let commit = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        RunStamp { machine, commit }
    }
}

/// Merge `section` into the top-level JSON object at `path` (created if
/// missing), replacing any previous value under `key`. The shared
/// persistence idiom of `bench_serve`/`bench_http`/`bench_store`: each
/// binary owns one key of `BENCH_serve.json` and leaves the rest alone.
pub fn merge_bench_section(path: &str, key: &str, section: serde::Value) {
    use serde::Value;
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str_value(&text) {
            Ok(Value::Object(entries)) => entries,
            _ => panic!("{path} is not a JSON object"),
        },
        Err(_) => Vec::new(),
    };
    root.retain(|(k, _)| k != key);
    root.push((key.to_string(), section));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("serialize");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[saved {path}] {key} section updated");
}

/// Wall-clock stamp helper for experiment logs.
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    pub fn lap(&self, what: &str) {
        eprintln!("[{:>8.1?}] {what}", self.0.elapsed());
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Shared driver for the Fig. 6/7 hop-proportion experiment.
pub fn run_hops_figure(dataset: mmkgr_eval::Dataset, scale: mmkgr_eval::ScaleChoice, fig: &str) {
    use mmkgr_core::Variant;
    use mmkgr_eval::{save_json, Harness, HarnessConfig, Table};

    let sw = Stopwatch::start();
    let h = Harness::new(HarnessConfig::new(dataset, scale));
    println!("{}", h.kg.stats());
    let mut table = Table::new(
        format!(
            "{fig} — successful inferences by path length on {}",
            dataset.name()
        ),
        &[
            "Model",
            "≤1 hop",
            "2 hops",
            "3 hops",
            "4+ hops",
            "successes",
        ],
    );
    let mut dump = Vec::new();
    for v in [Variant::Full, Variant::Dvkgr, Variant::Oskgr] {
        let (trainer, _) = h.train_variant(v);
        let r = h.eval_policy(&trainer.model);
        sw.lap(v.name());
        let total: usize = r.hop_counts.iter().sum();
        let frac = |hops: usize| {
            if total == 0 {
                0.0
            } else {
                r.hop_counts[hops] as f64 / total as f64
            }
        };
        table.push_row(vec![
            v.name().to_string(),
            format!("{:.1}%", (frac(0) + frac(1)) * 100.0),
            format!("{:.1}%", frac(2) * 100.0),
            format!("{:.1}%", frac(3) * 100.0),
            format!("{:.1}%", frac(4) * 100.0),
            total.to_string(),
        ]);
        dump.push((v.name().to_string(), r.hop_counts, total));
    }
    table.print();
    save_json(fig, &dump);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_row_cells_formatting() {
        let r = LinkPredictionResult {
            mrr: 0.802,
            hits1: 0.736,
            hits5: 0.878,
            hits10: 0.928,
            queries: 100,
            hop_counts: [0; 5],
        };
        let row = ModelRow::new("MMKGR", &r);
        assert_eq!(row.cells(), vec!["MMKGR", "80.2", "73.6", "87.8", "92.8"]);
    }
}
