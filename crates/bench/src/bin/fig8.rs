//! Figure 8 — Hits@1 versus the maximum reasoning step T for the RL-based
//! models (MINERVA, FIRE, RLH, MMKGR).
//!
//! Models are trained once at their default horizon and evaluated with
//! beam horizons T ∈ {2..6}; the NO_OP action makes longer horizons
//! strictly more expressive, reproducing the paper's "fast growth to T=3,
//! plateau/slight decline after T=4" shape. (The paper retrains per T;
//! on this substrate the evaluated-horizon sweep shows the same shape at
//! a fraction of the cost — Table VI does the retrain-per-T version.)

use mmkgr_bench::{print_series, Stopwatch};
use mmkgr_core::Variant;
use mmkgr_eval::{save_json, Dataset, Harness, HarnessConfig, ScaleChoice};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let t_values: Vec<usize> = match scale {
        ScaleChoice::Quick => vec![2, 3, 4],
        _ => vec![2, 3, 4, 5, 6],
    };
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{} (Hits@1 vs T)", h.kg.stats());

        let (minerva, _) = h.train_minerva();
        sw.lap("MINERVA");
        let (fire, _) = h.train_fire();
        sw.lap("FIRE");
        let (rlh, _) = h.train_rlh();
        sw.lap("RLH");
        let (mmkgr, _) = h.train_variant(Variant::Full);
        sw.lap("MMKGR");

        let mut eval_series = |name: &str, f: &dyn Fn(usize) -> f64| {
            let series: Vec<(String, f64)> =
                t_values.iter().map(|&t| (format!("T={t}"), f(t))).collect();
            print_series(name, &series);
            dump.push((dataset.name().to_string(), name.to_string(), series));
        };
        eval_series("MINERVA", &|t| h.eval_policy_steps(&minerva, t).hits1);
        eval_series("FIRE", &|t| h.eval_policy_steps(&fire, t).hits1);
        eval_series("RLH", &|t| h.eval_policy_steps(&rlh, t).hits1);
        eval_series("MMKGR", &|t| h.eval_policy_steps(&mmkgr.model, t).hits1);
        sw.lap("sweeps evaluated");
    }
    save_json("fig8", &dump);
}
