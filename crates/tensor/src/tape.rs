//! Tape-based reverse-mode automatic differentiation.
//!
//! The design is the classic dynamic-graph "micrograd" shape: every forward
//! operation eagerly computes its value and records an [`Op`] node on the
//! [`Tape`]; [`Tape::backward`] then walks the node list in reverse,
//! accumulating gradients. A fresh tape is built per training step, which is
//! what RL rollouts with data-dependent action spaces need.
//!
//! All values are [`Matrix`] (2-D, `f32`). Scalars are `1×1` matrices.

use std::cell::{Ref, RefCell};

use crate::matrix::Matrix;

/// Handle to a node on a [`Tape`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node index on its tape (stable for the tape's lifetime).
    pub fn id(self) -> usize {
        self.0
    }
}

/// The recorded operation of a tape node. Parents are earlier nodes.
/// Some payload fields exist only for `Debug` output (e.g. the constants of
/// `AddScalar`/`MaskedFill`, whose gradients don't need them).
#[derive(Debug)]
#[allow(dead_code)]
enum Op {
    /// Leaf value (input or parameter); gradient is accumulated but has no
    /// parents to propagate to.
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    /// `a + b` where `b` is a `1×cols` row broadcast over the rows of `a`.
    AddBroadcastRow(Var, Var),
    Sub(Var, Var),
    /// Hadamard product of equal shapes.
    Mul(Var, Var),
    /// Elementwise division of equal shapes.
    Div(Var, Var),
    /// `a * c` for a compile-time constant scalar.
    Scale(Var, f32),
    AddScalar(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Exp(Var),
    /// `ln(x + eps)`; `eps` keeps the op total.
    Ln(Var, f32),
    SoftmaxRows(Var),
    LogSoftmaxRows(Var),
    /// Sum of all elements → `1×1`.
    Sum(Var),
    /// Mean of all elements → `1×1`.
    Mean(Var),
    /// Row sums → `rows×1`.
    SumRows(Var),
    /// Column sums → `1×cols`.
    SumCols(Var),
    ConcatCols(Var, Var),
    ConcatRows(Var, Var),
    Transpose(Var),
    /// Row gather (embedding lookup); backward scatter-adds.
    GatherRows(Var, Vec<usize>),
    SliceCols(Var, usize, usize),
    /// Select one element per row → `rows×1`.
    PickPerRow(Var, Vec<usize>),
    /// Where the mask is true the value is replaced by a constant (which
    /// blocks the gradient there). Used to mask invalid actions with −∞.
    MaskedFill(Var, Vec<bool>, f32),
    /// `a ⊙ b` with `b: rows×1` broadcast across columns.
    MulColBroadcast(Var, Var),
    /// `a ⊙ b` with `b: 1×cols` broadcast across rows.
    MulRowBroadcast(Var, Var),
    /// Shape reinterpretation (same element count, row-major order kept).
    Reshape(Var),
    /// Flat-index gather: `out.flat[i] = a.flat[idx[i]]` — the im2col
    /// primitive ConvE's convolution is built on.
    GatherFlat(Var, Vec<u32>),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A dynamic computation graph. Create one per forward/backward pass.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Grads {
    grads: Vec<Option<Matrix>>,
}

impl Grads {
    /// Gradient of the loss w.r.t. `v`, if `v` participated in the loss.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Gradient of the loss w.r.t. `v`, zero-filled if absent.
    pub fn get_or_zero(&self, v: Var, rows: usize, cols: usize) -> Matrix {
        match self.get(v) {
            Some(g) => g.clone(),
            None => Matrix::zeros(rows, cols),
        }
    }
}

impl Tape {
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::with_capacity(64)),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, value: Matrix, op: Op) -> Var {
        debug_assert!(
            !value.has_non_finite() || matches!(op, Op::MaskedFill(..)),
            "non-finite value produced by {op:?}"
        );
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var(nodes.len() - 1)
    }

    /// Record a leaf (input or parameter) value.
    pub fn input(&self, value: Matrix) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            op: Op::Leaf,
        });
        Var(nodes.len() - 1)
    }

    /// Borrow the value of a node.
    pub fn value(&self, v: Var) -> Ref<'_, Matrix> {
        Ref::map(self.nodes.borrow(), |nodes| &nodes[v.0].value)
    }

    /// Clone the value of a node.
    pub fn value_cloned(&self, v: Var) -> Matrix {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0].value.shape()
    }

    /// The single element of a `1×1` node.
    pub fn scalar(&self, v: Var) -> f32 {
        let nodes = self.nodes.borrow();
        let m = &nodes[v.0].value;
        assert_eq!(m.shape(), (1, 1), "scalar: node is {:?}", m.shape());
        m.get(0, 0)
    }

    // ---- binary ops ------------------------------------------------------

    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.matmul(&nodes[b.0].value)
        };
        self.push(v, Op::MatMul(a, b))
    }

    pub fn add(&self, a: Var, b: Var) -> Var {
        let (v, broadcast) = {
            let nodes = self.nodes.borrow();
            let (ma, mb) = (&nodes[a.0].value, &nodes[b.0].value);
            if ma.shape() == mb.shape() {
                (ma.zip_map(mb, |x, y| x + y), false)
            } else {
                assert_eq!(mb.rows(), 1, "add: incompatible shapes");
                assert_eq!(ma.cols(), mb.cols(), "add: incompatible shapes");
                let mut out = ma.clone();
                for r in 0..out.rows() {
                    for (o, &x) in out.row_mut(r).iter_mut().zip(mb.row(0)) {
                        *o += x;
                    }
                }
                (out, true)
            }
        };
        if broadcast {
            self.push(v, Op::AddBroadcastRow(a, b))
        } else {
            self.push(v, Op::Add(a, b))
        }
    }

    pub fn sub(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.zip_map(&nodes[b.0].value, |x, y| x - y)
        };
        self.push(v, Op::Sub(a, b))
    }

    /// Hadamard product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.zip_map(&nodes[b.0].value, |x, y| x * y)
        };
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise division; denominators are clamped away from zero by the
    /// caller's responsibility (used only on positive activations here).
    pub fn div(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.zip_map(&nodes[b.0].value, |x, y| x / y)
        };
        self.push(v, Op::Div(a, b))
    }

    /// `a ⊙ b` where `b` is `rows×1`, broadcast across columns.
    pub fn mul_col_broadcast(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (ma, mb) = (&nodes[a.0].value, &nodes[b.0].value);
            assert_eq!(mb.cols(), 1, "mul_col_broadcast: b must be rows×1");
            assert_eq!(ma.rows(), mb.rows(), "mul_col_broadcast: row mismatch");
            let mut out = ma.clone();
            for r in 0..out.rows() {
                let s = mb.get(r, 0);
                for o in out.row_mut(r) {
                    *o *= s;
                }
            }
            out
        };
        self.push(v, Op::MulColBroadcast(a, b))
    }

    /// `a ⊙ b` where `b` is `1×cols`, broadcast across rows.
    pub fn mul_row_broadcast(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (ma, mb) = (&nodes[a.0].value, &nodes[b.0].value);
            assert_eq!(mb.rows(), 1, "mul_row_broadcast: b must be 1×cols");
            assert_eq!(ma.cols(), mb.cols(), "mul_row_broadcast: col mismatch");
            let mut out = ma.clone();
            for r in 0..out.rows() {
                for (o, &s) in out.row_mut(r).iter_mut().zip(mb.row(0)) {
                    *o *= s;
                }
            }
            out
        };
        self.push(v, Op::MulRowBroadcast(a, b))
    }

    // ---- unary ops ---------------------------------------------------

    pub fn scale(&self, a: Var, c: f32) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(|x| x * c);
        self.push(v, Op::Scale(a, c))
    }

    pub fn add_scalar(&self, a: Var, c: f32) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(|x| x + c);
        self.push(v, Op::AddScalar(a, c))
    }

    pub fn neg(&self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    pub fn sigmoid(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0]
            .value
            .map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    pub fn tanh(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    pub fn relu(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    pub fn exp(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(f32::exp);
        self.push(v, Op::Exp(a))
    }

    /// Natural log with an epsilon floor: `ln(x + eps)`.
    pub fn ln_eps(&self, a: Var, eps: f32) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(|x| (x + eps).ln());
        self.push(v, Op::Ln(a, eps))
    }

    pub fn softmax_rows(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.softmax_rows();
        self.push(v, Op::SoftmaxRows(a))
    }

    pub fn log_softmax_rows(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let m = &nodes[a.0].value;
            let mut out = m.clone();
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let max = if max.is_finite() { max } else { 0.0 };
                let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
                for x in row {
                    *x -= lse;
                }
            }
            out
        };
        self.push(v, Op::LogSoftmaxRows(a))
    }

    pub fn sum(&self, a: Var) -> Var {
        let v = Matrix::full(1, 1, self.nodes.borrow()[a.0].value.sum());
        self.push(v, Op::Sum(a))
    }

    pub fn mean(&self, a: Var) -> Var {
        let v = Matrix::full(1, 1, self.nodes.borrow()[a.0].value.mean());
        self.push(v, Op::Mean(a))
    }

    pub fn sum_rows(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let m = &nodes[a.0].value;
            let mut out = Matrix::zeros(m.rows(), 1);
            for r in 0..m.rows() {
                out.set(r, 0, m.row(r).iter().sum());
            }
            out
        };
        self.push(v, Op::SumRows(a))
    }

    pub fn sum_cols(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let m = &nodes[a.0].value;
            let mut out = Matrix::zeros(1, m.cols());
            for r in 0..m.rows() {
                for (o, &x) in out.row_mut(0).iter_mut().zip(m.row(r)) {
                    *o += x;
                }
            }
            out
        };
        self.push(v, Op::SumCols(a))
    }

    pub fn concat_cols(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.concat_cols(&nodes[b.0].value)
        };
        self.push(v, Op::ConcatCols(a, b))
    }

    pub fn concat_rows(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.concat_rows(&nodes[b.0].value)
        };
        self.push(v, Op::ConcatRows(a, b))
    }

    pub fn transpose(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Embedding lookup: gather rows of `a` (typically a parameter matrix).
    pub fn gather_rows(&self, a: Var, indices: &[usize]) -> Var {
        let v = self.nodes.borrow()[a.0].value.gather_rows(indices);
        self.push(v, Op::GatherRows(a, indices.to_vec()))
    }

    pub fn slice_cols(&self, a: Var, start: usize, end: usize) -> Var {
        let v = self.nodes.borrow()[a.0].value.slice_cols(start, end);
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Select element `indices[r]` from each row `r` → `rows×1`.
    pub fn pick_per_row(&self, a: Var, indices: &[usize]) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let m = &nodes[a.0].value;
            assert_eq!(indices.len(), m.rows(), "pick_per_row: index count");
            let mut out = Matrix::zeros(m.rows(), 1);
            for (r, &c) in indices.iter().enumerate() {
                out.set(r, 0, m.get(r, c));
            }
            out
        };
        self.push(v, Op::PickPerRow(a, indices.to_vec()))
    }

    /// Replace masked elements with `fill` (no gradient flows through the
    /// filled positions). `mask` is row-major over the whole matrix.
    pub fn masked_fill(&self, a: Var, mask: &[bool], fill: f32) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let m = &nodes[a.0].value;
            assert_eq!(mask.len(), m.len(), "masked_fill: mask length");
            let mut out = m.clone();
            for (o, &masked) in out.as_mut_slice().iter_mut().zip(mask) {
                if masked {
                    *o = fill;
                }
            }
            out
        };
        self.push(v, Op::MaskedFill(a, mask.to_vec(), fill))
    }

    /// Reinterpret shape (element count must match).
    pub fn reshape(&self, a: Var, rows: usize, cols: usize) -> Var {
        let v = self.nodes.borrow()[a.0].value.clone().reshaped(rows, cols);
        self.push(v, Op::Reshape(a))
    }

    /// Flat gather into a `rows×cols` matrix: `out.flat[i] = a.flat[idx[i]]`.
    /// Indices may repeat; the backward pass scatter-adds.
    pub fn gather_flat(&self, a: Var, idx: &[u32], rows: usize, cols: usize) -> Var {
        assert_eq!(
            idx.len(),
            rows * cols,
            "gather_flat: index count != rows*cols"
        );
        let v = {
            let nodes = self.nodes.borrow();
            let src = nodes[a.0].value.as_slice();
            let data: Vec<f32> = idx.iter().map(|&i| src[i as usize]).collect();
            Matrix::from_vec(rows, cols, data)
        };
        self.push(v, Op::GatherFlat(a, idx.to_vec()))
    }

    // ---- backward ------------------------------------------------------

    /// Reverse-mode sweep from a `1×1` loss node. Returns per-node grads.
    pub fn backward(&self, loss: Var) -> Grads {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be 1×1"
        );
        let mut grads: Vec<Option<Matrix>> = Vec::with_capacity(nodes.len());
        grads.resize_with(nodes.len(), || None);
        grads[loss.0] = Some(Matrix::ones(1, 1));

        for id in (0..=loss.0).rev() {
            let Some(g) = grads[id].take() else { continue };
            let node = &nodes[id];
            match &node.op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (ma, mb) = (&nodes[a.0].value, &nodes[b.0].value);
                    acc(&mut grads, *a, g.matmul_nt(mb));
                    acc(&mut grads, *b, ma.matmul_tn(&g));
                }
                Op::Add(a, b) => {
                    acc(&mut grads, *a, g.clone());
                    acc(&mut grads, *b, g.clone());
                }
                Op::AddBroadcastRow(a, b) => {
                    acc(&mut grads, *a, g.clone());
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &x) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    acc(&mut grads, *b, gb);
                }
                Op::Sub(a, b) => {
                    acc(&mut grads, *a, g.clone());
                    acc(&mut grads, *b, g.map(|x| -x));
                }
                Op::Mul(a, b) => {
                    let (ma, mb) = (&nodes[a.0].value, &nodes[b.0].value);
                    acc(&mut grads, *a, g.zip_map(mb, |gv, bv| gv * bv));
                    acc(&mut grads, *b, g.zip_map(ma, |gv, av| gv * av));
                }
                Op::Div(a, b) => {
                    let (ma, mb) = (&nodes[a.0].value, &nodes[b.0].value);
                    acc(&mut grads, *a, g.zip_map(mb, |gv, bv| gv / bv));
                    let mut gb = Matrix::zeros(mb.rows(), mb.cols());
                    for i in 0..gb.len() {
                        let (gv, av, bv) = (g.as_slice()[i], ma.as_slice()[i], mb.as_slice()[i]);
                        gb.as_mut_slice()[i] = -gv * av / (bv * bv);
                    }
                    acc(&mut grads, *b, gb);
                }
                Op::Scale(a, c) => acc(&mut grads, *a, g.map(|x| x * c)),
                Op::AddScalar(a, _) => acc(&mut grads, *a, g.clone()),
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    acc(&mut grads, *a, g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv)));
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    acc(&mut grads, *a, g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv)));
                }
                Op::Relu(a) => {
                    let x = &nodes[a.0].value;
                    acc(
                        &mut grads,
                        *a,
                        g.zip_map(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 }),
                    );
                }
                Op::Exp(a) => {
                    let y = &node.value;
                    acc(&mut grads, *a, g.zip_map(y, |gv, yv| gv * yv));
                }
                Op::Ln(a, eps) => {
                    let x = &nodes[a.0].value;
                    acc(&mut grads, *a, g.zip_map(x, |gv, xv| gv / (xv + eps)));
                }
                Op::SoftmaxRows(a) => {
                    let y = &node.value;
                    let mut gx = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(&gv, &yv)| gv * yv)
                            .sum();
                        for ((o, &gv), &yv) in gx.row_mut(r).iter_mut().zip(g.row(r)).zip(y.row(r))
                        {
                            *o = yv * (gv - dot);
                        }
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::LogSoftmaxRows(a) => {
                    let y = &node.value; // y = log softmax(x)
                    let mut gx = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let gsum: f32 = g.row(r).iter().sum();
                        for ((o, &gv), &yv) in gx.row_mut(r).iter_mut().zip(g.row(r)).zip(y.row(r))
                        {
                            *o = gv - yv.exp() * gsum;
                        }
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::Sum(a) => {
                    let (r, c) = nodes[a.0].value.shape();
                    acc(&mut grads, *a, Matrix::full(r, c, g.get(0, 0)));
                }
                Op::Mean(a) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let n = (r * c).max(1) as f32;
                    acc(&mut grads, *a, Matrix::full(r, c, g.get(0, 0) / n));
                }
                Op::SumRows(a) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let mut gx = Matrix::zeros(r, c);
                    for i in 0..r {
                        let gv = g.get(i, 0);
                        gx.row_mut(i).iter_mut().for_each(|o| *o = gv);
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::SumCols(a) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let mut gx = Matrix::zeros(r, c);
                    for i in 0..r {
                        gx.row_mut(i).copy_from_slice(g.row(0));
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::ConcatCols(a, b) => {
                    let ca = nodes[a.0].value.cols();
                    acc(&mut grads, *a, g.slice_cols(0, ca));
                    acc(&mut grads, *b, g.slice_cols(ca, g.cols()));
                }
                Op::ConcatRows(a, b) => {
                    let ra = nodes[a.0].value.rows();
                    let rows: Vec<usize> = (0..ra).collect();
                    acc(&mut grads, *a, g.gather_rows(&rows));
                    let rows: Vec<usize> = (ra..g.rows()).collect();
                    acc(&mut grads, *b, g.gather_rows(&rows));
                }
                Op::Transpose(a) => acc(&mut grads, *a, g.transpose()),
                Op::GatherRows(a, idx) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let mut gx = Matrix::zeros(r, c);
                    for (out_r, &src_r) in idx.iter().enumerate() {
                        let grow = g.row(out_r);
                        for (o, &x) in gx.row_mut(src_r).iter_mut().zip(grow) {
                            *o += x;
                        }
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::SliceCols(a, start, _end) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let mut gx = Matrix::zeros(r, c);
                    for i in 0..r {
                        let dst = &mut gx.row_mut(i)[*start..*start + g.cols()];
                        dst.copy_from_slice(g.row(i));
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::PickPerRow(a, idx) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let mut gx = Matrix::zeros(r, c);
                    for (i, &col) in idx.iter().enumerate() {
                        gx.set(i, col, g.get(i, 0));
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::MaskedFill(a, mask, _) => {
                    let mut gx = g.clone();
                    for (o, &masked) in gx.as_mut_slice().iter_mut().zip(mask) {
                        if masked {
                            *o = 0.0;
                        }
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::MulColBroadcast(a, b) => {
                    let (ma, mb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let mut ga = g.clone();
                    for r in 0..ga.rows() {
                        let s = mb.get(r, 0);
                        for o in ga.row_mut(r) {
                            *o *= s;
                        }
                    }
                    acc(&mut grads, *a, ga);
                    let mut gb = Matrix::zeros(mb.rows(), 1);
                    for r in 0..g.rows() {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(ma.row(r))
                            .map(|(&gv, &av)| gv * av)
                            .sum();
                        gb.set(r, 0, dot);
                    }
                    acc(&mut grads, *b, gb);
                }
                Op::Reshape(a) => {
                    let (r, c) = nodes[a.0].value.shape();
                    acc(&mut grads, *a, g.clone().reshaped(r, c));
                }
                Op::GatherFlat(a, idx) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let mut gx = Matrix::zeros(r, c);
                    let buf = gx.as_mut_slice();
                    for (out_i, &src_i) in idx.iter().enumerate() {
                        buf[src_i as usize] += g.as_slice()[out_i];
                    }
                    acc(&mut grads, *a, gx);
                }
                Op::MulRowBroadcast(a, b) => {
                    let (ma, mb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let mut ga = g.clone();
                    for r in 0..ga.rows() {
                        for (o, &s) in ga.row_mut(r).iter_mut().zip(mb.row(0)) {
                            *o *= s;
                        }
                    }
                    acc(&mut grads, *a, ga);
                    let mut gb = Matrix::zeros(1, mb.cols());
                    for r in 0..g.rows() {
                        for ((o, &gv), &av) in gb.row_mut(0).iter_mut().zip(g.row(r)).zip(ma.row(r))
                        {
                            *o += gv * av;
                        }
                    }
                    acc(&mut grads, *b, gb);
                }
            }
            grads[id] = Some(g);
        }
        Grads { grads }
    }
}

fn acc(grads: &mut [Option<Matrix>], v: Var, delta: Matrix) {
    match &mut grads[v.0] {
        Some(g) => g.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values() {
        let t = Tape::new();
        let a = t.input(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.input(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let c = t.matmul(a, b);
        assert_eq!(t.scalar(c), 11.0);
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = sum(sigmoid(a * 2))
        let t = Tape::new();
        let a = t.input(Matrix::from_vec(1, 2, vec![0.0, 1.0]));
        let s = t.scale(a, 2.0);
        let y = t.sigmoid(s);
        let loss = t.sum(y);
        let grads = t.backward(loss);
        let ga = grads.get(a).unwrap();
        // d/dx sigmoid(2x) * 2 at x=0 is 0.5*0.5*2 = 0.5
        assert!((ga.get(0, 0) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn matmul_gradient_shapes() {
        let t = Tape::new();
        let a = t.input(Matrix::ones(2, 3));
        let b = t.input(Matrix::ones(3, 4));
        let c = t.matmul(a, b);
        let loss = t.sum(c);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().shape(), (2, 3));
        assert_eq!(g.get(b).unwrap().shape(), (3, 4));
        // each element of a multiplies 4 ones
        assert!((g.get(a).unwrap().get(0, 0) - 4.0).abs() < 1e-6);
        assert!((g.get(b).unwrap().get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gather_scatter_accumulates() {
        let t = Tape::new();
        let emb = t.input(Matrix::from_fn(3, 2, |r, _| r as f32));
        let g = t.gather_rows(emb, &[1, 1, 2]);
        let loss = t.sum(g);
        let grads = t.backward(loss);
        let ge = grads.get(emb).unwrap();
        assert_eq!(ge.row(0), &[0.0, 0.0]);
        assert_eq!(ge.row(1), &[2.0, 2.0]); // gathered twice
        assert_eq!(ge.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn masked_fill_blocks_gradient() {
        let t = Tape::new();
        let a = t.input(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let m = t.masked_fill(a, &[false, true, false], -1e9);
        let s = t.softmax_rows(m);
        let p = t.pick_per_row(s, &[0]);
        let loss = t.sum(p);
        let grads = t.backward(loss);
        let ga = grads.get(a).unwrap();
        assert_eq!(ga.get(0, 1), 0.0, "masked position must get zero grad");
        assert!(ga.get(0, 0).abs() > 0.0);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let t = Tape::new();
        let a = t.input(Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, -1.0, 0.0, 1.0]));
        let ls = t.log_softmax_rows(a);
        let s = t.softmax_rows(a);
        let lsv = t.value_cloned(ls);
        let sv = t.value_cloned(s);
        for i in 0..lsv.len() {
            assert!((lsv.as_slice()[i] - sv.as_slice()[i].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn pick_per_row_selects() {
        let t = Tape::new();
        let a = t.input(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let p = t.pick_per_row(a, &[2, 0]);
        let v = t.value_cloned(p);
        assert_eq!(v.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn broadcast_add_row() {
        let t = Tape::new();
        let a = t.input(Matrix::zeros(2, 3));
        let b = t.input(Matrix::from_vec(1, 3, vec![1., 2., 3.]));
        let c = t.add(a, b);
        let v = t.value_cloned(c);
        assert_eq!(v.row(0), &[1., 2., 3.]);
        assert_eq!(v.row(1), &[1., 2., 3.]);
        let loss = t.sum(c);
        let g = t.backward(loss);
        assert_eq!(g.get(b).unwrap().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn diamond_graph_accumulates_grads() {
        // loss = sum(a*a + a) — a is used twice
        let t = Tape::new();
        let a = t.input(Matrix::from_vec(1, 1, vec![3.0]));
        let sq = t.mul(a, a);
        let s = t.add(sq, a);
        let loss = t.sum(s);
        let g = t.backward(loss);
        // d/da (a² + a) = 2a + 1 = 7
        assert!((g.get(a).unwrap().get(0, 0) - 7.0).abs() < 1e-5);
    }

    #[test]
    fn scalar_panics_on_non_scalar() {
        let t = Tape::new();
        let a = t.input(Matrix::zeros(2, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.scalar(a)));
        assert!(result.is_err());
    }

    #[test]
    fn col_broadcast_mul_grad() {
        let t = Tape::new();
        let a = t.input(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = t.input(Matrix::from_vec(2, 1, vec![10., 100.]));
        let c = t.mul_col_broadcast(a, b);
        let v = t.value_cloned(c);
        assert_eq!(v.as_slice(), &[10., 20., 300., 400.]);
        let loss = t.sum(c);
        let g = t.backward(loss);
        assert_eq!(g.get(b).unwrap().as_slice(), &[3.0, 7.0]);
        assert_eq!(g.get(a).unwrap().as_slice(), &[10., 10., 100., 100.]);
    }
}
