//! Table V — effect of multi-modal auxiliary features: OSKGR (structure
//! only), STKGR (+text), SIKGR (+image), MMKGR (all).

use mmkgr_bench::{ModelRow, Stopwatch};
use mmkgr_core::Variant;
use mmkgr_eval::{datasets_from_args, save_json, Harness, HarnessConfig, ScaleChoice, Table};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let mut dump = Vec::new();
    for dataset in datasets_from_args() {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{}", h.kg.stats());
        let mut table = Table::new(
            format!("Table V — modality ablation on {}", dataset.name()),
            &["Model", "MRR", "Hits@1", "Hits@5", "Hits@10"],
        );
        let mut rows = Vec::new();
        for v in [
            Variant::Oskgr,
            Variant::Stkgr,
            Variant::Sikgr,
            Variant::Full,
        ] {
            let (trainer, _) = h.train_variant(v);
            let row = ModelRow::new(v.name(), &h.eval_policy(&trainer.model));
            sw.lap(v.name());
            table.push_row(row.cells());
            rows.push(row);
        }
        table.print();
        dump.push((dataset.name().to_string(), rows));
    }
    save_json("table5", &dump);
}
