//! Epoch-pinned publication of live graphs.
//!
//! [`GraphHandle`] is the one mutable cell in the storage tier: an
//! `RwLock<Arc<KnowledgeGraph>>` every reader clones out of ("pinning")
//! and every writer swaps a successor value into ("publishing"). Because
//! [`KnowledgeGraph`] itself is immutable (mutation produces a new value
//! sharing the base CSR — see [`crate::graph`]), a pinned `Arc` is a
//! consistent point-in-time view for as long as the reader holds it:
//! queries never observe a half-applied mutation, and readers never block
//! on writers beyond the instant of the pointer swap.

use std::sync::{Arc, RwLock};

use crate::graph::KnowledgeGraph;

/// Shared, swappable handle to the current graph epoch. Cloning the
/// handle shares the cell; [`GraphHandle::pin`] clones the current value
/// out of it.
#[derive(Clone)]
pub struct GraphHandle {
    inner: Arc<RwLock<Arc<KnowledgeGraph>>>,
}

impl GraphHandle {
    /// Wrap a graph that may later be mutated through this handle.
    pub fn new(graph: Arc<KnowledgeGraph>) -> Self {
        GraphHandle {
            inner: Arc::new(RwLock::new(graph)),
        }
    }

    /// Pin the current epoch: the returned `Arc` is immutable and keeps
    /// serving the same edges no matter how many mutations are published
    /// after it. This is the per-query entry point — pin once, use the
    /// same graph for the whole query.
    pub fn pin(&self) -> Arc<KnowledgeGraph> {
        Arc::clone(&self.inner.read().expect("graph handle lock"))
    }

    /// Publish a successor graph. In-flight readers keep their pinned
    /// epoch; new pins see `graph`.
    pub fn publish(&self, graph: Arc<KnowledgeGraph>) {
        *self.inner.write().expect("graph handle lock") = graph;
    }

    /// Epoch of the currently published graph.
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("graph handle lock").epoch()
    }
}

impl std::fmt::Debug for GraphHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphHandle")
            .field("epoch", &self.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::wal::TripleOp;
    use crate::triple::Triple;
    use crate::EntityId;
    use crate::RelationId;

    #[test]
    fn pinned_readers_never_see_later_mutations() {
        let g = KnowledgeGraph::from_triples(3, 1, vec![Triple::new(0, 0, 1)], None);
        let handle = GraphHandle::new(Arc::new(g));
        let pinned = handle.pin();
        assert_eq!(pinned.epoch(), 0);

        let (next, _) = pinned
            .apply_ops(&[TripleOp::Insert(Triple::new(1, 0, 2))])
            .unwrap();
        handle.publish(Arc::new(next));

        assert_eq!(handle.epoch(), 1);
        assert!(handle
            .pin()
            .has_edge(EntityId(1), RelationId(0), EntityId(2)));
        // The pinned view is frozen at epoch 0.
        assert_eq!(pinned.epoch(), 0);
        assert!(!pinned.has_edge(EntityId(1), RelationId(0), EntityId(2)));
    }

    #[test]
    fn clones_share_the_cell() {
        let g = KnowledgeGraph::from_triples(2, 1, vec![Triple::new(0, 0, 1)], None);
        let a = GraphHandle::new(Arc::new(g));
        let b = a.clone();
        let (next, _) = a
            .pin()
            .apply_ops(&[TripleOp::Delete(Triple::new(0, 0, 1))])
            .unwrap();
        a.publish(Arc::new(next));
        assert_eq!(b.epoch(), 1);
        assert!(!b.pin().has_edge(EntityId(0), RelationId(0), EntityId(1)));
    }
}
