//! MTRL (Mousselly-Sergieh et al., NAACL 2018) — the paper's strongest
//! *single-hop multi-modal* baseline.
//!
//! MTRL concatenates structural embeddings with projected multi-modal
//! features (text + image) and scores triples TransE-style in the fused
//! space. This is exactly the "concatenation fusion" the MMKGR paper
//! contrasts its gate-attention network against.

use mmkgr_kg::{EntityId, ModalBank, RelationId, Triple, TripleSet};
use mmkgr_nn::{loss::margin_ranking, Adam, Ctx, Embedding, ParamId, Params};
use mmkgr_tensor::init::{seeded_rng, xavier};
use mmkgr_tensor::{Matrix, Tape, Var};

use crate::negative::NegativeSampler;
use crate::scorer::TripleScorer;
use crate::trainer::{batch_indices, KgeTrainConfig};

pub struct Mtrl {
    pub params: Params,
    struct_emb: Embedding,
    relations: Embedding,
    w_txt: ParamId,
    w_img: ParamId,
    /// Borrowed modality data (copied in; the bank may be huge, but these
    /// are the per-entity aggregates, not the raw image stacks).
    texts: Matrix,
    images: Matrix,
    pub struct_dim: usize,
    pub modal_dim: usize,
    /// Cached fused entity representations (`N×fused_dim`), refreshed by
    /// [`Mtrl::materialize`] after training.
    cache: Option<Matrix>,
}

impl Mtrl {
    pub fn new(
        num_entities: usize,
        num_relations: usize,
        modal: &ModalBank,
        struct_dim: usize,
        modal_dim: usize,
        seed: u64,
    ) -> Self {
        let mut params = Params::new();
        let mut rng = seeded_rng(seed);
        let struct_emb =
            Embedding::new(&mut params, &mut rng, "mtrl.ent", num_entities, struct_dim);
        let fused = struct_dim + 2 * modal_dim;
        let relations = Embedding::new(&mut params, &mut rng, "mtrl.rel", num_relations, fused);
        let w_txt = params.add(
            "mtrl.w_txt",
            xavier(&mut rng, modal.text_dim().max(1), modal_dim),
        );
        let w_img = params.add(
            "mtrl.w_img",
            xavier(&mut rng, modal.image_dim().max(1), modal_dim),
        );
        Mtrl {
            params,
            struct_emb,
            relations,
            w_txt,
            w_img,
            texts: modal.texts().clone(),
            images: modal.mean_images().clone(),
            struct_dim,
            modal_dim,
            cache: None,
        }
    }

    pub fn fused_dim(&self) -> usize {
        self.struct_dim + 2 * self.modal_dim
    }

    /// Fused entity representation of a batch on the tape:
    /// `[e_struct | f_t·W_t | f_i·W_i]`.
    fn entity_repr(&self, ctx: &Ctx<'_>, idx: &[usize]) -> Var {
        let t = ctx.tape;
        let s = self.struct_emb.forward(ctx, idx);
        let txt = ctx.input(self.texts.gather_rows(idx));
        let img = ctx.input(self.images.gather_rows(idx));
        let txt_p = t.matmul(txt, ctx.p(self.w_txt));
        let img_p = t.matmul(img, ctx.p(self.w_img));
        t.concat_cols(t.concat_cols(s, txt_p), img_p)
    }

    fn batch_distance(&self, ctx: &Ctx<'_>, triples: &[&Triple]) -> Var {
        let t = ctx.tape;
        let s_idx: Vec<usize> = triples.iter().map(|x| x.s.index()).collect();
        let r_idx: Vec<usize> = triples.iter().map(|x| x.r.index()).collect();
        let o_idx: Vec<usize> = triples.iter().map(|x| x.o.index()).collect();
        let hs = self.entity_repr(ctx, &s_idx);
        let ho = self.entity_repr(ctx, &o_idx);
        let r = self.relations.forward(ctx, &r_idx);
        let diff = t.sub(t.add(hs, r), ho);
        let sq = t.mul(diff, diff);
        t.sum_rows(sq)
    }

    pub fn train(
        &mut self,
        triples: &[Triple],
        known: &TripleSet,
        cfg: &KgeTrainConfig,
    ) -> Vec<f32> {
        let mut rng = seeded_rng(cfg.seed);
        let sampler = NegativeSampler::new(known, self.struct_emb.count);
        let mut opt = Adam::new(cfg.lr);
        let mut trace = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in batch_indices(triples.len(), cfg.batch_size, &mut rng) {
                let pos: Vec<&Triple> = batch.iter().map(|&i| &triples[i]).collect();
                let negs: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
                let neg_refs: Vec<&Triple> = negs.iter().collect();
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, &self.params);
                let pos_d = self.batch_distance(&ctx, &pos);
                let neg_d = self.batch_distance(&ctx, &neg_refs);
                let loss = margin_ranking(&tape, pos_d, neg_d, cfg.margin);
                epoch_loss += tape.scalar(loss);
                batches += 1;
                let grads = tape.backward(loss);
                ctx.into_leases().accumulate(&mut self.params, &grads);
                opt.step(&mut self.params);
                self.params.zero_grads();
            }
            trace.push(epoch_loss / batches.max(1) as f32);
        }
        self.materialize();
        trace
    }

    /// Recompute the fused entity representation cache with plain matrix
    /// products (no tape) — the fast path scoring uses.
    pub fn materialize(&mut self) {
        let structs = self.params.value(self.struct_emb.table);
        let txt = self.texts.matmul(self.params.value(self.w_txt));
        let img = self.images.matmul(self.params.value(self.w_img));
        self.cache = Some(structs.concat_cols(&txt).concat_cols(&img));
    }

    fn cached(&self) -> &Matrix {
        self.cache
            .as_ref()
            .expect("Mtrl::materialize must run before scoring (train() does it)")
    }
}

impl TripleScorer for Mtrl {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let h = self.cached();
        let hs = h.row(s.index());
        let ho = h.row(o.index());
        let er = self.relations.row(&self.params, r.index());
        let mut d = 0.0f32;
        for i in 0..self.fused_dim() {
            let v = hs[i] + er[i] - ho[i];
            d += v * v;
        }
        -d
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        let h = self.cached();
        let hs = h.row(s.index());
        let er = self.relations.row(&self.params, r.index());
        let query: Vec<f32> = hs.iter().zip(er).map(|(a, b)| a + b).collect();
        crate::scorer::prepare_score_buffer(out, n);
        for o in 0..n {
            let row = h.row(o);
            let mut d = 0.0f32;
            for i in 0..query.len() {
                let v = query[i] - row[i];
                d += v * v;
            }
            out.push(-d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_datagen::{generate, GenConfig};

    #[test]
    fn trains_on_tiny_mkg_and_improves() {
        let kg = generate(&GenConfig::tiny());
        let known = kg.all_known();
        let mut model = Mtrl::new(
            kg.num_entities(),
            kg.graph.relations().total(),
            &kg.modal,
            16,
            8,
            0,
        );
        let cfg = KgeTrainConfig {
            epochs: 10,
            batch_size: 64,
            lr: 5e-3,
            margin: 1.0,
            seed: 1,
        };
        let trace = model.train(&kg.split.train, &known, &cfg);
        assert!(trace.last().unwrap() < &trace[0]);
    }

    #[test]
    fn scoring_uses_modal_features() {
        // Two models with identical structural seeds but different modal
        // banks must produce different scores.
        let kg_a = generate(&GenConfig::tiny());
        let kg_b = generate(&GenConfig::tiny().with_seed(123));
        let mk = |bank: &ModalBank| {
            let mut m = Mtrl::new(kg_a.num_entities(), 5, bank, 8, 4, 7);
            m.materialize();
            m.score(EntityId(0), RelationId(0), EntityId(1))
        };
        assert_ne!(mk(&kg_a.modal), mk(&kg_b.modal));
    }

    #[test]
    fn vectorized_matches_pointwise() {
        let kg = generate(&GenConfig::tiny());
        let mut model = Mtrl::new(kg.num_entities(), 5, &kg.modal, 8, 4, 2);
        model.materialize();
        let mut out = Vec::new();
        model.score_all_objects(EntityId(3), RelationId(1), 10, &mut out);
        for (o, &v) in out.iter().enumerate() {
            let p = model.score(EntityId(3), RelationId(1), EntityId(o as u32));
            assert!((v - p).abs() < 1e-4);
        }
    }
}
