//! Path utilities: random walks, bounded BFS, and hop-distance queries.
//!
//! Used by the diversity reward (path embeddings), the NeuralLP-style rule
//! miner (random-walk rule harvesting), and the Fig. 6/7 hop-statistics
//! experiments.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

use crate::graph::KnowledgeGraph;
use crate::ids::{EntityId, RelationId};

/// A walked path: alternating start entity and (relation, entity) steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    pub start: EntityId,
    pub steps: Vec<(RelationId, EntityId)>,
}

impl Path {
    pub fn new(start: EntityId) -> Self {
        Path {
            start,
            steps: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Last entity on the path (the current position).
    pub fn end(&self) -> EntityId {
        self.steps.last().map(|&(_, e)| e).unwrap_or(self.start)
    }

    /// The relation sequence (the "rule body" view of the path).
    pub fn relation_seq(&self) -> Vec<RelationId> {
        self.steps.iter().map(|&(r, _)| r).collect()
    }
}

/// Uniform random walk of exactly `len` steps (stops early at dead ends).
pub fn random_walk(g: &KnowledgeGraph, start: EntityId, len: usize, rng: &mut StdRng) -> Path {
    let mut path = Path::new(start);
    let mut cur = start;
    for _ in 0..len {
        let edges = g.neighbors(cur);
        if edges.is_empty() {
            break;
        }
        let e = edges[rng.gen_range(0..edges.len())];
        path.steps.push((e.relation, e.target));
        cur = e.target;
    }
    path
}

/// Hop distance from `start` to `goal` with BFS, bounded by `max_hops`.
/// Returns `None` if unreachable within the bound.
pub fn hop_distance(
    g: &KnowledgeGraph,
    start: EntityId,
    goal: EntityId,
    max_hops: usize,
) -> Option<usize> {
    if start == goal {
        return Some(0);
    }
    let mut visited = vec![false; g.num_entities()];
    visited[start.index()] = true;
    let mut frontier = VecDeque::new();
    frontier.push_back((start, 0usize));
    while let Some((e, d)) = frontier.pop_front() {
        if d == max_hops {
            continue;
        }
        for edge in g.neighbors(e) {
            if edge.target == goal {
                return Some(d + 1);
            }
            if !visited[edge.target.index()] {
                visited[edge.target.index()] = true;
                frontier.push_back((edge.target, d + 1));
            }
        }
    }
    None
}

/// All simple paths from `start` to `goal` of length ≤ `max_hops`
/// (capped at `max_paths` results to bound work on dense graphs).
pub fn enumerate_paths(
    g: &KnowledgeGraph,
    start: EntityId,
    goal: EntityId,
    max_hops: usize,
    max_paths: usize,
) -> Vec<Path> {
    let mut results = Vec::new();
    let mut stack: Vec<(RelationId, EntityId)> = Vec::with_capacity(max_hops);
    let mut on_path = vec![false; g.num_entities()];
    on_path[start.index()] = true;
    dfs(
        g,
        start,
        goal,
        max_hops,
        max_paths,
        &mut stack,
        &mut on_path,
        &mut results,
        start,
    );
    results
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &KnowledgeGraph,
    cur: EntityId,
    goal: EntityId,
    budget: usize,
    max_paths: usize,
    stack: &mut Vec<(RelationId, EntityId)>,
    on_path: &mut [bool],
    results: &mut Vec<Path>,
    start: EntityId,
) {
    if results.len() >= max_paths || budget == 0 {
        return;
    }
    for edge in g.neighbors(cur) {
        if results.len() >= max_paths {
            return;
        }
        if edge.target == goal {
            stack.push((edge.relation, edge.target));
            results.push(Path {
                start,
                steps: stack.clone(),
            });
            stack.pop();
            continue;
        }
        if !on_path[edge.target.index()] {
            on_path[edge.target.index()] = true;
            stack.push((edge.relation, edge.target));
            dfs(
                g,
                edge.target,
                goal,
                budget - 1,
                max_paths,
                stack,
                on_path,
                results,
                start,
            );
            stack.pop();
            on_path[edge.target.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;
    use mmkgr_tensor::init::seeded_rng;

    fn chain() -> KnowledgeGraph {
        // 0 -> 1 -> 2 -> 3 (relation 0)
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 0, 3),
        ];
        KnowledgeGraph::from_triples(4, 1, triples, None)
    }

    #[test]
    fn hop_distance_on_chain() {
        let g = chain();
        assert_eq!(hop_distance(&g, EntityId(0), EntityId(0), 4), Some(0));
        assert_eq!(hop_distance(&g, EntityId(0), EntityId(1), 4), Some(1));
        assert_eq!(hop_distance(&g, EntityId(0), EntityId(3), 4), Some(3));
        assert_eq!(hop_distance(&g, EntityId(0), EntityId(3), 2), None);
    }

    #[test]
    fn hop_distance_uses_inverse_edges() {
        let g = chain();
        // 3 can reach 0 through inverse edges
        assert_eq!(hop_distance(&g, EntityId(3), EntityId(0), 4), Some(3));
    }

    #[test]
    fn random_walk_respects_length_and_adjacency() {
        let g = chain();
        let mut rng = seeded_rng(0);
        for _ in 0..20 {
            let p = random_walk(&g, EntityId(0), 3, &mut rng);
            assert!(p.len() <= 3);
            let mut cur = p.start;
            for &(r, e) in &p.steps {
                assert!(g.has_edge(cur, r, e), "walk used a non-edge");
                cur = e;
            }
        }
    }

    #[test]
    fn random_walk_stops_at_dead_end() {
        let g = KnowledgeGraph::from_triples(3, 1, vec![Triple::new(0, 0, 1)], None);
        // entity 2 is isolated
        let mut rng = seeded_rng(1);
        let p = random_walk(&g, EntityId(2), 5, &mut rng);
        assert!(p.is_empty());
        assert_eq!(p.end(), EntityId(2));
    }

    #[test]
    fn enumerate_simple_paths() {
        // 0->1->3 and 0->2->3 (two 2-hop paths), plus direct 0->3
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 3),
            Triple::new(0, 0, 2),
            Triple::new(2, 0, 3),
            Triple::new(0, 1, 3),
        ];
        let g = KnowledgeGraph::from_triples(4, 2, triples, None);
        let paths = enumerate_paths(&g, EntityId(0), EntityId(3), 2, 100);
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.end() == EntityId(3)));
        let one_hop = paths.iter().filter(|p| p.len() == 1).count();
        assert_eq!(one_hop, 1);
    }

    #[test]
    fn enumerate_respects_cap() {
        let triples: Vec<Triple> = (1..=6)
            .flat_map(|m| [Triple::new(0, 0, m), Triple::new(m, 0, 7)])
            .collect();
        let g = KnowledgeGraph::from_triples(8, 1, triples, None);
        let paths = enumerate_paths(&g, EntityId(0), EntityId(7), 2, 3);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn relation_seq_extraction() {
        let mut p = Path::new(EntityId(0));
        p.steps.push((RelationId(1), EntityId(2)));
        p.steps.push((RelationId(0), EntityId(3)));
        assert_eq!(p.relation_seq(), vec![RelationId(1), RelationId(0)]);
    }
}
