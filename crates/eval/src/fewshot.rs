//! Few-shot relation evaluation — the paper's stated future work
//! (§VI: "How to infer missing triplets over few-shot relations on MKGs,
//! still awaits further exploration").
//!
//! This module does the exploration the paper defers: it buckets test
//! triples by how many *training* triples their relation has, then
//! evaluates any policy/scorer per bucket. The hypothesis the
//! `ext_fewshot` bench checks is that multi-modal auxiliary features help
//! *most* on rare relations (structure is sparse there, so modality
//! signal carries relatively more of the decision), mirroring the
//! motivation of few-shot KGR work (FIRE, Meta-KGR).

use std::collections::HashMap;

use mmkgr_core::RolloutPolicy;
use mmkgr_embed::TripleScorer;
use mmkgr_kg::{KnowledgeGraph, RelationId, Triple, TripleSet};

use crate::ranker::{eval_policy_entity, eval_scorer_entity, LinkPredictionResult};

/// A frequency bucket: test triples whose relation has a training count
/// in `[lo, hi]`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FrequencyBucket {
    pub label: String,
    pub lo: usize,
    pub hi: usize,
    /// Distinct relations falling in the bucket.
    pub relations: usize,
    /// Test triples falling in the bucket.
    pub triples: usize,
}

/// Test triples partitioned by training-frequency of their relation.
pub struct FewShotSplit {
    pub buckets: Vec<FrequencyBucket>,
    groups: Vec<Vec<Triple>>,
}

/// Count training triples per relation (base + inverse counted
/// separately — queries are directional).
pub fn relation_frequencies(train: &[Triple]) -> HashMap<RelationId, usize> {
    let mut freq = HashMap::new();
    for t in train {
        *freq.entry(t.r).or_insert(0) += 1;
    }
    freq
}

impl FewShotSplit {
    /// Partition `test` by the training frequency of each triple's
    /// relation, using `boundaries` as inclusive upper edges (e.g.
    /// `[5, 20, 100]` → buckets `≤5`, `6–20`, `21–100`, `>100`).
    pub fn new(train: &[Triple], test: &[Triple], boundaries: &[usize]) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        let freq = relation_frequencies(train);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut lo = 0usize;
        for &b in boundaries {
            edges.push((lo, b));
            lo = b + 1;
        }
        edges.push((lo, usize::MAX));
        let mut groups: Vec<Vec<Triple>> = vec![Vec::new(); edges.len()];
        for t in test {
            let f = freq.get(&t.r).copied().unwrap_or(0);
            let idx = edges
                .iter()
                .position(|&(a, b)| f >= a && f <= b)
                .expect("edges cover all frequencies");
            groups[idx].push(*t);
        }
        let buckets = edges
            .iter()
            .zip(&groups)
            .map(|(&(a, b), g)| {
                let mut rels: Vec<RelationId> = g.iter().map(|t| t.r).collect();
                rels.sort_unstable_by_key(|r| r.0);
                rels.dedup();
                FrequencyBucket {
                    label: if b == usize::MAX {
                        format!(">{}", a.saturating_sub(1))
                    } else {
                        format!("{a}–{b}")
                    },
                    lo: a,
                    hi: b,
                    relations: rels.len(),
                    triples: g.len(),
                }
            })
            .collect();
        FewShotSplit { buckets, groups }
    }

    /// Test triples in bucket `i`.
    pub fn triples(&self, i: usize) -> &[Triple] {
        &self.groups[i]
    }

    pub fn num_buckets(&self) -> usize {
        self.groups.len()
    }

    /// Evaluate a rollout policy per bucket. Empty buckets yield `None`.
    pub fn eval_policy(
        &self,
        policy: &impl RolloutPolicy,
        graph: &KnowledgeGraph,
        known: &TripleSet,
        beam: usize,
        steps: usize,
    ) -> Vec<Option<LinkPredictionResult>> {
        self.groups
            .iter()
            .map(|g| {
                if g.is_empty() {
                    None
                } else {
                    Some(eval_policy_entity(policy, graph, g, known, beam, steps))
                }
            })
            .collect()
    }

    /// Evaluate a single-hop scorer per bucket.
    pub fn eval_scorer(
        &self,
        scorer: &impl TripleScorer,
        graph: &KnowledgeGraph,
        known: &TripleSet,
    ) -> Vec<Option<LinkPredictionResult>> {
        self.groups
            .iter()
            .map(|g| {
                if g.is_empty() {
                    None
                } else {
                    Some(eval_scorer_entity(scorer, graph, g, known))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, r: u32, o: u32) -> Triple {
        Triple::new(s, r, o)
    }

    #[test]
    fn frequencies_count_directionally() {
        let train = vec![t(0, 0, 1), t(1, 0, 2), t(0, 1, 2)];
        let f = relation_frequencies(&train);
        assert_eq!(f[&RelationId(0)], 2);
        assert_eq!(f[&RelationId(1)], 1);
        assert!(!f.contains_key(&RelationId(2)));
    }

    #[test]
    fn buckets_partition_the_test_set() {
        let train = vec![
            // r0 seen 3×, r1 seen 1×, r2 unseen
            t(0, 0, 1),
            t(1, 0, 2),
            t(2, 0, 3),
            t(0, 1, 2),
        ];
        let test = vec![t(5, 0, 6), t(5, 1, 6), t(5, 2, 6)];
        let fs = FewShotSplit::new(&train, &test, &[1, 2]);
        assert_eq!(fs.num_buckets(), 3);
        // r1 (freq 1) and r2 (freq 0) land in ≤1; r0 (freq 3) in >2
        assert_eq!(fs.triples(0).len(), 2);
        assert_eq!(fs.triples(1).len(), 0);
        assert_eq!(fs.triples(2).len(), 1);
        let total: usize = (0..fs.num_buckets()).map(|i| fs.triples(i).len()).sum();
        assert_eq!(total, test.len(), "partition must be exhaustive");
    }

    #[test]
    fn bucket_labels_and_counts() {
        let train = vec![t(0, 0, 1)];
        let test = vec![t(2, 0, 3), t(2, 5, 3)];
        let fs = FewShotSplit::new(&train, &test, &[5]);
        assert_eq!(fs.buckets[0].label, "0–5");
        assert_eq!(fs.buckets[1].label, ">5");
        assert_eq!(fs.buckets[0].relations, 2); // r0 and r5 both ≤5
        assert_eq!(fs.buckets[0].triples, 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unordered_boundaries() {
        FewShotSplit::new(&[], &[], &[10, 5]);
    }
}
