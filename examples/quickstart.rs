//! Quickstart: the unified serving API — one `ReasonerBuilder` call goes
//! from dataset to a shareable reasoner; one `Query`/`Answer` protocol
//! covers every model family.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mmkgr::prelude::*;

fn main() {
    // 1. dataset → substrate (TransE init + ConvE shaper) → MMKGR →
    //    Arc<dyn KgReasoner + Send + Sync>, in one builder call. The
    //    harness rides along with the dataset and its eval split.
    let built = ReasonerBuilder::new(Dataset::Wn9ImgTxt, ScaleChoice::Quick)
        .model(ModelChoice::Mmkgr(Variant::Full))
        .build();
    let h = &built.harness;
    println!("dataset: {}", h.kg.stats());
    println!(
        "serving {} over {} entities",
        built.reasoner.name(),
        built.reasoner.num_entities()
    );

    // 2. Answer a single query. Path reasoners attach the reasoning path
    //    behind every candidate — the explainability the paper leads with.
    let t = h.eval_triples[0];
    let rs = built.reasoner.relations();
    let answer = built.reasoner.answer(&Query::new(t.s, t.r).with_top_k(3));
    println!("\nquery ({:?}, {:?}, ?) — gold answer {:?}", t.s, t.r, t.o);
    for (i, c) in answer.ranked.iter().enumerate() {
        let proof = c
            .evidence
            .as_ref()
            .expect("policy reasoners attach evidence");
        println!(
            "  #{} {:?}  score {:.2}  proof ({} hops): {}",
            i + 1,
            c.entity,
            c.score,
            proof.hops,
            proof.render(&rs)
        );
    }

    // 3. Batch serving: a persistent 4-thread WorkerPool sharing the
    //    reasoner Arc (spawned once; reuse it for every batch). Results
    //    are identical to sequential `answer` calls, in query order.
    let queries: Vec<Query> = h
        .eval_triples
        .iter()
        .map(|t| Query::new(t.s, t.r))
        .collect();
    let pool = WorkerPool::new(std::sync::Arc::clone(&built.reasoner), 4);
    let answers = pool.answer_batch(&queries);
    let hit1 = answers
        .iter()
        .zip(&h.eval_triples)
        .filter(|(a, t)| a.top().is_some_and(|c| c.entity == t.o))
        .count();
    println!(
        "\nbatch: {} queries on 4 threads, top-1 hits {}",
        answers.len(),
        hit1
    );

    // 4. The same protocol serves single-hop KGE scorers: reuse the
    //    harness substrate to build ConvE behind the identical surface.
    let conve = build_reasoner(h, ModelChoice::ConvE, ServeConfig::default());
    let a = conve.answer(&Query::new(t.s, t.r).with_top_k(3));
    println!(
        "\n{} answers the same query (no path evidence, scores only):",
        conve.name()
    );
    for (i, c) in a.ranked.iter().enumerate() {
        println!("  #{} {:?}  score {:.2}", i + 1, c.entity, c.score);
    }

    // 5. Filtered link-prediction metrics through the same surface.
    let r = h.eval_reasoner(&built.reasoner);
    println!(
        "\ntest MRR {:.3} | Hits@1 {:.3} | Hits@5 {:.3} | Hits@10 {:.3} ({} queries)",
        r.mrr, r.hits1, r.hits5, r.hits10, r.queries
    );
}
