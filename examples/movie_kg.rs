//! The paper's running example (Fig. 1): a movie multi-modal KG around
//! *Titanic*, where `(Titanic, starred_by, ?)` must be inferred through
//! multi-hop paths such as
//! `Titanic —heroine→ Rose —played_by→ Kate Winslet`.
//!
//! We hand-build the MKG (several films so the task is non-trivial),
//! attach synthetic "image"/"text" features per entity, hold out the
//! `starred_by` facts, and train MMKGR to recover them.
//!
//! ```sh
//! cargo run --release --example movie_kg
//! ```

use mmkgr::datagen; // for modality-like noise
use mmkgr::prelude::*;
use mmkgr_tensor::init::{normal, seeded_rng};
use mmkgr_tensor::Matrix;

const ENTITIES: &[&str] = &[
    "Titanic",            // 0
    "Jack_Dawson",        // 1
    "Rose_Bukater",       // 2
    "James_Cameron",      // 3
    "Leonardo_DiCaprio",  // 4
    "Kate_Winslet",       // 5
    "Avatar",             // 6
    "Jake_Sully",         // 7
    "Sam_Worthington",    // 8
    "Inception",          // 9
    "Cobb",               // 10
    "C_Nolan",            // 11
    "Revolutionary_Road", // 12
    "April_Wheeler",      // 13
    "Frank_Wheeler",      // 14
];

const REL_NAMES: &[&str] = &[
    "hero",
    "heroine",
    "played_by",
    "directs",
    "starred_by",
    "role_creator",
];
const HERO: u32 = 0;
const HEROINE: u32 = 1;
const PLAYED_BY: u32 = 2;
const DIRECTS: u32 = 3;
const STARRED_BY: u32 = 4;
const ROLE_CREATOR: u32 = 5;

fn main() {
    // ---- structural facts -------------------------------------------------
    // The rule the agent must discover: starred_by ≈ hero∘played_by and
    // heroine∘played_by (a character links a film to its actor).
    let train = vec![
        Triple::new(0, HERO, 1),         // Titanic hero Jack
        Triple::new(0, HEROINE, 2),      // Titanic heroine Rose
        Triple::new(1, PLAYED_BY, 4),    // Jack played_by DiCaprio
        Triple::new(2, PLAYED_BY, 5),    // Rose played_by Winslet
        Triple::new(3, DIRECTS, 0),      // Cameron directs Titanic
        Triple::new(1, ROLE_CREATOR, 3), // Jack role_creator Cameron
        Triple::new(2, ROLE_CREATOR, 3),
        // Avatar block (provides starred_by training examples)
        Triple::new(6, HERO, 7),
        Triple::new(7, PLAYED_BY, 8),
        Triple::new(3, DIRECTS, 6),
        Triple::new(6, STARRED_BY, 8), // observed starred_by fact
        Triple::new(7, ROLE_CREATOR, 3),
        // Inception block
        Triple::new(9, HERO, 10),
        Triple::new(10, PLAYED_BY, 4),
        Triple::new(11, DIRECTS, 9),
        Triple::new(9, STARRED_BY, 4), // observed starred_by fact
        Triple::new(10, ROLE_CREATOR, 11),
        // Revolutionary Road block
        Triple::new(12, HEROINE, 13),
        Triple::new(13, PLAYED_BY, 5),
        Triple::new(12, HERO, 14),
        Triple::new(14, PLAYED_BY, 4),
        Triple::new(12, STARRED_BY, 5), // observed starred_by fact
    ];
    // Held out: the Fig. 1 queries.
    let test = vec![
        Triple::new(0, STARRED_BY, 5), // (Titanic, starred_by, Kate Winslet)  — 2 hops
        Triple::new(0, STARRED_BY, 4), // (Titanic, starred_by, DiCaprio)      — 2 hops
        Triple::new(12, STARRED_BY, 4),
    ];
    let valid = vec![Triple::new(9, STARRED_BY, 4)];

    let graph = KnowledgeGraph::from_triples(ENTITIES.len(), REL_NAMES.len(), train.clone(), None);

    // ---- multi-modal auxiliary data ---------------------------------------
    // Synthetic stand-ins for VGG/word2vec features: people share a latent
    // "portrait" signature, films a "poster" signature, so images/texts
    // carry genuine type information (plus noise), as in the paper's Fig. 1.
    let mut rng = seeded_rng(7);
    let is_person = |e: usize| ![0usize, 6, 9, 12].contains(&e);
    let person_proto = normal(&mut rng, 1, 12, 1.0);
    let film_proto = normal(&mut rng, 1, 12, 1.0);
    let mut stacks = Vec::new();
    let mut texts = Matrix::zeros(ENTITIES.len(), 12);
    for e in 0..ENTITIES.len() {
        let proto = if is_person(e) {
            &person_proto
        } else {
            &film_proto
        };
        let mut imgs = Matrix::zeros(3, 12);
        for k in 0..3 {
            for c in 0..12 {
                let noise = normal(&mut rng, 1, 1, 0.3).get(0, 0);
                imgs.set(k, c, proto.get(0, c) + noise);
            }
        }
        stacks.push(imgs);
        for c in 0..12 {
            let noise = normal(&mut rng, 1, 1, 0.3).get(0, 0);
            texts.set(e, c, proto.get(0, c) * 0.8 + noise);
        }
    }
    let modal = ModalBank::new(stacks, texts);
    let kg = MultiModalKG::new("movies", graph, modal, Split { train, valid, test });
    println!("{}", kg.stats());

    // ---- train MMKGR -------------------------------------------------------
    let cfg = MmkgrConfig {
        struct_dim: 16,
        fusion_dim: 16,
        mlb_dim: 16,
        modal_proj_dim: 8,
        epochs: 60,
        batch_size: 16,
        lr: 5e-3,
        rollouts_per_query: 4,
        ..MmkgrConfig::default()
    };
    let engine = RewardEngine::new(&cfg, Some(NoShaper));
    let model = MmkgrModel::new(&kg, cfg, None);
    let mut trainer = Trainer::new(model, engine);
    let report = trainer.train(&kg, 0);
    println!(
        "trained; final rollout success {:.0}%",
        report.epochs.last().unwrap().success_rate * 100.0
    );

    // ---- the Fig. 1 query --------------------------------------------------
    let known = kg.all_known();
    for t in &kg.split.test {
        println!(
            "\nquery ({}, {}, ?) — gold: {}",
            ENTITIES[t.s.index()],
            REL_NAMES[t.r.index()],
            ENTITIES[t.o.index()]
        );
        let q = RolloutQuery {
            source: t.s,
            relation: t.r,
            answer: t.o,
        };
        let outcome = rank_query(&trainer.model, &kg.graph, &q, Some(&known), 8, 3);
        println!(
            "  gold rank: {} (reached: {})",
            outcome.rank, outcome.reached
        );
        let mut paths = beam_search(&trainer.model, &kg.graph, t.s, t.r, 8, 3);
        paths.retain(|p| p.entity == t.o);
        if let Some(p) = paths.first() {
            let names: Vec<String> = p
                .relations
                .iter()
                .map(|r| {
                    let rs = kg.graph.relations();
                    if rs.is_base(*r) {
                        REL_NAMES[r.index()].to_string()
                    } else {
                        format!("{}⁻¹", REL_NAMES[rs.inverse(*r).index()])
                    }
                })
                .collect();
            println!("  explanation: {} hops via {}", p.hops, names.join(" → "));
        } else {
            println!("  (gold not reached by beam)");
        }
    }
    let _ = datagen::GenConfig::tiny(); // keep the facade import exercised
}
