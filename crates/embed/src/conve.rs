//! ConvE (Dettmers et al., 2018) — the score function MMKGR's destination
//! reward uses for reward shaping (Eq. 13: `l(e_s, r_q, e_T)`).
//!
//! The subject and relation embeddings are reshaped to 2-D maps, stacked,
//! convolved (3×3, `C` channels, via im2col + matmul on the tape), passed
//! through an FC layer back to embedding width, and dot-scored against all
//! object embeddings. Trained 1-vs-all with cross-entropy, as in the paper.

use mmkgr_kg::{EntityId, RelationId, Triple, TripleSet};
use mmkgr_nn::{loss::cross_entropy, Adam, Ctx, Embedding, Linear, ParamId, Params};
use mmkgr_tensor::init::{seeded_rng, xavier};
use mmkgr_tensor::{Matrix, Tape, Var};

use crate::scorer::TripleScorer;
use crate::trainer::{batch_indices, KgeTrainConfig};

const KERNEL: usize = 3;

pub struct ConvE {
    pub params: Params,
    pub entities: Embedding,
    pub relations: Embedding,
    filters: ParamId,
    conv_bias: ParamId,
    fc: Linear,
    out_bias: ParamId,
    pub dim: usize,
    img_h: usize,
    img_w: usize,
    channels: usize,
}

impl ConvE {
    /// `dim` must factor as `img_h * img_w` with `img_h, img_w ≥ 3`.
    pub fn new(
        num_entities: usize,
        num_relations: usize,
        img_h: usize,
        img_w: usize,
        channels: usize,
        seed: u64,
    ) -> Self {
        assert!(
            img_h >= 3 && img_w >= KERNEL,
            "image plane too small for 3×3 conv"
        );
        let dim = img_h * img_w;
        let mut params = Params::new();
        let mut rng = seeded_rng(seed);
        let entities = Embedding::new(&mut params, &mut rng, "conve.ent", num_entities, dim);
        let relations = Embedding::new(&mut params, &mut rng, "conve.rel", num_relations, dim);
        let filters = params.add("conve.filters", xavier(&mut rng, KERNEL * KERNEL, channels));
        let conv_bias = params.add("conve.conv_bias", Matrix::zeros(1, channels));
        let (out_h, out_w) = (2 * img_h - KERNEL + 1, img_w - KERNEL + 1);
        let fc = Linear::new(
            &mut params,
            &mut rng,
            "conve.fc",
            out_h * out_w * channels,
            dim,
            true,
        );
        let out_bias = params.add("conve.out_bias", Matrix::zeros(1, num_entities));
        ConvE {
            params,
            entities,
            relations,
            filters,
            conv_bias,
            fc,
            out_bias,
            dim,
            img_h,
            img_w,
            channels,
        }
    }

    fn conv_geometry(&self) -> (usize, usize) {
        (2 * self.img_h - KERNEL + 1, self.img_w - KERNEL + 1)
    }

    /// Flat im2col indices for a batch of stacked `(2h)×w` images laid out
    /// as rows of a `B×2d` matrix.
    fn im2col_indices(&self, batch: usize) -> Vec<u32> {
        let (out_h, out_w) = self.conv_geometry();
        let w = self.img_w;
        let row_len = 2 * self.dim;
        let mut idx = Vec::with_capacity(batch * out_h * out_w * KERNEL * KERNEL);
        for b in 0..batch {
            let base = (b * row_len) as u32;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    for ky in 0..KERNEL {
                        for kx in 0..KERNEL {
                            idx.push(base + ((oy + ky) * w + (ox + kx)) as u32);
                        }
                    }
                }
            }
        }
        idx
    }

    /// Tape forward: features of `(s, r)` pairs, `B×dim`.
    fn features(&self, ctx: &Ctx<'_>, s_idx: &[usize], r_idx: &[usize]) -> Var {
        let t = ctx.tape;
        let batch = s_idx.len();
        let s = self.entities.forward(ctx, s_idx);
        let r = self.relations.forward(ctx, r_idx);
        let stacked = t.concat_cols(s, r); // row-major == s-image above r-image
        let (out_h, out_w) = self.conv_geometry();
        let patches_rows = batch * out_h * out_w;
        let idx = self.im2col_indices(batch);
        let patches = t.gather_flat(stacked, &idx, patches_rows, KERNEL * KERNEL);
        let conv = t.matmul(patches, ctx.p(self.filters));
        let conv = t.add(conv, ctx.p(self.conv_bias));
        let conv = t.relu(conv);
        let flat = t.reshape(conv, batch, out_h * out_w * self.channels);
        let feat = self.fc.forward(ctx, flat);
        t.relu(feat)
    }

    /// 1-vs-all training with cross-entropy over all entities.
    pub fn train(
        &mut self,
        triples: &[Triple],
        _known: &TripleSet,
        cfg: &KgeTrainConfig,
    ) -> Vec<f32> {
        let mut rng = seeded_rng(cfg.seed);
        let mut opt = Adam::new(cfg.lr);
        let mut trace = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in batch_indices(triples.len(), cfg.batch_size, &mut rng) {
                let s_idx: Vec<usize> = batch.iter().map(|&i| triples[i].s.index()).collect();
                let r_idx: Vec<usize> = batch.iter().map(|&i| triples[i].r.index()).collect();
                let o_idx: Vec<usize> = batch.iter().map(|&i| triples[i].o.index()).collect();
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, &self.params);
                let feat = self.features(&ctx, &s_idx, &r_idx);
                let ent_t = tape.transpose(ctx.p(self.entities.table));
                let logits = tape.matmul(feat, ent_t);
                let logits = tape.add(logits, ctx.p(self.out_bias));
                let loss = cross_entropy(&tape, logits, &o_idx);
                epoch_loss += tape.scalar(loss);
                batches += 1;
                let grads = tape.backward(loss);
                ctx.into_leases().accumulate(&mut self.params, &grads);
                opt.step(&mut self.params);
                self.params.zero_grads();
            }
            trace.push(epoch_loss / batches.max(1) as f32);
        }
        trace
    }

    /// Tape-free forward of one `(s, r)` pair — the hot path for reward
    /// shaping during RL rollouts. Mirrors [`ConvE::features`] exactly
    /// (agreement is asserted by a unit test).
    pub fn features_raw(&self, s: EntityId, r: RelationId) -> Vec<f32> {
        let es = self.entities.row(&self.params, s.index());
        let er = self.relations.row(&self.params, r.index());
        let mut stacked = Vec::with_capacity(2 * self.dim);
        stacked.extend_from_slice(es);
        stacked.extend_from_slice(er);

        let (out_h, out_w) = self.conv_geometry();
        let filters = self.params.value(self.filters);
        let cbias = self.params.value(self.conv_bias);
        let w = self.img_w;
        let mut conv_out = Vec::with_capacity(out_h * out_w * self.channels);
        for oy in 0..out_h {
            for ox in 0..out_w {
                for c in 0..self.channels {
                    let mut acc = cbias.get(0, c);
                    for ky in 0..KERNEL {
                        for kx in 0..KERNEL {
                            acc += stacked[(oy + ky) * w + (ox + kx)]
                                * filters.get(ky * KERNEL + kx, c);
                        }
                    }
                    conv_out.push(acc.max(0.0));
                }
            }
        }
        // FC + ReLU
        let fcw = self.params.value(self.fc.w);
        let fcb = self.fc.b.map(|b| self.params.value(b));
        let mut feat = vec![0.0f32; self.dim];
        for (i, &x) in conv_out.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            let wrow = fcw.row(i);
            for (f, &wv) in feat.iter_mut().zip(wrow) {
                *f += x * wv;
            }
        }
        if let Some(b) = fcb {
            for (f, &bv) in feat.iter_mut().zip(b.row(0)) {
                *f += bv;
            }
        }
        for f in &mut feat {
            *f = f.max(0.0);
        }
        feat
    }
}

impl TripleScorer for ConvE {
    fn score(&self, s: EntityId, r: RelationId, o: EntityId) -> f32 {
        let feat = self.features_raw(s, r);
        let eo = self.entities.row(&self.params, o.index());
        let bias = self.params.value(self.out_bias).get(0, o.index());
        feat.iter().zip(eo).map(|(a, b)| a * b).sum::<f32>() + bias
    }

    fn score_all_objects(&self, s: EntityId, r: RelationId, n: usize, out: &mut Vec<f32>) {
        let feat = self.features_raw(s, r);
        let table = self.params.value(self.entities.table);
        let bias = self.params.value(self.out_bias);
        crate::scorer::prepare_score_buffer(out, n);
        for o in 0..n {
            let row = table.row(o);
            let dot: f32 = feat.iter().zip(row).map(|(a, b)| a * b).sum();
            out.push(dot + bias.get(0, o));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_forward_matches_tape_forward() {
        let model = ConvE::new(5, 3, 3, 4, 4, 0);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &model.params);
        let feat_tape = model.features(&ctx, &[2], &[1]);
        let tape_row = tape.value_cloned(feat_tape);
        let raw = model.features_raw(EntityId(2), RelationId(1));
        for (a, b) in tape_row.row(0).iter().zip(&raw) {
            assert!((a - b).abs() < 1e-4, "tape {a} vs raw {b}");
        }
    }

    #[test]
    fn vectorized_score_all_objects_matches_pointwise() {
        let model = ConvE::new(7, 3, 3, 4, 4, 3);
        let mut out = Vec::new();
        for r in 0..3u32 {
            model.score_all_objects(EntityId(2), RelationId(r), 7, &mut out);
            assert_eq!(out.len(), 7);
            for (o, &v) in out.iter().enumerate() {
                let direct = model.score(EntityId(2), RelationId(r), EntityId(o as u32));
                assert!(
                    (v - direct).abs() < 1e-5,
                    "vectorized {v} vs pointwise {direct} at o={o}"
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 0, 3),
            Triple::new(3, 0, 0),
        ];
        let known = TripleSet::from_triples(&triples);
        let mut model = ConvE::new(4, 1, 3, 4, 4, 1);
        let cfg = KgeTrainConfig {
            epochs: 40,
            batch_size: 4,
            lr: 5e-3,
            margin: 1.0,
            seed: 2,
        };
        let trace = model.train(&triples, &known, &cfg);
        assert!(
            trace.last().unwrap() < &trace[0],
            "{:?}",
            (trace.first(), trace.last())
        );
    }

    #[test]
    fn trained_model_ranks_gold_higher() {
        let triples = vec![Triple::new(0, 0, 1), Triple::new(2, 0, 3)];
        let known = TripleSet::from_triples(&triples);
        let mut model = ConvE::new(4, 1, 3, 4, 4, 3);
        let cfg = KgeTrainConfig {
            epochs: 120,
            batch_size: 2,
            lr: 5e-3,
            margin: 1.0,
            seed: 4,
        };
        model.train(&triples, &known, &cfg);
        let gold = model.score(EntityId(0), RelationId(0), EntityId(1));
        let other = model.score(EntityId(0), RelationId(0), EntityId(2));
        assert!(gold > other, "gold {gold} !> other {other}");
    }

    #[test]
    fn probability_in_unit_interval() {
        let model = ConvE::new(4, 1, 3, 3, 2, 5);
        let p = model.probability(EntityId(0), RelationId(0), EntityId(1));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_image_plane() {
        let _ = ConvE::new(4, 1, 2, 2, 2, 0);
    }
}
