//! End-to-end tests for the HTTP front end (`mmkgr::core::serve::http`):
//!
//! - **Parity**: `POST /v1/answer` with name-based entities returns the
//!   same ranked candidates + evidence as the in-process `KgReasoner`
//!   for the same query, for both model families; `/v1/answer_batch`
//!   and `/v1/explain` agree with their in-process pipelines.
//! - **Protocol**: unknown routes/methods/names produce the typed
//!   `ApiError` codes with the contract statuses; `/metrics` counts the
//!   traffic.
//! - **CLI smoke**: `mmkgr serve` boots a ≥2-model registry on an
//!   ephemeral port, answers over HTTP, and dies cleanly.

use std::io::BufRead;
use std::net::SocketAddr;
use std::sync::Arc;

use mmkgr::core::serve::http::request;
use mmkgr::core::serve::protocol::{AnswerBatchResponse, ExplainResponse, MetricsResponse};
use mmkgr::core::serve::{
    AnswerBatchRequest, AnswerRequest, ExplainRequest, HttpServer, HttpServerConfig, KgReasoner,
    NamedQuery, Query, ServeConfig, WireAnswer,
};
use mmkgr::prelude::*;

const BEAM: usize = 8;
const STEPS: usize = 3;

fn quick_harness() -> Harness {
    Harness::new({
        let mut c = HarnessConfig::new(Dataset::Tiny, ScaleChoice::Quick);
        c.rl_epochs = 2;
        c.kge_epochs = 2;
        c.max_eval = 10;
        c
    })
}

fn named(t: &Triple) -> NamedQuery {
    NamedQuery::new(format!("e{}", t.s.0), format!("r{}", t.r.0))
        .with_beam(BEAM)
        .with_steps(STEPS)
}

#[test]
fn http_answers_match_in_process_reasoners() {
    let h = quick_harness();
    let registry = Arc::new(build_registry(
        &h,
        &[ModelChoice::Mmkgr(Variant::Full), ModelChoice::ConvE],
        ServeConfig {
            beam_width: BEAM,
            max_steps: STEPS,
            ..ServeConfig::default()
        },
    ));
    assert_eq!(registry.len(), 2, "acceptance: at least two named models");
    let server = HttpServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&registry),
        HttpServerConfig::default(),
    )
    .expect("bind")
    .spawn();
    let addr = server.addr();

    // --- answer parity, both families --------------------------------
    for model in ["MMKGR", "ConvE"] {
        let (_, reasoner) = registry.get(Some(model)).unwrap();
        for t in h.eval_triples.iter().take(4) {
            let body = serde_json::to_string(&AnswerRequest {
                model: Some(model.to_string()),
                query: named(t).with_top_k(7),
            })
            .unwrap();
            let (status, resp) = request(addr, "POST", "/v1/answer", &body).unwrap();
            assert_eq!(status, 200, "{resp}");
            let wire: WireAnswer = serde_json::from_str(&resp).unwrap();
            assert_eq!(wire.model, model);
            assert_eq!(wire.protocol, "v1");

            let direct = reasoner.answer(
                &Query::new(t.s, t.r)
                    .with_top_k(7)
                    .with_beam(BEAM)
                    .with_steps(STEPS),
            );
            assert_eq!(
                wire.ranked.len(),
                direct.ranked.len(),
                "{model}: HTTP and in-process rank the same candidates"
            );
            for (w, d) in wire.ranked.iter().zip(&direct.ranked) {
                assert_eq!(w.entity, format!("e{}", d.entity.0), "{model}");
                assert!((w.score - d.score).abs() < 1e-6, "{model}");
                match (&w.evidence, &d.evidence) {
                    (Some(we), Some(de)) => {
                        assert_eq!(we.hops, de.hops);
                        assert_eq!(we.path.len(), de.relations.len());
                        assert!((we.logp - de.logp).abs() < 1e-6);
                    }
                    (None, None) => {}
                    other => panic!("{model}: evidence mismatch {other:?}"),
                }
            }
        }
    }

    // --- batch parity -------------------------------------------------
    let queries: Vec<NamedQuery> = h.eval_triples.iter().take(6).map(named).collect();
    let body = serde_json::to_string(&AnswerBatchRequest {
        model: None,
        queries: queries.clone(),
    })
    .unwrap();
    let (status, resp) = request(addr, "POST", "/v1/answer_batch", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let batch: AnswerBatchResponse = serde_json::from_str(&resp).unwrap();
    assert_eq!(batch.answers.len(), queries.len());
    for (q, got) in queries.iter().zip(&batch.answers) {
        let one = registry.answer_named(q.clone()).unwrap();
        assert_eq!(*got, one, "batch equals single-answer pipeline");
    }

    // --- explain parity ----------------------------------------------
    let t = h.eval_triples[0];
    let body = serde_json::to_string(&ExplainRequest {
        model: None,
        query: named(&t).with_top_k(5),
    })
    .unwrap();
    let (status, resp) = request(addr, "POST", "/v1/explain", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let explain: ExplainResponse = serde_json::from_str(&resp).unwrap();
    let (_, reasoner) = registry.get(Some("MMKGR")).unwrap();
    let direct = reasoner
        .explain(
            &Query::new(t.s, t.r)
                .with_top_k(5)
                .with_beam(BEAM)
                .with_steps(STEPS),
        )
        .unwrap();
    assert_eq!(explain.paths.len(), direct.len());
    for (w, d) in explain.paths.iter().zip(&direct) {
        assert_eq!(w.entity, format!("e{}", d.entity.0));
        assert!((w.logp - d.logp).abs() < 1e-6);
        assert_eq!(w.hops, d.hops);
        assert_eq!(w.path.len(), d.relations.len());
    }

    // --- protocol failure modes --------------------------------------
    let (status, resp) = request(addr, "POST", "/v1/answer", "{oops").unwrap();
    assert_eq!(status, 400);
    assert!(resp.contains("malformed_request"), "{resp}");
    let (status, resp) = request(addr, "DELETE", "/v1/answer", "").unwrap();
    assert_eq!(status, 405);
    assert!(resp.contains("method_not_allowed"), "{resp}");
    let (status, resp) = request(addr, "GET", "/v1/nope", "").unwrap();
    assert_eq!(status, 404);
    assert!(resp.contains("unknown_route"), "{resp}");

    // --- metrics observed the traffic --------------------------------
    let (status, resp) = request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    let metrics: MetricsResponse = serde_json::from_str(&resp).unwrap();
    let answer_row = metrics
        .routes
        .iter()
        .find(|r| r.route == "/v1/answer")
        .unwrap();
    assert!(answer_row.requests >= 9, "{answer_row:?}");
    assert!(answer_row.latency_ns_total > 0);
    assert_eq!(metrics.models.len(), 2);

    server.shutdown();
    assert!(
        request(addr, "GET", "/healthz", "").is_err(),
        "port must stop answering after shutdown"
    );
}

#[test]
fn cli_serve_smoke() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_mmkgr"))
        .args([
            "serve",
            "--dataset",
            "tiny",
            "--size",
            "quick",
            "--models",
            "MMKGR,ConvE",
            "--port",
            "0",
            "--rl-epochs",
            "1",
            "--kge-epochs",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("mmkgr serve spawns");

    // Watchdog: never let a wedged server hang the test harness.
    let pid = child.id();
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(300));
        let _ = Command::new("kill").arg(pid.to_string()).status();
    });

    let stdout = child.stdout.take().expect("piped stdout");
    let mut addr: Option<SocketAddr> = None;
    for line in std::io::BufReader::new(stdout).lines() {
        let line = line.expect("server stdout line");
        if let Some(rest) = line.strip_prefix("listening on http://") {
            addr = Some(rest.trim().parse().expect("addr parses"));
            break;
        }
    }
    let addr = addr.expect("server printed its address");

    let (status, body) = request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    let (status, body) = request(addr, "GET", "/v1/models", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("\"MMKGR\"") && body.contains("\"ConvE\""),
        "{body}"
    );

    let (status, body) = request(
        addr,
        "POST",
        "/v1/answer",
        r#"{"query": {"source": "e0", "relation": "r0", "beam": 4, "steps": 2}}"#,
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let answer: WireAnswer = serde_json::from_str(&body).unwrap();
    assert_eq!(answer.model, "MMKGR");

    // Name-resolution errors surface over the CLI-booted server too.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/answer",
        r#"{"query": {"source": "not-an-entity", "relation": "r0"}}"#,
    )
    .unwrap();
    assert_eq!(status, 404);
    assert!(body.contains("unknown_entity"), "{body}");

    child.kill().expect("kill server");
    let _ = child.wait();
}
