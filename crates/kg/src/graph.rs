//! CSR-backed knowledge-graph adjacency, with an epoch-versioned
//! copy-on-write delta overlay for live mutation.
//!
//! The graph stores each training triple twice: once as `(s, r, o)` and once
//! as `(o, inverse(r), s)`, so RL walkers can traverse edges both ways — the
//! standard MINERVA-style construction the paper builds on.
//!
//! # Live mutation
//!
//! The base [`CsrStore`] stays immutable forever. [`KnowledgeGraph::apply_ops`]
//! returns a *new* graph value sharing the base store (`Arc`) plus a small
//! [`GraphDelta`]: fully rebuilt `(relation, target)`-sorted edge buckets for
//! the touched entities only, and added/deleted base-triple sets. Every
//! accessor consults the delta bucket first, so a mutated graph presents
//! exactly the same `&[Edge]` slice API — beam engines, subgraph extraction,
//! and exhaustive scorers are oblivious to whether they read base or overlay.
//!
//! Each applied batch bumps the graph's **epoch**. Readers holding an
//! `Arc<KnowledgeGraph>` pin their epoch: a concurrent mutation publishes a
//! new value and can never change what an in-flight query observes.
//! [`KnowledgeGraph::fold`] compacts the overlay back into a fresh contiguous
//! CSR (same epoch — the logical content is unchanged), which is what the
//! serving layer snapshots and truncates the WAL against.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ids::{EntityId, RelationId, RelationSpace};
use crate::store::wal::TripleOp;
use crate::store::CsrStore;
use crate::triple::{Triple, TripleSet};

/// One outgoing edge `(relation, target)`.
///
/// `repr(C)`: two `u32`s, no padding — edge arrays are stored as raw byte
/// sections in `.mmkg` snapshots and viewed back zero-copy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(C)]
pub struct Edge {
    pub relation: RelationId,
    pub target: EntityId,
}

/// Why a mutation batch was rejected (the whole batch is atomic: one bad
/// op rejects everything, nothing is applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    EntityOutOfRange {
        entity: EntityId,
        num_entities: usize,
    },
    /// Mutations address base-orientation triples only; inverse and NO_OP
    /// relation ids are derived storage, not facts.
    NotBaseRelation {
        relation: RelationId,
        num_base: usize,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::EntityOutOfRange {
                entity,
                num_entities,
            } => write!(
                f,
                "entity {entity} out of range (graph has {num_entities} entities)"
            ),
            MutationError::NotBaseRelation { relation, num_base } => write!(
                f,
                "relation {relation} is not a base relation (< {num_base}); \
                 mutations address base-orientation triples only"
            ),
        }
    }
}

impl std::error::Error for MutationError {}

/// What one applied batch actually changed (no-op inserts of existing
/// triples and deletes of absent triples are skipped, not errors).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Triples newly present after the batch.
    pub inserted: usize,
    /// Triples newly absent after the batch.
    pub deleted: usize,
    /// Entities whose edge buckets changed (sorted, deduped) — the key
    /// for targeted cache invalidation.
    pub touched: Vec<EntityId>,
}

/// The copy-on-write overlay: rebuilt buckets for touched entities plus
/// the logical added/deleted sets relative to the base store.
#[derive(Clone, Debug, Default)]
struct GraphDelta {
    added: BTreeSet<Triple>,
    deleted: BTreeSet<Triple>,
    /// Full replacement buckets, sorted by `(relation, target)` exactly
    /// like base buckets, for every entity any op touched.
    buckets: HashMap<u32, Vec<Edge>>,
}

impl GraphDelta {
    fn bucket(&self, e: EntityId) -> Option<&[Edge]> {
        self.buckets.get(&e.0).map(|v| v.as_slice())
    }
}

/// Immutable CSR adjacency over a set of triples (plus inverses).
///
/// Backed by a shared [`CsrStore`] (see [`crate::store`]), whose flat arrays
/// may be heap-owned or zero-copy views into a memory-mapped snapshot, and an
/// optional [`GraphDelta`] overlay (see the module docs). Cloning is cheap —
/// two `Arc` bumps — which is what makes epoch publication race-free.
#[derive(Clone, Debug)]
pub struct KnowledgeGraph {
    store: Arc<CsrStore>,
    delta: Option<Arc<GraphDelta>>,
    epoch: u64,
}

// Serializes exactly as its backing store (same field set the pre-store
// struct had), so the wire format is unchanged by the storage refactor.
// A graph carrying a delta folds first: the serialized form is always the
// full logical graph.
impl Serialize for KnowledgeGraph {
    fn serialize_value(&self) -> serde::Value {
        if self.delta.is_some() {
            self.fold().store.serialize_value()
        } else {
            self.store.serialize_value()
        }
    }
}

impl Deserialize for KnowledgeGraph {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        CsrStore::deserialize_value(v).map(KnowledgeGraph::from_store)
    }
}

impl KnowledgeGraph {
    /// Build from base triples. Inverse edges are added automatically.
    ///
    /// `max_out_degree` (if `Some`) truncates each entity's edge list to
    /// bound the RL action space, keeping the first edges in insertion
    /// order after sorting by `(relation, target)` — mirrors the action-
    /// space truncation used by MINERVA-family implementations.
    pub fn from_triples(
        num_entities: usize,
        num_base_relations: usize,
        triples: Vec<Triple>,
        max_out_degree: Option<usize>,
    ) -> Self {
        Self::from_store(CsrStore::from_triples(
            num_entities,
            num_base_relations,
            triples,
            max_out_degree,
        ))
    }

    /// Wrap an already-built (e.g. snapshot-loaded) CSR store.
    pub fn from_store(store: CsrStore) -> Self {
        KnowledgeGraph {
            store: Arc::new(store),
            delta: None,
            epoch: 0,
        }
    }

    /// The backing CSR store (flat arrays; snapshot writer input).
    ///
    /// Base arrays only — a graph carrying a delta overlay has edges the
    /// store does not know about. Snapshot writers call [`Self::fold`]
    /// first; read-only consumers that need the live view go through the
    /// graph's own accessors.
    #[inline]
    pub fn store(&self) -> &CsrStore {
        &self.store
    }

    /// Monotone version counter: 0 at construction, +1 per applied
    /// mutation batch. Readers pinning an `Arc<KnowledgeGraph>` pin this.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Is a delta overlay pending (i.e. would [`Self::fold`] do work)?
    #[inline]
    pub fn has_delta(&self) -> bool {
        self.delta.is_some()
    }

    /// Size of the pending overlay in logical triples (added + deleted) —
    /// the serving layer's compaction trigger.
    pub fn delta_len(&self) -> usize {
        self.delta
            .as_ref()
            .map(|d| d.added.len() + d.deleted.len())
            .unwrap_or(0)
    }

    #[inline]
    pub fn num_entities(&self) -> usize {
        self.store.num_entities()
    }

    /// Relation id layout (base / inverse / NO_OP).
    #[inline]
    pub fn relations(&self) -> RelationSpace {
        self.store.relations()
    }

    /// All outgoing edges of `e` (inverse edges included), sorted.
    #[inline]
    pub fn neighbors(&self, e: EntityId) -> &[Edge] {
        if let Some(d) = &self.delta {
            if let Some(bucket) = d.bucket(e) {
                return bucket;
            }
        }
        self.store.neighbors(e)
    }

    /// Only the base-relation edges of `e` (a prefix of its bucket).
    #[inline]
    pub fn forward_neighbors(&self, e: EntityId) -> &[Edge] {
        let bucket = self.neighbors(e);
        let split = bucket.partition_point(|edge| self.relations().is_base(edge.relation));
        &bucket[..split]
    }

    /// Only the synthetic inverse edges of `e` (the bucket's suffix).
    #[inline]
    pub fn inverse_neighbors(&self, e: EntityId) -> &[Edge] {
        let bucket = self.neighbors(e);
        let split = bucket.partition_point(|edge| self.relations().is_base(edge.relation));
        &bucket[split..]
    }

    #[inline]
    pub fn out_degree(&self, e: EntityId) -> usize {
        self.neighbors(e).len()
    }

    /// Total directed edges (2× the base triples, before truncation),
    /// adjusted for the delta overlay.
    pub fn num_edges(&self) -> usize {
        let base = self.store.num_edges() as i64;
        let net = self
            .delta
            .as_ref()
            .map(|d| 2 * (d.added.len() as i64 - d.deleted.len() as i64))
            .unwrap_or(0);
        (base + net).max(0) as usize
    }

    /// The base triples the graph was built from (snapshot-era facts; does
    /// **not** reflect the delta overlay — see [`Self::logical_triples`]).
    pub fn triples(&self) -> &[Triple] {
        self.store.triples()
    }

    /// The full logical triple set: base triples minus deletions plus
    /// additions, sorted and deduped. This is what compaction folds and
    /// what a fresh-built equivalent graph would be constructed from.
    pub fn logical_triples(&self) -> Vec<Triple> {
        match &self.delta {
            None => self.store.triples().to_vec(),
            Some(d) => {
                let mut out: Vec<Triple> = self
                    .store
                    .triples()
                    .iter()
                    .copied()
                    .filter(|t| !d.deleted.contains(t))
                    .collect();
                out.extend(d.added.iter().copied());
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// Membership set over the logical base triples (delta-aware).
    pub fn triple_set(&self) -> TripleSet {
        match &self.delta {
            None => TripleSet::from_triples(self.store.triples()),
            Some(_) => TripleSet::from_triples(&self.logical_triples()),
        }
    }

    /// Does the edge `(s, r, o)` exist (r may be base or inverse)?
    pub fn has_edge(&self, s: EntityId, r: RelationId, o: EntityId) -> bool {
        self.neighbors(s)
            .binary_search_by_key(&(r, o), |e| (e.relation, e.target))
            .is_ok()
    }

    /// Targets reachable from `s` via relation `r` (base or inverse).
    pub fn targets(&self, s: EntityId, r: RelationId) -> impl Iterator<Item = EntityId> + '_ {
        let bucket = self.neighbors(s);
        let start = bucket.partition_point(|e| e.relation < r);
        bucket[start..]
            .iter()
            .take_while(move |e| e.relation == r)
            .map(|e| e.target)
    }

    /// Mean out-degree — a sparsity diagnostic used by the harness.
    pub fn mean_out_degree(&self) -> f64 {
        if self.num_entities() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_entities() as f64
        }
    }

    /// Largest action space any walker will see.
    pub fn max_out_degree(&self) -> usize {
        let delta_max = match &self.delta {
            Some(d) => d.buckets.values().map(|b| b.len()).max().unwrap_or(0),
            None => 0,
        };
        let base_max = self
            .store
            .offsets_slice()
            .windows(2)
            .enumerate()
            .filter(|(e, _)| {
                self.delta
                    .as_ref()
                    .map(|d| !d.buckets.contains_key(&(*e as u32)))
                    .unwrap_or(true)
            })
            .map(|(_, w)| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        base_max.max(delta_max)
    }

    /// Rebuild the full sorted edge bucket of `e` under the given overlay
    /// sets. Base edges survive unless their base-orientation triple is
    /// deleted; added triples contribute a forward and/or inverse edge.
    fn rebuild_bucket(
        &self,
        e: EntityId,
        added: &BTreeSet<Triple>,
        deleted: &BTreeSet<Triple>,
    ) -> Vec<Edge> {
        let rs = self.relations();
        let mut edges: Vec<Edge> = self
            .store
            .neighbors(e)
            .iter()
            .copied()
            .filter(|edge| {
                let t = if rs.is_base(edge.relation) {
                    Triple {
                        s: e,
                        r: edge.relation,
                        o: edge.target,
                    }
                } else if rs.is_inverse(edge.relation) {
                    Triple {
                        s: edge.target,
                        r: rs.inverse(edge.relation),
                        o: e,
                    }
                } else {
                    return true; // NO_OP edges are never mutated
                };
                !deleted.contains(&t)
            })
            .collect();
        for &t in added {
            if t.s == e {
                edges.push(Edge {
                    relation: t.r,
                    target: t.o,
                });
            }
            if t.o == e {
                edges.push(Edge {
                    relation: rs.inverse(t.r),
                    target: t.s,
                });
            }
        }
        edges.sort_unstable_by_key(|edge| (edge.relation, edge.target));
        edges.dedup();
        edges
    }

    /// Apply one atomic batch of mutations, returning the successor graph
    /// (epoch + 1) and what actually changed. `self` is untouched — this
    /// is the copy-on-write publication point. Inserting a triple that
    /// already exists (or deleting one that does not) is a no-op, not an
    /// error; out-of-range ids and non-base relations reject the whole
    /// batch with nothing applied.
    pub fn apply_ops(
        &self,
        ops: &[TripleOp],
    ) -> Result<(KnowledgeGraph, MutationStats), MutationError> {
        let rs = self.relations();
        let n = self.num_entities();
        for op in ops {
            let t = op.triple();
            for e in [t.s, t.o] {
                if e.index() >= n {
                    return Err(MutationError::EntityOutOfRange {
                        entity: e,
                        num_entities: n,
                    });
                }
            }
            if !rs.is_base(t.r) {
                return Err(MutationError::NotBaseRelation {
                    relation: t.r,
                    num_base: rs.base(),
                });
            }
        }

        let (mut added, mut deleted) = match &self.delta {
            Some(d) => (d.added.clone(), d.deleted.clone()),
            None => (BTreeSet::new(), BTreeSet::new()),
        };
        let mut stats = MutationStats::default();
        let mut touched: BTreeSet<EntityId> = BTreeSet::new();
        for op in ops {
            let t = op.triple();
            let present =
                added.contains(&t) || (self.store.has_edge(t.s, t.r, t.o) && !deleted.contains(&t));
            match op {
                TripleOp::Insert(_) if !present => {
                    if !deleted.remove(&t) {
                        added.insert(t);
                    }
                    stats.inserted += 1;
                    touched.insert(t.s);
                    touched.insert(t.o);
                }
                TripleOp::Delete(_) if present => {
                    if !added.remove(&t) {
                        deleted.insert(t);
                    }
                    stats.deleted += 1;
                    touched.insert(t.s);
                    touched.insert(t.o);
                }
                _ => {} // idempotent no-op
            }
        }

        let mut buckets = match &self.delta {
            Some(d) => d.buckets.clone(),
            None => HashMap::new(),
        };
        for &e in &touched {
            buckets.insert(e.0, self.rebuild_bucket(e, &added, &deleted));
        }
        stats.touched = touched.into_iter().collect();

        let delta = (!added.is_empty() || !deleted.is_empty() || !buckets.is_empty())
            .then(|| {
                Arc::new(GraphDelta {
                    added,
                    deleted,
                    buckets,
                })
            })
            .or_else(|| self.delta.clone());
        Ok((
            KnowledgeGraph {
                store: Arc::clone(&self.store),
                delta,
                epoch: self.epoch + 1,
            },
            stats,
        ))
    }

    /// Compact the delta overlay into a fresh contiguous CSR store (the
    /// per-entity edge view is preserved exactly — buckets are copied, not
    /// rebuilt, so action-space truncation decisions survive). The epoch
    /// is unchanged: the logical content is identical. A delta-free graph
    /// folds to a cheap clone.
    pub fn fold(&self) -> KnowledgeGraph {
        let delta = match &self.delta {
            None => return self.clone(),
            Some(d) => d,
        };
        let n = self.num_entities();
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut edges: Vec<Edge> = Vec::with_capacity(self.num_edges());
        offsets.push(0);
        for e in 0..n {
            let id = EntityId(e as u32);
            let bucket = delta.bucket(id).unwrap_or_else(|| self.store.neighbors(id));
            edges.extend_from_slice(bucket);
            offsets.push(edges.len() as u32);
        }
        let triples = self.logical_triples();
        let store = CsrStore::from_parts(
            n,
            self.relations(),
            offsets.into(),
            edges.into(),
            triples.into(),
        )
        .expect("folded CSR preserves every structural invariant");
        KnowledgeGraph {
            store: Arc::new(store),
            delta: None,
            epoch: self.epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        // 0 -r0-> 1, 1 -r1-> 2, 0 -r1-> 2
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 1, 2),
            Triple::new(0, 1, 2),
        ];
        KnowledgeGraph::from_triples(3, 2, triples, None)
    }

    #[test]
    fn edge_counts_include_inverses() {
        let g = toy();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(EntityId(0)), 2);
        assert_eq!(g.out_degree(EntityId(1)), 2); // inverse of r0 + forward r1
        assert_eq!(g.out_degree(EntityId(2)), 2); // two inverse edges
    }

    #[test]
    fn neighbors_sorted_and_correct() {
        let g = toy();
        let n0 = g.neighbors(EntityId(0));
        assert_eq!(
            n0[0],
            Edge {
                relation: RelationId(0),
                target: EntityId(1)
            }
        );
        assert_eq!(
            n0[1],
            Edge {
                relation: RelationId(1),
                target: EntityId(2)
            }
        );
    }

    #[test]
    fn inverse_edges_use_inverse_relation_ids() {
        let g = toy();
        let rs = g.relations();
        // entity 1 has inverse edge back to 0 via inverse(r0) = r0 + 2 = r2
        assert!(g.has_edge(EntityId(1), rs.inverse(RelationId(0)), EntityId(0)));
    }

    #[test]
    fn targets_iterator_filters_by_relation() {
        let g = toy();
        let t: Vec<_> = g.targets(EntityId(0), RelationId(1)).collect();
        assert_eq!(t, vec![EntityId(2)]);
        let none: Vec<_> = g.targets(EntityId(2), RelationId(0)).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn truncation_caps_action_space() {
        let triples: Vec<Triple> = (1..=10).map(|o| Triple::new(0, 0, o)).collect();
        let g = KnowledgeGraph::from_triples(11, 1, triples, Some(4));
        assert_eq!(g.out_degree(EntityId(0)), 4);
        assert_eq!(g.max_out_degree(), 4);
    }

    #[test]
    fn has_edge_negative() {
        let g = toy();
        assert!(!g.has_edge(EntityId(0), RelationId(0), EntityId(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_entities() {
        let _ = KnowledgeGraph::from_triples(2, 1, vec![Triple::new(0, 0, 5)], None);
    }

    #[test]
    #[should_panic(expected = "base relation")]
    fn rejects_inverse_relation_in_input() {
        let _ = KnowledgeGraph::from_triples(3, 1, vec![Triple::new(0, 1, 2)], None);
    }

    #[test]
    fn empty_entity_has_no_neighbors() {
        let g = KnowledgeGraph::from_triples(4, 1, vec![Triple::new(0, 0, 1)], None);
        assert_eq!(g.out_degree(EntityId(3)), 0);
        assert!(g.neighbors(EntityId(3)).is_empty());
    }

    #[test]
    fn mean_degree() {
        let g = toy();
        assert!((g.mean_out_degree() - 2.0).abs() < 1e-9);
    }

    // ------------------------------------------------ delta overlay tests

    #[test]
    fn insert_is_visible_in_both_directions() {
        let g = toy();
        let (g2, stats) = g
            .apply_ops(&[TripleOp::Insert(Triple::new(2, 0, 0))])
            .unwrap();
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.deleted, 0);
        assert_eq!(stats.touched, vec![EntityId(0), EntityId(2)]);
        assert_eq!(g2.epoch(), 1);
        assert!(g2.has_edge(EntityId(2), RelationId(0), EntityId(0)));
        let rs = g2.relations();
        assert!(g2.has_edge(EntityId(0), rs.inverse(RelationId(0)), EntityId(2)));
        assert_eq!(g2.num_edges(), 8);
        // The original graph is untouched: epoch pinning works.
        assert!(!g.has_edge(EntityId(2), RelationId(0), EntityId(0)));
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.epoch(), 0);
    }

    #[test]
    fn delete_removes_both_directions() {
        let g = toy();
        let (g2, stats) = g
            .apply_ops(&[TripleOp::Delete(Triple::new(0, 0, 1))])
            .unwrap();
        assert_eq!(stats.deleted, 1);
        assert!(!g2.has_edge(EntityId(0), RelationId(0), EntityId(1)));
        let rs = g2.relations();
        assert!(!g2.has_edge(EntityId(1), rs.inverse(RelationId(0)), EntityId(0)));
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(g2.out_degree(EntityId(0)), 1);
        // Untouched entity buckets still come from the base store.
        assert_eq!(g2.out_degree(EntityId(2)), 2);
    }

    #[test]
    fn mutations_are_idempotent() {
        let g = toy();
        let (g2, stats) = g
            .apply_ops(&[
                TripleOp::Insert(Triple::new(0, 0, 1)), // already present
                TripleOp::Delete(Triple::new(2, 1, 0)), // never existed
            ])
            .unwrap();
        assert_eq!(stats.inserted, 0);
        assert_eq!(stats.deleted, 0);
        assert!(stats.touched.is_empty());
        assert_eq!(g2.epoch(), 1); // batch still committed
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn insert_then_delete_round_trips_to_base() {
        let g = toy();
        let t = Triple::new(2, 0, 0);
        let (g2, _) = g.apply_ops(&[TripleOp::Insert(t)]).unwrap();
        let (g3, _) = g2.apply_ops(&[TripleOp::Delete(t)]).unwrap();
        assert!(!g3.has_edge(t.s, t.r, t.o));
        assert_eq!(g3.num_edges(), g.num_edges());
        assert_eq!(g3.logical_triples(), {
            let mut v = g.triples().to_vec();
            v.sort_unstable();
            v
        });
        // Delete of a base triple then re-insert also round-trips.
        let base = Triple::new(0, 0, 1);
        let (g4, _) = g.apply_ops(&[TripleOp::Delete(base)]).unwrap();
        let (g5, _) = g4.apply_ops(&[TripleOp::Insert(base)]).unwrap();
        assert!(g5.has_edge(base.s, base.r, base.o));
        assert_eq!(g5.num_edges(), g.num_edges());
    }

    #[test]
    fn invalid_ops_reject_the_whole_batch() {
        let g = toy();
        let err = g
            .apply_ops(&[
                TripleOp::Insert(Triple::new(0, 0, 2)),
                TripleOp::Insert(Triple::new(0, 0, 99)),
            ])
            .unwrap_err();
        assert!(matches!(err, MutationError::EntityOutOfRange { .. }));
        // Inverse relation ids are rejected too.
        let rs = g.relations();
        let err = g
            .apply_ops(&[TripleOp::Insert(Triple {
                s: EntityId(0),
                r: rs.inverse(RelationId(0)),
                o: EntityId(1),
            })])
            .unwrap_err();
        assert!(matches!(err, MutationError::NotBaseRelation { .. }));
    }

    #[test]
    fn fold_preserves_the_logical_view_exactly() {
        let g = toy();
        let (g2, _) = g
            .apply_ops(&[
                TripleOp::Insert(Triple::new(2, 0, 0)),
                TripleOp::Delete(Triple::new(0, 1, 2)),
            ])
            .unwrap();
        let folded = g2.fold();
        assert!(!folded.has_delta());
        assert_eq!(folded.epoch(), g2.epoch());
        assert_eq!(folded.num_edges(), g2.num_edges());
        for e in 0..3u32 {
            assert_eq!(
                folded.neighbors(EntityId(e)),
                g2.neighbors(EntityId(e)),
                "bucket of entity {e} must survive compaction"
            );
        }
        assert_eq!(folded.logical_triples(), g2.logical_triples());
        // Folded triples become the new base.
        let mut expect = g2.logical_triples();
        expect.sort_unstable();
        assert_eq!(folded.triples(), &expect[..]);
    }

    #[test]
    fn fold_preserves_truncated_action_spaces() {
        // Build with truncation, mutate an unrelated entity, fold: the
        // truncated bucket must not regain its dropped edges.
        let triples: Vec<Triple> = (1..=10).map(|o| Triple::new(0, 0, o)).collect();
        let g = KnowledgeGraph::from_triples(12, 1, triples, Some(4));
        assert_eq!(g.out_degree(EntityId(0)), 4);
        let (g2, _) = g
            .apply_ops(&[TripleOp::Insert(Triple::new(11, 0, 10))])
            .unwrap();
        let folded = g2.fold();
        assert_eq!(folded.out_degree(EntityId(0)), 4);
        assert!(folded.has_edge(EntityId(11), RelationId(0), EntityId(10)));
    }

    #[test]
    fn mutated_graph_matches_fresh_build_view() {
        // The delta view must agree edge-for-edge with a graph built from
        // scratch over the mutated triple set (no truncation in play).
        let g = toy();
        let (g2, _) = g
            .apply_ops(&[
                TripleOp::Insert(Triple::new(2, 0, 0)),
                TripleOp::Insert(Triple::new(1, 0, 2)),
                TripleOp::Delete(Triple::new(0, 0, 1)),
            ])
            .unwrap();
        let fresh = KnowledgeGraph::from_triples(3, 2, g2.logical_triples(), None);
        for e in 0..3u32 {
            assert_eq!(g2.neighbors(EntityId(e)), fresh.neighbors(EntityId(e)));
        }
        assert_eq!(g2.num_edges(), fresh.num_edges());
        let set = g2.triple_set();
        assert!(set.contains(EntityId(2), RelationId(0), EntityId(0)));
        assert!(!set.contains(EntityId(0), RelationId(0), EntityId(1)));
    }

    #[test]
    fn serialization_folds_the_delta() {
        let g = toy();
        let (g2, _) = g
            .apply_ops(&[TripleOp::Insert(Triple::new(2, 0, 0))])
            .unwrap();
        let json = serde_json::to_string(&g2).unwrap();
        let back: KnowledgeGraph = serde_json::from_str(&json).unwrap();
        assert!(back.has_edge(EntityId(2), RelationId(0), EntityId(0)));
        assert_eq!(back.num_edges(), g2.num_edges());
    }
}
