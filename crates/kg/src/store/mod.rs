//! The million-entity storage tier.
//!
//! Three layers, bottom-up:
//!
//! - [`slab`] — [`Mmap`] (read-only file mapping via direct `mmap(2)` FFI)
//!   and [`Slab<T>`], a typed array that is either heap-owned or a
//!   zero-copy view into a mapping.
//! - [`csr`] — [`CsrStore`], the flat CSR adjacency (relation-sorted edge
//!   buckets with per-entity offsets, forward + inverse views) that
//!   [`crate::KnowledgeGraph`] is backed by.
//! - [`snapshot`] — the versioned `.mmkg` snapshot format: a writer, a
//!   validating reader, and an mmap-backed loader so a server boots from
//!   disk in milliseconds instead of rebuilding/retraining.
//!
//! See `docs/snapshot-format.md` for the on-disk layout and compat rules.

pub mod csr;
pub mod slab;
pub mod snapshot;
pub mod wal;

pub use csr::CsrStore;
pub use slab::{Mmap, Slab};
pub use snapshot::{
    section_kind_name, verify, SectionKind, SectionReport, Snapshot, SnapshotError, SnapshotWriter,
    VerifyReport, SNAPSHOT_VERSION,
};
pub use wal::{TripleOp, WalError, WalRecord, WalWriter};

use crate::graph::Edge;
use crate::ids::{EntityId, RelationId};
use crate::triple::Triple;

/// Marker for types that may be reinterpreted to/from raw bytes.
///
/// # Safety
///
/// Implementors must be `repr(C)`/`repr(transparent)` with **no padding
/// bytes** and no bit-pattern invariants: every byte sequence of
/// `size_of::<Self>()` bytes is a valid value. This is what makes both
/// directions of the cast (`&[T]` → `&[u8]` for the writer, `&[u8]` →
/// `&[T]` for the zero-copy loader) sound.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for EntityId {}
unsafe impl Pod for RelationId {}
unsafe impl Pod for Edge {}
unsafe impl Pod for Triple {}

/// View a POD slice as raw bytes (native endianness).
pub fn pod_bytes<T: Pod>(data: &[T]) -> &[u8] {
    // Safety: `T: Pod` has no padding, so all bytes are initialized.
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data)) }
}

/// View raw bytes as a POD slice; `None` if misaligned or not an exact
/// multiple of `size_of::<T>()`.
pub fn bytes_as_pod<T: Pod>(bytes: &[u8]) -> Option<&[T]> {
    let size = std::mem::size_of::<T>();
    if size == 0 || !bytes.len().is_multiple_of(size) {
        return None;
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return None;
    }
    // Safety: alignment and length checked above; `T: Pod` accepts any bits.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_layout_assumptions_hold() {
        // The snapshot format depends on these exact sizes.
        assert_eq!(std::mem::size_of::<Edge>(), 8);
        assert_eq!(std::mem::align_of::<Edge>(), 4);
        assert_eq!(std::mem::size_of::<Triple>(), 12);
        assert_eq!(std::mem::align_of::<Triple>(), 4);
    }

    #[test]
    fn byte_casts_roundtrip() {
        let edges = vec![
            Edge {
                relation: RelationId(3),
                target: EntityId(9),
            },
            Edge {
                relation: RelationId(1),
                target: EntityId(4),
            },
        ];
        let bytes = pod_bytes(&edges);
        assert_eq!(bytes.len(), 16);
        let back: &[Edge] = bytes_as_pod(bytes).unwrap();
        assert_eq!(back, &edges[..]);
        // not a multiple of the element size
        assert!(bytes_as_pod::<Edge>(&bytes[..15]).is_none());
    }
}
