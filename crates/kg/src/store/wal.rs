//! The write-ahead log behind crash-safe live mutation.
//!
//! A `.wal` file is an append-only sequence of CRC32-framed records,
//! each carrying one atomic batch of triple inserts/deletes. Mutations
//! are durable once [`WalWriter::append`] returns: the frame is written
//! and fsynced before the in-memory graph ever changes, so recovery
//! (newest valid `.mmkg` snapshot + replay of the records the snapshot
//! does not yet fold in) restores every committed mutation.
//!
//! ## On-disk layout
//!
//! ```text
//! header   "MWAL" magic (4) · version u32 LE (4)
//! frame*   len u32 LE (4) · crc32 u32 LE (4) · payload (len bytes)
//! payload  seq u64 LE · op_count u32 LE · op*
//! op       kind u8 (0 = insert, 1 = delete) · s u32 LE · r u32 LE · o u32 LE
//! ```
//!
//! The CRC (same polynomial as `.mmkg` section checksums) covers the
//! payload only. `seq` is strictly increasing across frames; snapshots
//! record the last folded `seq` so replay after compaction skips
//! already-applied records.
//!
//! ## Failure model
//!
//! - A **torn tail** — the file ends mid-frame, or the final frame's
//!   CRC does not match (a crash mid-`write`) — is expected after a
//!   crash. Replay stops at the last valid frame and [`WalWriter::open`]
//!   truncates the torn bytes so the next append lands on a clean
//!   boundary.
//! - **Interior corruption** — a bad CRC, bogus length, or sequence
//!   regression *followed by more data* — is not a crash artifact and
//!   surfaces as a typed [`WalError::Corrupt`] instead of being
//!   silently dropped.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::snapshot::crc32;
use crate::ids::{EntityId, RelationId};
use crate::triple::Triple;

const WAL_MAGIC: &[u8; 4] = b"MWAL";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Bytes of the file header (`MWAL` magic + version) preceding the
/// first frame — also the preamble of a replication tail stream, which
/// reuses the frame format verbatim as its wire format.
pub const HEADER_LEN: u64 = 8;
const FRAME_HEAD: usize = 8; // len + crc
const PAYLOAD_FIXED: usize = 12; // seq u64 + op_count u32
const OP_LEN: usize = 13; // kind u8 + 3 × u32
/// Upper bound on a single frame's payload (sanity check against
/// interpreting corrupt bytes as a multi-gigabyte allocation).
const MAX_PAYLOAD: u32 = 64 << 20;

/// One logged mutation: insert or delete a base-orientation triple.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TripleOp {
    Insert(Triple),
    Delete(Triple),
}

impl TripleOp {
    pub fn triple(&self) -> Triple {
        match *self {
            TripleOp::Insert(t) | TripleOp::Delete(t) => t,
        }
    }
}

/// One committed WAL record: an atomic batch of ops under one sequence
/// number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub ops: Vec<TripleOp>,
}

/// Why a WAL could not be opened or replayed.
#[derive(Debug)]
pub enum WalError {
    Io(io::Error),
    /// The file does not start with the `MWAL` magic.
    BadMagic,
    /// The file's format version is not [`WAL_VERSION`].
    BadVersion(u32),
    /// A complete frame failed validation (not a torn tail).
    Corrupt {
        offset: u64,
        reason: String,
    },
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal: io error: {e}"),
            WalError::BadMagic => write!(f, "wal: bad magic (not a MWAL file)"),
            WalError::BadVersion(v) => {
                write!(f, "wal: unsupported version {v} (expected {WAL_VERSION})")
            }
            WalError::Corrupt { offset, reason } => {
                write!(f, "wal: corrupt frame at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

/// Outcome of scanning a WAL's bytes: the records, where the valid
/// prefix ends, and the next sequence number to hand out.
struct Scan {
    records: Vec<WalRecord>,
    valid_len: u64,
    next_seq: u64,
}

/// Decode every frame in `bytes` (the file contents after a validated
/// header). A torn tail stops the scan at the last valid frame;
/// interior corruption is a typed error.
fn scan_frames(bytes: &[u8]) -> Result<Scan, WalError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut next_seq = 0u64;
    loop {
        let offset = HEADER_LEN + pos as u64;
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < FRAME_HEAD {
            break; // torn tail: frame head itself is incomplete
        }
        let len = read_u32(rest, 0) as usize;
        let crc = read_u32(rest, 4);
        if len > MAX_PAYLOAD as usize {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("frame length {len} exceeds maximum {MAX_PAYLOAD}"),
            });
        }
        if rest.len() < FRAME_HEAD + len {
            break; // torn tail: payload extends past EOF
        }
        let payload = &rest[FRAME_HEAD..FRAME_HEAD + len];
        let computed = crc32(payload);
        let is_last = rest.len() == FRAME_HEAD + len;
        if computed != crc {
            if is_last {
                break; // torn tail: crash mid-write of the final frame
            }
            return Err(WalError::Corrupt {
                offset,
                reason: format!("crc mismatch: stored {crc:#010x}, computed {computed:#010x}"),
            });
        }
        if len < PAYLOAD_FIXED {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("payload too short for record header ({len} bytes)"),
            });
        }
        let seq = read_u64(payload, 0);
        let op_count = read_u32(payload, 8) as usize;
        if len != PAYLOAD_FIXED + op_count * OP_LEN {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("payload length {len} does not match op count {op_count}"),
            });
        }
        if seq < next_seq {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("sequence regression: {seq} after {}", next_seq - 1),
            });
        }
        let mut ops = Vec::with_capacity(op_count);
        for i in 0..op_count {
            let at = PAYLOAD_FIXED + i * OP_LEN;
            let kind = payload[at];
            let t = Triple {
                s: EntityId(read_u32(payload, at + 1)),
                r: RelationId(read_u32(payload, at + 5)),
                o: EntityId(read_u32(payload, at + 9)),
            };
            ops.push(match kind {
                0 => TripleOp::Insert(t),
                1 => TripleOp::Delete(t),
                k => {
                    return Err(WalError::Corrupt {
                        offset,
                        reason: format!("unknown op kind {k}"),
                    })
                }
            });
        }
        records.push(WalRecord { seq, ops });
        next_seq = seq + 1;
        pos += FRAME_HEAD + len;
    }
    Ok(Scan {
        records,
        valid_len: HEADER_LEN + pos as u64,
        next_seq,
    })
}

/// The 8-byte header a fresh WAL file (or a tail stream) starts with.
pub fn header_bytes() -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..4].copy_from_slice(WAL_MAGIC);
    h[4..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Validate a WAL file header (or a tail stream's preamble).
pub fn check_header(head: &[u8]) -> Result<(), WalError> {
    if head.len() < HEADER_LEN as usize || &head[..4] != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = read_u32(head, 4);
    if version != WAL_VERSION {
        return Err(WalError::BadVersion(version));
    }
    Ok(())
}

/// Encode one record as a complete frame (`len · crc32 · payload`) —
/// the exact bytes [`WalWriter::append`] puts on disk and the
/// replication shipper puts on the wire.
pub fn encode_frame(seq: u64, ops: &[TripleOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(PAYLOAD_FIXED + ops.len() * OP_LEN);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        let (kind, t) = match *op {
            TripleOp::Insert(t) => (0u8, t),
            TripleOp::Delete(t) => (1u8, t),
        };
        payload.push(kind);
        payload.extend_from_slice(&t.s.0.to_le_bytes());
        payload.extend_from_slice(&t.r.0.to_le_bytes());
        payload.extend_from_slice(&t.o.0.to_le_bytes());
    }
    let mut frame = Vec::with_capacity(FRAME_HEAD + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Incrementally decode the first frame of `buf` (bytes after the
/// header/preamble). Returns `Ok(None)` when `buf` holds only a prefix
/// of a frame — read more and retry; `Ok(Some((record, consumed)))` on
/// a complete valid frame. Unlike file replay there is no torn-tail
/// tolerance: a CRC mismatch on a complete frame is always
/// [`WalError::Corrupt`] (the stream reader decides whether to resync
/// or drop the connection). Sequence monotonicity is the caller's
/// concern.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(WalRecord, usize)>, WalError> {
    if buf.len() < FRAME_HEAD {
        return Ok(None);
    }
    let len = read_u32(buf, 0) as usize;
    let crc = read_u32(buf, 4);
    if len > MAX_PAYLOAD as usize {
        return Err(WalError::Corrupt {
            offset: 0,
            reason: format!("frame length {len} exceeds maximum {MAX_PAYLOAD}"),
        });
    }
    if buf.len() < FRAME_HEAD + len {
        return Ok(None);
    }
    let payload = &buf[FRAME_HEAD..FRAME_HEAD + len];
    let computed = crc32(payload);
    if computed != crc {
        return Err(WalError::Corrupt {
            offset: 0,
            reason: format!("crc mismatch: stored {crc:#010x}, computed {computed:#010x}"),
        });
    }
    if len < PAYLOAD_FIXED {
        return Err(WalError::Corrupt {
            offset: 0,
            reason: format!("payload too short for record header ({len} bytes)"),
        });
    }
    let seq = read_u64(payload, 0);
    let op_count = read_u32(payload, 8) as usize;
    if len != PAYLOAD_FIXED + op_count * OP_LEN {
        return Err(WalError::Corrupt {
            offset: 0,
            reason: format!("payload length {len} does not match op count {op_count}"),
        });
    }
    let mut ops = Vec::with_capacity(op_count);
    for i in 0..op_count {
        let at = PAYLOAD_FIXED + i * OP_LEN;
        let kind = payload[at];
        let t = Triple {
            s: EntityId(read_u32(payload, at + 1)),
            r: RelationId(read_u32(payload, at + 5)),
            o: EntityId(read_u32(payload, at + 9)),
        };
        ops.push(match kind {
            0 => TripleOp::Insert(t),
            1 => TripleOp::Delete(t),
            k => {
                return Err(WalError::Corrupt {
                    offset: 0,
                    reason: format!("unknown op kind {k}"),
                })
            }
        });
    }
    Ok(Some((WalRecord { seq, ops }, FRAME_HEAD + len)))
}

/// Read-only replay of every valid record in `path` (torn tails are
/// tolerated and simply end the scan; the file is not modified). A
/// missing file replays as empty — same as a fresh log.
pub fn replay(path: &Path) -> Result<Vec<WalRecord>, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(WalError::Io(e)),
    };
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    check_header(&bytes)?;
    Ok(scan_frames(&bytes[HEADER_LEN as usize..])?.records)
}

/// The append side of the log: fsync-on-commit, torn tails truncated at
/// open so every append lands on a clean frame boundary.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
}

impl WalWriter {
    /// Open (or create) the log at `path`, replaying whatever committed
    /// records it holds. A torn tail from a previous crash is truncated
    /// away; interior corruption is a typed error — the caller decides
    /// whether to refuse boot or discard the log.
    pub fn open(path: &Path) -> Result<(WalWriter, Vec<WalRecord>), WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            file.sync_data()?;
            Scan {
                records: Vec::new(),
                valid_len: HEADER_LEN,
                next_seq: 0,
            }
        } else {
            check_header(&bytes)?;
            scan_frames(&bytes[HEADER_LEN as usize..])?
        };
        if scan.valid_len < bytes.len() as u64 {
            // Torn tail: drop the partial frame so the next append
            // starts a clean one.
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                next_seq: scan.next_seq,
            },
            scan.records,
        ))
    }

    /// Sequence number the next append will commit under.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Force the next append to commit under `seq` (used after recovery
    /// when the snapshot's folded sequence is ahead of the log).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one atomic batch and fsync it. The record is committed —
    /// guaranteed to survive a crash — once this returns the sequence
    /// number it was logged under.
    pub fn append(&mut self, ops: &[TripleOp]) -> io::Result<u64> {
        let seq = self.append_unsynced(ops)?;
        self.sync()?;
        Ok(seq)
    }

    /// Write one batch's frame **without** fsyncing it. The record is
    /// NOT committed until a later [`WalWriter::sync`] returns — group
    /// commit writes several frames and then syncs them all with one
    /// `sync_data`, turning N fsyncs into one.
    pub fn append_unsynced(&mut self, ops: &[TripleOp]) -> io::Result<u64> {
        let seq = self.next_seq;
        self.file.write_all(&encode_frame(seq, ops))?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Make every frame written so far durable (the commit point of
    /// [`WalWriter::append_unsynced`]).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Drop every record (post-compaction: the snapshot now folds them
    /// in). Sequence numbers keep counting up — they are global to the
    /// graph's history, not to one log generation.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(HEADER_LEN)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, r: u32, o: u32) -> Triple {
        Triple {
            s: EntityId(s),
            r: RelationId(r),
            o: EntityId(o),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmkgr-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("graph.wal")
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let (mut w, existing) = WalWriter::open(&path).unwrap();
        assert!(existing.is_empty());
        assert_eq!(w.append(&[TripleOp::Insert(t(1, 0, 2))]).unwrap(), 0);
        assert_eq!(
            w.append(&[TripleOp::Delete(t(1, 0, 2)), TripleOp::Insert(t(3, 1, 4))])
                .unwrap(),
            1
        );
        drop(w);
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[0].ops, vec![TripleOp::Insert(t(1, 0, 2))]);
        assert_eq!(
            records[1].ops,
            vec![TripleOp::Delete(t(1, 0, 2)), TripleOp::Insert(t(3, 1, 4))]
        );
        // Reopen continues the sequence.
        let (w2, records2) = WalWriter::open(&path).unwrap();
        assert_eq!(records2, records);
        assert_eq!(w2.next_seq(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        let (mut w, _) = WalWriter::open(&path).unwrap();
        w.append(&[TripleOp::Insert(t(1, 0, 2))]).unwrap();
        w.append(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        drop(w);
        // Chop the last frame mid-payload: a crash mid-write.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        // Read-only replay tolerates the tear.
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].ops, vec![TripleOp::Insert(t(1, 0, 2))]);
        // Open truncates it and the next append recommits under seq 1.
        let (mut w, records) = WalWriter::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(w.next_seq(), 1);
        assert_eq!(w.append(&[TripleOp::Insert(t(5, 1, 6))]).unwrap(), 1);
        drop(w);
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].ops, vec![TripleOp::Insert(t(5, 1, 6))]);
    }

    #[test]
    fn interior_corruption_is_a_typed_error() {
        let path = tmp("corrupt");
        let (mut w, _) = WalWriter::open(&path).unwrap();
        w.append(&[TripleOp::Insert(t(1, 0, 2))]).unwrap();
        w.append(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        drop(w);
        // Flip a payload byte of the FIRST frame (interior, not tail).
        let mut bytes = std::fs::read(&path).unwrap();
        let at = HEADER_LEN as usize + FRAME_HEAD + 2;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match replay(&path) {
            Err(WalError::Corrupt { offset, reason }) => {
                assert_eq!(offset, HEADER_LEN);
                assert!(reason.contains("crc mismatch"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(WalWriter::open(&path).is_err());
    }

    #[test]
    fn final_frame_crc_mismatch_is_a_torn_tail() {
        let path = tmp("tail-crc");
        let (mut w, _) = WalWriter::open(&path).unwrap();
        w.append(&[TripleOp::Insert(t(1, 0, 2))]).unwrap();
        let first_end = std::fs::metadata(&path).unwrap().len() as usize;
        w.append(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        drop(w);
        // Corrupt a payload byte of the LAST frame: crash mid-write.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = first_end + FRAME_HEAD + 2;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        let (w, records) = WalWriter::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(w.next_seq(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, first_end);
    }

    #[test]
    fn truncate_clears_records_but_not_sequence() {
        let path = tmp("truncate");
        let (mut w, _) = WalWriter::open(&path).unwrap();
        w.append(&[TripleOp::Insert(t(1, 0, 2))]).unwrap();
        w.append(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        w.truncate().unwrap();
        assert!(replay(&path).unwrap().is_empty());
        assert_eq!(w.append(&[TripleOp::Insert(t(5, 0, 6))]).unwrap(), 2);
        drop(w);
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 2);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00").unwrap();
        assert!(matches!(replay(&path), Err(WalError::BadMagic)));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path), Err(WalError::BadVersion(99))));
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = tmp("missing").with_extension("nope");
        assert!(replay(&path).unwrap().is_empty());
    }

    #[test]
    fn encode_decode_frame_roundtrip() {
        let ops = vec![TripleOp::Insert(t(1, 0, 2)), TripleOp::Delete(t(3, 1, 4))];
        let frame = encode_frame(7, &ops);
        // every strict prefix is "incomplete", never an error
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).unwrap().is_none());
        }
        let (rec, used) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(used, frame.len());
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.ops, ops);
        // a flipped payload byte on a complete frame is typed corruption
        let mut bad = frame.clone();
        bad[FRAME_HEAD + 2] ^= 0xff;
        assert!(matches!(decode_frame(&bad), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn grouped_appends_match_single_appends_byte_for_byte() {
        let path = tmp("group");
        let (mut w, _) = WalWriter::open(&path).unwrap();
        assert_eq!(
            w.append_unsynced(&[TripleOp::Insert(t(1, 0, 2))]).unwrap(),
            0
        );
        assert_eq!(
            w.append_unsynced(&[TripleOp::Insert(t(3, 0, 4))]).unwrap(),
            1
        );
        w.sync().unwrap();
        drop(w);
        assert_eq!(replay(&path).unwrap().len(), 2);

        let path2 = tmp("group-ref");
        let (mut w2, _) = WalWriter::open(&path2).unwrap();
        w2.append(&[TripleOp::Insert(t(1, 0, 2))]).unwrap();
        w2.append(&[TripleOp::Insert(t(3, 0, 4))]).unwrap();
        drop(w2);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
    }

    #[test]
    fn set_next_seq_never_rewinds() {
        let path = tmp("seq");
        let (mut w, _) = WalWriter::open(&path).unwrap();
        w.append(&[TripleOp::Insert(t(1, 0, 2))]).unwrap();
        w.set_next_seq(10);
        assert_eq!(w.next_seq(), 10);
        w.set_next_seq(3); // rewind ignored
        assert_eq!(w.next_seq(), 10);
        assert_eq!(w.append(&[TripleOp::Insert(t(3, 0, 4))]).unwrap(), 10);
    }
}
