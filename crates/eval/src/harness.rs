//! Experiment harness: dataset construction, shared substrate training
//! (TransE init, ConvE shaper), model builders and evaluation entry
//! points. Every `mmkgr-bench` table/figure binary drives this.

use std::sync::{Arc, OnceLock};

use mmkgr_baselines::{
    FusedWalker, Gaats, GaatsConfig, NaiveFusion, NeuralLp, NeuralLpConfig, RlWalker, WalkerConfig,
    WalkerKind,
};
use mmkgr_core::prelude::*;
use mmkgr_core::rollout::TrainReport;
use mmkgr_datagen::{generate, GenConfig};
use mmkgr_embed::{ConvE, KgeTrainConfig, Mtrl, TransE, TripleScorer};
use mmkgr_kg::{KnowledgeGraph, MultiModalKG, RelationId, Triple, TripleSet};
use mmkgr_tensor::init::seeded_rng;
use rand::seq::SliceRandom;

use mmkgr_core::serve::{KgReasoner, PolicyReasoner, ScorerReasoner, ServeConfig};

use crate::ranker::{
    eval_policy_relation_map, eval_reasoner_entity, eval_scorer_relation_map, LinkPredictionResult,
    RelationMapResult,
};

/// The two paper datasets, plus the 60-entity `tiny` smoke dataset
/// (seconds to train end to end — CI jobs and `mmkgr serve` demos).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Dataset {
    Wn9ImgTxt,
    FbImgTxt,
    Tiny,
}

impl Dataset {
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Wn9ImgTxt => "WN9-IMG-TXT",
            Dataset::FbImgTxt => "FB-IMG-TXT",
            Dataset::Tiny => "TINY",
        }
    }

    fn gen_config(&self, scale: f64) -> GenConfig {
        let base = match self {
            Dataset::Wn9ImgTxt => GenConfig::wn9_img_txt(),
            Dataset::FbImgTxt => GenConfig::fb_img_txt(),
            Dataset::Tiny => GenConfig::tiny(),
        };
        if (scale - 1.0).abs() < 1e-9 {
            base
        } else {
            base.scaled(scale)
        }
    }
}

/// Run size for experiment binaries (`--scale quick|standard|full`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScaleChoice {
    /// Seconds per model — CI smoke runs.
    Quick,
    /// A couple of minutes per table — the default.
    Standard,
    /// Tens of minutes — closest to the paper's training budget.
    Full,
}

impl ScaleChoice {
    /// Parse from process args; default Standard.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                return match w[1].as_str() {
                    "quick" => ScaleChoice::Quick,
                    "standard" => ScaleChoice::Standard,
                    "full" => ScaleChoice::Full,
                    other => panic!("unknown --scale {other} (quick|standard|full)"),
                };
            }
        }
        ScaleChoice::Standard
    }
}

/// Datasets selected by `--datasets wn9|fb|both` (default both) — lets a
/// long experiment be re-run for one dataset without paying for the
/// other.
pub fn datasets_from_args() -> Vec<Dataset> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--datasets" {
            return match w[1].as_str() {
                "wn9" => vec![Dataset::Wn9ImgTxt],
                "fb" => vec![Dataset::FbImgTxt],
                "both" => vec![Dataset::Wn9ImgTxt, Dataset::FbImgTxt],
                other => panic!("unknown --datasets {other} (wn9|fb|both)"),
            };
        }
    }
    vec![Dataset::Wn9ImgTxt, Dataset::FbImgTxt]
}

/// All knobs an experiment needs.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    pub dataset: Dataset,
    pub dataset_scale: f64,
    pub rl_epochs: usize,
    pub kge_epochs: usize,
    /// Test triples used for evaluation (capped; deterministic sample).
    pub max_eval: usize,
    pub beam: usize,
    pub struct_dim: usize,
    /// Distractor relations per Table IV query.
    pub relation_candidates: usize,
    /// Rollouts per training query (RL exploration multiplicity).
    pub rollouts: usize,
    pub seed: u64,
}

impl HarnessConfig {
    pub fn new(dataset: Dataset, scale: ScaleChoice) -> Self {
        // Beam widths follow the MINERVA evaluation protocol the paper
        // inherits (≈100 test rollouts per query): path-ranking models
        // can only rank entities some beam reaches, so narrow beams cap
        // their metrics irrespective of policy quality.
        let (dataset_scale, rl_epochs, kge_epochs, max_eval, beam) = match (dataset, scale) {
            (Dataset::Wn9ImgTxt, ScaleChoice::Quick) => (0.05, 12, 10, 60, 16),
            (Dataset::Wn9ImgTxt, ScaleChoice::Standard) => (0.1, 25, 25, 200, 48),
            (Dataset::Wn9ImgTxt, ScaleChoice::Full) => (1.0, 50, 40, 500, 96),
            (Dataset::FbImgTxt, ScaleChoice::Quick) => (0.01, 10, 10, 60, 16),
            (Dataset::FbImgTxt, ScaleChoice::Standard) => (0.02, 15, 15, 120, 48),
            (Dataset::FbImgTxt, ScaleChoice::Full) => (0.15, 40, 30, 400, 96),
            (Dataset::Tiny, ScaleChoice::Quick) => (1.0, 3, 3, 30, 8),
            (Dataset::Tiny, ScaleChoice::Standard) => (1.0, 8, 8, 60, 16),
            (Dataset::Tiny, ScaleChoice::Full) => (1.0, 15, 15, 100, 32),
        };
        let rollouts = match scale {
            ScaleChoice::Quick => 1,
            _ => 2,
        };
        HarnessConfig {
            dataset,
            dataset_scale,
            rl_epochs,
            kge_epochs,
            max_eval,
            beam,
            struct_dim: 32,
            relation_candidates: 16,
            rollouts,
            seed: 2023,
        }
    }
}

/// Shared experiment state: the dataset plus lazily-trained substrates.
pub struct Harness {
    pub cfg: HarnessConfig,
    pub kg: MultiModalKG,
    pub known: TripleSet,
    /// Deterministically sampled evaluation triples.
    pub eval_triples: Vec<Triple>,
    transe: OnceLock<Arc<TransE>>,
    conve: OnceLock<Arc<ConvE>>,
    graph_arc: OnceLock<Arc<KnowledgeGraph>>,
}

impl Harness {
    pub fn new(cfg: HarnessConfig) -> Self {
        let kg = generate(&cfg.dataset.gen_config(cfg.dataset_scale));
        Harness::from_parts(cfg, kg)
    }

    /// Build a harness over an externally-constructed dataset (e.g. one
    /// ingested from a triples TSV) instead of the synthetic generator.
    /// Eval-triple sampling follows the same seeded protocol as
    /// [`Self::new`].
    pub fn from_parts(cfg: HarnessConfig, kg: MultiModalKG) -> Self {
        let known = kg.all_known();
        let mut eval_triples = kg.split.test.clone();
        let mut rng = seeded_rng(cfg.seed ^ 0xE7A1);
        eval_triples.shuffle(&mut rng);
        eval_triples.truncate(cfg.max_eval);
        Harness {
            cfg,
            kg,
            known,
            eval_triples,
            transe: OnceLock::new(),
            conve: OnceLock::new(),
            graph_arc: OnceLock::new(),
        }
    }

    /// The graph behind a shared handle, as the serving layer
    /// (`PolicyReasoner`) requires. Cloned from the dataset once, lazily.
    pub fn graph_arc(&self) -> Arc<KnowledgeGraph> {
        self.graph_arc
            .get_or_init(|| Arc::new(self.kg.graph.clone()))
            .clone()
    }

    pub fn relation_total(&self) -> usize {
        self.kg.graph.relations().total()
    }

    /// TransE structural init (trained once, shared).
    pub fn transe(&self) -> Arc<TransE> {
        self.transe
            .get_or_init(|| {
                let mut m = TransE::new(
                    self.kg.num_entities(),
                    self.relation_total(),
                    self.cfg.struct_dim,
                    self.cfg.seed,
                );
                m.train(
                    &self.kg.split.train,
                    &self.known,
                    &KgeTrainConfig::default()
                        .with_epochs(self.cfg.kge_epochs)
                        .with_seed(self.cfg.seed),
                );
                Arc::new(m)
            })
            .clone()
    }

    /// ConvE reward shaper (trained once, shared across reward engines).
    pub fn conve(&self) -> Arc<ConvE> {
        self.conve
            .get_or_init(|| {
                let mut m = ConvE::new(
                    self.kg.num_entities(),
                    self.relation_total(),
                    4,
                    8, // 4×8 = 32 = struct_dim image plane
                    6,
                    self.cfg.seed ^ 0xC0,
                );
                let cfg = KgeTrainConfig {
                    epochs: self.cfg.kge_epochs.min(20),
                    batch_size: 128,
                    lr: 3e-3,
                    margin: 1.0,
                    seed: self.cfg.seed ^ 0xC1,
                };
                m.train(&self.kg.split.train, &self.known, &cfg);
                Arc::new(m)
            })
            .clone()
    }

    /// Behaviour-cloning epochs applied uniformly to every RL reasoner at
    /// this scale (the reproduction-scale protocol; DESIGN.md deviations).
    fn warmstart_epochs(&self) -> usize {
        (self.cfg.rl_epochs / 5).clamp(2, 5)
    }

    /// Default MMKGR config for this harness scale.
    pub fn mmkgr_config(&self) -> MmkgrConfig {
        MmkgrConfig {
            struct_dim: self.cfg.struct_dim,
            epochs: self.cfg.rl_epochs,
            beam_width: self.cfg.beam,
            lr: 3e-3,
            rollouts_per_query: self.cfg.rollouts,
            seed: self.cfg.seed ^ 0x33,
            warmstart_epochs: self.warmstart_epochs(),
            ..MmkgrConfig::default()
        }
    }

    /// Build and train an MMKGR variant; returns the trainer (holding the
    /// trained model) and the per-epoch report. `valid_trace` > 0 records
    /// validation MRR per epoch (used by the convergence figures).
    pub fn train_mmkgr_with(
        &self,
        mutate: impl FnOnce(&mut MmkgrConfig),
        valid_trace: usize,
    ) -> (Trainer<Arc<ConvE>>, TrainReport) {
        let mut cfg = self.mmkgr_config();
        mutate(&mut cfg);
        cfg.validate().expect("invalid experiment config");
        let engine = RewardEngine::new(&cfg, Some(self.conve()));
        let transe = self.transe();
        let model = MmkgrModel::new(&self.kg, cfg, Some(&transe));
        let mut trainer = Trainer::new(model, engine);
        let report = trainer.train(&self.kg, valid_trace);
        (trainer, report)
    }

    /// Named-variant shortcut.
    pub fn train_variant(&self, v: Variant) -> (Trainer<Arc<ConvE>>, TrainReport) {
        self.train_mmkgr_with(|c| *c = c.clone().variant(v), 0)
    }

    fn walker_config(&self) -> WalkerConfig {
        WalkerConfig {
            struct_dim: self.cfg.struct_dim,
            epochs: self.cfg.rl_epochs,
            beam_width: self.cfg.beam,
            lr: 3e-3,
            rollouts_per_query: self.cfg.rollouts,
            seed: self.cfg.seed ^ 0x44,
            warmstart_epochs: self.warmstart_epochs(),
            ..WalkerConfig::default()
        }
    }

    /// Trained MINERVA walker. Returns `(model, reward trace)`.
    pub fn train_minerva(&self) -> (RlWalker, Vec<f32>) {
        let mut w = RlWalker::new(
            self.kg.num_entities(),
            self.relation_total(),
            WalkerKind::Minerva,
            self.walker_config(),
        );
        let trace = w.train(&self.kg);
        (w, trace)
    }

    /// Trained RLH walker (relation clusters from the TransE table).
    pub fn train_rlh(&self) -> (RlWalker, Vec<f32>) {
        let transe = self.transe();
        let k = 8.min(self.relation_total());
        let cluster_of = RlWalker::cluster_relations(transe.relation_matrix(), k, self.cfg.seed);
        let mut w = RlWalker::new(
            self.kg.num_entities(),
            self.relation_total(),
            WalkerKind::Rlh {
                cluster_of,
                num_clusters: k,
            },
            self.walker_config(),
        );
        let trace = w.train(&self.kg);
        (w, trace)
    }

    /// Trained FIRE walker (TransE-pruned action space).
    pub fn train_fire(&self) -> (RlWalker, Vec<f32>) {
        let transe = self.transe();
        // FIRE holds its own frozen copy of the TransE scorer.
        let mut frozen = TransE::new(
            self.kg.num_entities(),
            self.relation_total(),
            self.cfg.struct_dim,
            self.cfg.seed,
        );
        frozen
            .params
            .value_mut(frozen.entities.table)
            .clone_from(transe.entity_matrix());
        frozen
            .params
            .value_mut(frozen.relations.table)
            .clone_from(transe.relation_matrix());
        let mut w = RlWalker::new(
            self.kg.num_entities(),
            self.relation_total(),
            WalkerKind::Fire {
                transe: frozen,
                keep: 16,
            },
            self.walker_config(),
        );
        let trace = w.train(&self.kg);
        (w, trace)
    }

    /// Trained GAATs encoder/decoder.
    pub fn train_gaats(&self) -> Gaats {
        let mut g = Gaats::new(
            &self.kg,
            GaatsConfig {
                dim: self.cfg.struct_dim,
                epochs: self.cfg.kge_epochs,
                seed: self.cfg.seed ^ 0x55,
                ..GaatsConfig::default()
            },
        );
        g.train(&self.kg, &self.known);
        g
    }

    /// Trained NeuralLP rule model.
    pub fn train_neurallp(&self) -> NeuralLp {
        NeuralLp::train(
            &self.kg,
            &NeuralLpConfig {
                seed: self.cfg.seed ^ 0x66,
                ..NeuralLpConfig::default()
            },
        )
    }

    /// Trained MTRL multimodal single-hop baseline.
    pub fn train_mtrl(&self) -> Mtrl {
        let mut m = Mtrl::new(
            self.kg.num_entities(),
            self.relation_total(),
            &self.kg.modal,
            self.cfg.struct_dim,
            16,
            self.cfg.seed ^ 0x77,
        );
        m.train(
            &self.kg.split.train,
            &self.known,
            &KgeTrainConfig::default()
                .with_epochs(self.cfg.kge_epochs)
                .with_seed(self.cfg.seed ^ 0x78),
        );
        m
    }

    /// Trained naive-fusion walker (Table VII).
    pub fn train_fused(&self, fusion: NaiveFusion) -> (FusedWalker, Vec<f32>) {
        let mut w = FusedWalker::new(&self.kg, fusion, 16, self.walker_config());
        let trace = w.train(&self.kg);
        (w, trace)
    }

    // ---- evaluation ----------------------------------------------------
    //
    // All entity link prediction flows through the unified serving
    // surface: models are wrapped in their reasoner and evaluated by
    // `eval_reasoner_entity` — one protocol for both families.

    /// Wrap a policy in the serving protocol at this harness's beam.
    fn policy_reasoner<'p, P: RolloutPolicy>(
        &self,
        policy: &'p P,
        steps: usize,
    ) -> PolicyReasoner<&'p P> {
        PolicyReasoner::new(
            "policy",
            policy,
            self.graph_arc(),
            ServeConfig {
                beam_width: self.cfg.beam,
                max_steps: steps,
                ..ServeConfig::default()
            },
        )
    }

    /// Evaluate anything already wrapped in the serving protocol.
    pub fn eval_reasoner(&self, reasoner: &(impl KgReasoner + ?Sized)) -> LinkPredictionResult {
        eval_reasoner_entity(reasoner, &self.eval_triples, &self.known)
    }

    pub fn eval_policy(&self, policy: &impl RolloutPolicy) -> LinkPredictionResult {
        self.eval_reasoner(&self.policy_reasoner(policy, 4))
    }

    /// Policy evaluation with an explicit step horizon (Table VI/Fig. 8).
    pub fn eval_policy_steps(
        &self,
        policy: &impl RolloutPolicy,
        steps: usize,
    ) -> LinkPredictionResult {
        self.eval_reasoner(&self.policy_reasoner(policy, steps))
    }

    /// Policy evaluation on an explicit triple subset (Table VIII).
    pub fn eval_policy_on(
        &self,
        policy: &impl RolloutPolicy,
        triples: &[Triple],
    ) -> LinkPredictionResult {
        eval_reasoner_entity(&self.policy_reasoner(policy, 4), triples, &self.known)
    }

    pub fn eval_scorer(&self, scorer: &impl TripleScorer) -> LinkPredictionResult {
        let reasoner = ScorerReasoner::for_graph("scorer", scorer, &self.kg.graph);
        eval_reasoner_entity(&reasoner, &self.eval_triples, &self.known)
    }

    /// Candidate relations for Table IV (all base relations, capped with a
    /// deterministic sample when the relation vocabulary is large).
    pub fn relation_candidates(&self) -> Vec<RelationId> {
        let base = self.kg.num_base_relations();
        let mut all: Vec<RelationId> = (0..base as u32).map(RelationId).collect();
        if all.len() > self.cfg.relation_candidates {
            let mut rng = seeded_rng(self.cfg.seed ^ 0x99);
            all.shuffle(&mut rng);
            all.truncate(self.cfg.relation_candidates);
        }
        all
    }

    pub fn relation_map_policy(&self, policy: &impl RolloutPolicy) -> RelationMapResult {
        let cap = self.eval_triples.len().min(self.cfg.max_eval / 2).max(1);
        eval_policy_relation_map(
            policy,
            &self.kg.graph,
            &self.eval_triples[..cap],
            &self.relation_candidates(),
            (self.cfg.beam / 2).max(4),
            4,
        )
    }

    pub fn relation_map_scorer(&self, scorer: &impl TripleScorer) -> RelationMapResult {
        let cap = self.eval_triples.len().min(self.cfg.max_eval / 2).max(1);
        eval_scorer_relation_map(
            scorer,
            &self.eval_triples[..cap],
            &self.relation_candidates(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_harness() -> Harness {
        let mut cfg = HarnessConfig::new(Dataset::Wn9ImgTxt, ScaleChoice::Quick);
        cfg.rl_epochs = 2;
        cfg.kge_epochs = 3;
        cfg.max_eval = 20;
        Harness::new(cfg)
    }

    #[test]
    fn harness_builds_dataset_and_substrates() {
        let h = quick_harness();
        assert!(!h.eval_triples.is_empty());
        assert!(h.eval_triples.len() <= 20);
        let t = h.transe();
        assert_eq!(t.entity_matrix().rows(), h.kg.num_entities());
        // cached: second call returns the same Arc
        assert!(Arc::ptr_eq(&t, &h.transe()));
    }

    #[test]
    fn mmkgr_variant_trains_and_evaluates() {
        let h = quick_harness();
        let (trainer, report) = h.train_variant(Variant::Full);
        assert_eq!(report.epochs.len(), 2);
        let r = h.eval_policy(&trainer.model);
        assert!(r.queries > 0);
        assert!((0.0..=1.0).contains(&r.mrr));
    }

    #[test]
    fn relation_candidates_capped_and_deterministic() {
        let h = quick_harness();
        let a = h.relation_candidates();
        let b = h.relation_candidates();
        assert_eq!(a, b);
        assert!(a.len() <= h.cfg.relation_candidates.max(h.kg.num_base_relations()));
    }
}
