//! Ranking protocols for the two model families.
//!
//! - **Scorer models** (TransE/DistMult/ComplEx/ConvE/MTRL/GAATs/NeuralLP)
//!   rank by exhaustively scoring every candidate entity.
//! - **Policy models** (MMKGR, MINERVA, RLH, FIRE) rank by beam-search
//!   path probability via `mmkgr_core::infer`.
//!
//! Both produce the same [`LinkPredictionResult`], so tables compare
//! apples to apples.

use mmkgr_core::infer::{evaluate_ranking, RankingSummary, RolloutPolicy};
use mmkgr_core::mdp::RolloutQuery;
use mmkgr_embed::TripleScorer;
use mmkgr_kg::{EntityId, KnowledgeGraph, RelationId, Triple, TripleSet};

use crate::metrics::{average_precision_single, filtered_rank, mean, RankAccum};

/// Uniform result row for entity link prediction.
#[derive(Clone, Debug, Default)]
pub struct LinkPredictionResult {
    pub mrr: f64,
    pub hits1: f64,
    pub hits5: f64,
    pub hits10: f64,
    pub queries: usize,
    /// Hop histogram (policy models only; zeros for scorers).
    pub hop_counts: [usize; 5],
}

impl From<RankingSummary> for LinkPredictionResult {
    fn from(s: RankingSummary) -> Self {
        LinkPredictionResult {
            mrr: s.mrr,
            hits1: s.hits1,
            hits5: s.hits5,
            hits10: s.hits10,
            queries: s.total,
            hop_counts: s.hop_counts,
        }
    }
}

/// Entity link prediction for a scorer model: tail and head queries with
/// filtered ranking.
pub fn eval_scorer_entity(
    scorer: &impl TripleScorer,
    graph: &KnowledgeGraph,
    test: &[Triple],
    known: &TripleSet,
) -> LinkPredictionResult {
    let n = graph.num_entities();
    let rs = graph.relations();
    let mut accum = RankAccum::default();
    let mut scores: Vec<f32> = Vec::with_capacity(n);
    let mut filtered: Vec<bool> = Vec::with_capacity(n);
    for t in test {
        // tail query (s, r, ?)
        scorer.score_all_objects(t.s, t.r, n, &mut scores);
        filtered.clear();
        filtered.extend((0..n).map(|o| {
            let o = EntityId(o as u32);
            o != t.o && known.contains(t.s, t.r, o)
        }));
        accum.push(filtered_rank(&scores, t.o.index(), &filtered));

        // head query (?, r, o) via the inverse relation
        let inv = rs.inverse(t.r);
        scorer.score_all_objects(t.o, inv, n, &mut scores);
        filtered.clear();
        filtered.extend((0..n).map(|s| {
            let s = EntityId(s as u32);
            s != t.s && known.contains(s, t.r, t.o)
        }));
        accum.push(filtered_rank(&scores, t.s.index(), &filtered));
    }
    LinkPredictionResult {
        mrr: accum.mrr(),
        hits1: accum.hits(1),
        hits5: accum.hits(5),
        hits10: accum.hits(10),
        queries: accum.len(),
        hop_counts: [0; 5],
    }
}

/// Entity link prediction for a policy model (tail + head queries).
pub fn eval_policy_entity(
    policy: &impl RolloutPolicy,
    graph: &KnowledgeGraph,
    test: &[Triple],
    known: &TripleSet,
    beam: usize,
    steps: usize,
) -> LinkPredictionResult {
    let queries = mmkgr_core::rollout::queries_from_triples(test, graph.relations(), true);
    evaluate_ranking(policy, graph, &queries, known, beam, steps).into()
}

/// Relation link prediction (Table IV): per-relation and overall MAP.
#[derive(Clone, Debug, Default)]
pub struct RelationMapResult {
    /// `(relation, MAP, #queries)` sorted by relation id.
    pub per_relation: Vec<(RelationId, f64, usize)>,
    pub overall: f64,
    pub queries: usize,
}

/// MAP for a scorer model: rank the true relation among `candidates` by
/// `score(s, r, o)`.
pub fn eval_scorer_relation_map(
    scorer: &impl TripleScorer,
    test: &[Triple],
    candidates: &[RelationId],
) -> RelationMapResult {
    relation_map_impl(test, candidates, |t, cands| {
        cands.iter().map(|&r| scorer.score(t.s, r, t.o)).collect()
    })
}

/// MAP for a policy model: rank the true relation by the best beam
/// probability of reaching `o` from `s` under each candidate relation.
pub fn eval_policy_relation_map(
    policy: &impl RolloutPolicy,
    graph: &KnowledgeGraph,
    test: &[Triple],
    candidates: &[RelationId],
    beam: usize,
    steps: usize,
) -> RelationMapResult {
    relation_map_impl(test, candidates, |t, cands| {
        mmkgr_core::infer::relation_scores(policy, graph, t.s, t.o, cands, beam, steps)
    })
}

fn relation_map_impl(
    test: &[Triple],
    candidates: &[RelationId],
    score_fn: impl Fn(&Triple, &[RelationId]) -> Vec<f32>,
) -> RelationMapResult {
    use std::collections::BTreeMap;
    let mut per_rel: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for t in test {
        // candidate set always contains the true relation
        let mut cands: Vec<RelationId> = candidates.to_vec();
        if !cands.contains(&t.r) {
            cands.push(t.r);
        }
        let scores = score_fn(t, &cands);
        let gold_idx = cands.iter().position(|&r| r == t.r).unwrap();
        let rank = filtered_rank(&scores, gold_idx, &vec![false; cands.len()]);
        per_rel.entry(t.r.0).or_default().push(average_precision_single(rank));
    }
    let mut per_relation = Vec::with_capacity(per_rel.len());
    let mut all: Vec<f64> = Vec::new();
    for (r, aps) in per_rel {
        per_relation.push((RelationId(r), mean(&aps), aps.len()));
        all.extend(aps);
    }
    RelationMapResult { per_relation, overall: mean(&all), queries: all.len() }
}

/// Training-query construction helper re-exported for binaries.
pub fn tail_queries(test: &[Triple]) -> Vec<RolloutQuery> {
    test.iter()
        .map(|t| RolloutQuery { source: t.s, relation: t.r, answer: t.o })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmkgr_datagen::{generate, GenConfig};
    use mmkgr_embed::{KgeTrainConfig, TransE};

    #[test]
    fn scorer_eval_produces_sane_metrics() {
        let kg = generate(&GenConfig::tiny());
        let known = kg.all_known();
        let mut model =
            TransE::new(kg.num_entities(), kg.graph.relations().total(), 16, 0);
        model.train(&kg.split.train, &known, &KgeTrainConfig::quick());
        let r = eval_scorer_entity(&model, &kg.graph, &kg.split.test, &known);
        assert_eq!(r.queries, 2 * kg.split.test.len());
        assert!((0.0..=1.0).contains(&r.mrr));
        assert!(r.hits1 <= r.hits5 && r.hits5 <= r.hits10);
    }

    #[test]
    fn trained_scorer_beats_untrained() {
        let kg = generate(&GenConfig::tiny());
        let known = kg.all_known();
        let untrained = TransE::new(kg.num_entities(), kg.graph.relations().total(), 16, 0);
        let r0 = eval_scorer_entity(&untrained, &kg.graph, &kg.split.test, &known);
        let mut trained = TransE::new(kg.num_entities(), kg.graph.relations().total(), 16, 0);
        trained.train(
            &kg.split.train,
            &known,
            &KgeTrainConfig::default().with_epochs(25),
        );
        let r1 = eval_scorer_entity(&trained, &kg.graph, &kg.split.test, &known);
        assert!(
            r1.mrr > r0.mrr,
            "training must help: {:.3} !> {:.3}",
            r1.mrr,
            r0.mrr
        );
    }

    #[test]
    fn relation_map_includes_every_gold_relation() {
        let kg = generate(&GenConfig::tiny());
        let known = kg.all_known();
        let mut model = TransE::new(kg.num_entities(), kg.graph.relations().total(), 16, 1);
        model.train(&kg.split.train, &known, &KgeTrainConfig::quick());
        let cands: Vec<RelationId> =
            (0..kg.num_base_relations() as u32).map(RelationId).collect();
        let m = eval_scorer_relation_map(&model, &kg.split.test, &cands);
        assert_eq!(m.queries, kg.split.test.len());
        assert!((0.0..=1.0).contains(&m.overall));
        for (_, map, n) in &m.per_relation {
            assert!((0.0..=1.0).contains(map));
            assert!(*n > 0);
        }
    }
}
