//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Deterministic RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform in `[-bound, bound]`.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, bound: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

/// Xavier/Glorot uniform: `bound = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, bound)
}

/// He/Kaiming uniform for ReLU layers: `bound = sqrt(6 / fan_in)`.
pub fn he(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let bound = (6.0 / rows as f32).sqrt();
    uniform(rng, rows, cols, bound)
}

/// Approximate standard normal via the sum of 12 uniforms (Irwin–Hall),
/// scaled by `std`. Accurate enough for initialization and avoids pulling
/// in a dedicated distributions crate.
pub fn normal(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let s: f32 = (0..12).map(|_| rng.gen_range(0.0..1.0f32)).sum::<f32>() - 6.0;
        s * std
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        assert_eq!(xavier(&mut a, 4, 4), xavier(&mut b, 4, 4));
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = seeded_rng(1);
        let m = xavier(&mut rng, 100, 50);
        let bound = (6.0 / 150.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound + 1e-6));
    }

    #[test]
    fn normal_roughly_centered() {
        let mut rng = seeded_rng(2);
        let m = normal(&mut rng, 50, 50, 1.0);
        assert!(m.mean().abs() < 0.05, "mean {}", m.mean());
        let var: f32 = m.as_slice().iter().map(|v| v * v).sum::<f32>() / m.len() as f32;
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = seeded_rng(3);
        let m = uniform(&mut rng, 10, 10, 0.25);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.25));
    }
}
