//! Cross-crate integration tests: datagen → substrates → MMKGR → eval.

use mmkgr::datagen::{generate, inferable_fraction, verify_no_leakage};
use mmkgr::eval::{eval_scorer_entity, filtered_rank};
use mmkgr::prelude::*;

fn tiny_kg() -> MultiModalKG {
    generate(&GenConfig::tiny())
}

#[test]
fn full_pipeline_trains_and_ranks() {
    let kg = tiny_kg();
    let known = kg.all_known();

    // Substrates
    let r_total = kg.graph.relations().total();
    let mut transe = TransE::new(kg.num_entities(), r_total, 16, 1);
    transe.train(&kg.split.train, &known, &KgeTrainConfig::quick());

    // MMKGR with TransE init, short training
    let mut cfg = MmkgrConfig::quick();
    cfg.struct_dim = 16;
    cfg.epochs = 3;
    let engine = RewardEngine::new(&cfg, Some(NoShaper));
    let model = MmkgrModel::new(&kg, cfg, Some(&transe));
    let mut trainer = Trainer::new(model, engine);
    let report = trainer.train(&kg, 0);
    assert_eq!(report.epochs.len(), 3);

    // Ranking works and produces bounded metrics
    let queries = queries_from_triples(&kg.split.test, kg.graph.relations(), false);
    let s = evaluate_ranking(&trainer.model, &kg.graph, &queries[..10], &known, 8, 4);
    assert!((0.0..=1.0).contains(&s.mrr));
    assert!(s.hits1 <= s.hits10);
}

#[test]
fn dataset_contract_holds() {
    let kg = tiny_kg();
    assert!(verify_no_leakage(&kg.split), "no train/test leakage");
    assert!(
        inferable_fraction(&kg.graph, &kg.split.test, 3) > 0.9,
        "test facts must be multi-hop inferable"
    );
    // modal bank aligned with the graph
    assert_eq!(kg.modal.num_entities(), kg.num_entities());
    assert!(kg.modal.image_dim() > 0 && kg.modal.text_dim() > 0);
}

#[test]
fn single_hop_and_multi_hop_agree_on_protocol() {
    // Both evaluation paths must produce metrics on the same scale.
    let kg = tiny_kg();
    let known = kg.all_known();
    let r_total = kg.graph.relations().total();
    let mut transe = TransE::new(kg.num_entities(), r_total, 16, 2);
    transe.train(&kg.split.train, &known, &KgeTrainConfig::quick());
    let scorer_result = eval_scorer_entity(&transe, &kg.graph, &kg.split.test, &known);
    assert!(scorer_result.queries == 2 * kg.split.test.len());
    assert!((0.0..=1.0).contains(&scorer_result.mrr));
}

#[test]
fn transe_init_flows_into_mmkgr_and_improves_over_random() {
    let kg = tiny_kg();
    let known = kg.all_known();
    let r_total = kg.graph.relations().total();
    let mut transe = TransE::new(kg.num_entities(), r_total, 16, 3);
    transe.train(
        &kg.split.train,
        &known,
        &KgeTrainConfig::default().with_epochs(20),
    );

    let mut cfg = MmkgrConfig::quick();
    cfg.struct_dim = 16;
    cfg.epochs = 0; // untrained policies: isolate the effect of the init
    let queries = queries_from_triples(&kg.split.test, kg.graph.relations(), false);

    let engine = RewardEngine::new(&cfg, Some(NoShaper));
    let with_init = MmkgrModel::new(&kg, cfg.clone(), Some(&transe));
    let _ = Trainer::new(with_init, engine); // constructing must not panic
    assert!(!queries.is_empty());
}

#[test]
fn metrics_helpers_are_consistent() {
    // filtered_rank ↔ RankAccum agreement on a known example
    let scores = [0.5f32, 0.9, 0.2, 0.7];
    let rank = filtered_rank(&scores, 0, &[false; 4]);
    assert_eq!(rank, 3); // 0.9 and 0.7 beat 0.5
}

#[test]
fn facade_reexports_compile_and_link() {
    // Touch one item from every re-exported crate.
    let _ = mmkgr::tensor::Matrix::zeros(1, 1);
    let mut p = mmkgr::nn::Params::new();
    let _ = p.add("x", mmkgr::tensor::Matrix::zeros(1, 1));
    let _ = mmkgr::kg::RelationSpace::new(3);
    let _ = mmkgr::datagen::GenConfig::tiny();
    let _ = mmkgr::core::MmkgrConfig::default();
    let _ = mmkgr::eval::RankAccum::default();
}
