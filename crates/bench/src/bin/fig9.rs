//! Figure 9 — convergence-rate comparison: per-epoch validation MRR for
//! DEKGR, DSKGR, DVKGR, MMKGR and ZOKGR (the 0/1-reward control).
//!
//! Expected shape (paper): ZOKGR fluctuates and fails to converge; all
//! shaped variants converge; distance/diversity accelerate convergence.

use mmkgr_bench::Stopwatch;
use mmkgr_core::Variant;
use mmkgr_eval::{save_json, Dataset, Harness, HarnessConfig, ScaleChoice};

fn main() {
    let scale = ScaleChoice::from_args();
    let sw = Stopwatch::start();
    let valid_sample = match scale {
        ScaleChoice::Quick => 20,
        ScaleChoice::Standard => 50,
        ScaleChoice::Full => 100,
    };
    let mut dump = Vec::new();
    for dataset in [Dataset::Wn9ImgTxt, Dataset::FbImgTxt] {
        let h = Harness::new(HarnessConfig::new(dataset, scale));
        println!("\n{} (validation MRR per epoch)", h.kg.stats());
        for v in [
            Variant::Dekgr,
            Variant::Dskgr,
            Variant::Dvkgr,
            Variant::Full,
            Variant::Zokgr,
        ] {
            let (_, report) = h.train_mmkgr_with(|c| *c = c.clone().variant(v), valid_sample);
            let series: Vec<f64> = report
                .epochs
                .iter()
                .map(|e| e.valid_mrr.unwrap_or(0.0))
                .collect();
            print!("{:<6}: ", v.name());
            for m in &series {
                print!("{:.3} ", m);
            }
            println!();
            sw.lap(v.name());
            dump.push((dataset.name().to_string(), v.name().to_string(), series));
        }
    }
    save_json("fig9", &dump);
}
