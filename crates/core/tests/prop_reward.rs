//! Property-based tests for the 3D reward mechanism and the MDP.

use mmkgr_core::config::{MmkgrConfig, RewardConfig};
use mmkgr_core::mdp::{RolloutQuery, RolloutState};
use mmkgr_core::reward::{NoShaper, RewardEngine};
use mmkgr_kg::{Edge, EntityId, RelationId};
use proptest::prelude::*;

fn engine_with(
    lambda: (f32, f32, f32),
    bandwidth: f32,
    threshold: usize,
) -> RewardEngine<NoShaper> {
    let mut cfg = MmkgrConfig::quick();
    cfg.lambda = lambda;
    cfg.bandwidth = bandwidth;
    cfg.distance_threshold = threshold;
    cfg.reward = RewardConfig::full();
    RewardEngine::new(&cfg, Some(NoShaper))
}

fn state_with_hops(hops: usize, at_answer: bool) -> RolloutState {
    let answer = EntityId(99);
    let q = RolloutQuery {
        source: EntityId(0),
        relation: RelationId(0),
        answer,
    };
    let no_op = RelationId(1000);
    let mut s = RolloutState::new(q, no_op);
    for i in 0..hops.saturating_sub(if at_answer { 1 } else { 0 }) {
        s.step(
            Edge {
                relation: RelationId(1),
                target: EntityId(i as u32 + 1),
            },
            no_op,
        );
    }
    if at_answer && hops > 0 {
        s.step(
            Edge {
                relation: RelationId(1),
                target: answer,
            },
            no_op,
        );
    }
    s
}

proptest! {
    #[test]
    fn total_reward_is_bounded(
        hops in 0usize..8,
        at_answer in any::<bool>(),
        threshold in 1usize..6,
        u in 0.5f32..6.0,
    ) {
        let e = engine_with((0.1, 0.8, 0.1), u, threshold);
        let s = state_with_hops(hops, at_answer);
        let b = e.total(&s, &[0.5, -0.5]);
        // each component ∈ [-1, 1] and λ sums to 1 → total ∈ [-1, 1]
        prop_assert!(b.total >= -1.0 - 1e-5 && b.total <= 1.0 + 1e-5,
            "total {} out of bounds", b.total);
        prop_assert!(b.destination >= 0.0 && b.destination <= 1.0);
        prop_assert!(b.diversity <= 0.0 && b.diversity >= -1.0);
    }

    #[test]
    fn success_never_pays_less_than_failure(
        hops in 1usize..4,
        u in 1.0f32..5.0,
    ) {
        // With NoShaper (miss reward 0) and hops ≤ threshold, reaching the
        // answer must dominate missing it, all else equal.
        let e = engine_with((0.1, 0.8, 0.1), u, 3);
        let hit = e.total(&state_with_hops(hops, true), &[]);
        let miss = e.total(&state_with_hops(hops, false), &[]);
        prop_assert!(hit.total > miss.total,
            "hit {} !> miss {}", hit.total, miss.total);
    }

    #[test]
    fn shorter_successful_paths_pay_more(
        k1 in 1usize..3,
        extra in 1usize..3,
    ) {
        let e = engine_with((0.1, 0.8, 0.1), 3.0, 3);
        let short = e.total(&state_with_hops(k1, true), &[]);
        let long = e.total(&state_with_hops(k1 + extra, true), &[]);
        prop_assert!(short.total >= long.total,
            "short {} !>= long {}", short.total, long.total);
    }

    #[test]
    fn diversity_memory_never_rewards(
        paths in proptest::collection::vec(
            proptest::collection::vec(-3.0f32..3.0, 4), 0..8),
        probe in proptest::collection::vec(-3.0f32..3.0, 4),
    ) {
        let mut e = engine_with((0.1, 0.8, 0.1), 3.0, 3);
        for p in paths {
            e.remember(RelationId(0), p);
        }
        let d = e.diversity(RelationId(0), &probe);
        prop_assert!((-1.0..=0.0).contains(&d), "diversity {d}");
    }

    #[test]
    fn hops_counted_exactly(hops in 0usize..6) {
        let s = state_with_hops(hops, false);
        prop_assert_eq!(s.hops, hops);
        prop_assert_eq!(s.relation_path(RelationId(1000)).len(), hops);
    }
}
