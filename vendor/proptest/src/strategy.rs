//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// Generates random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}
